#!/usr/bin/env python3
"""Surviving a rail outage: fault injection, retransmission, failover.

The paper's engine schedules over whatever rails are *currently* idle —
which makes it naturally tolerant of a rail disappearing, as long as a
reliability layer redrives the packets that were in flight.  This
example turns on the fault plane (5% drop, light duplication, one
scheduled outage of n0's first Myrinet rail), pushes mixed traffic over
two rails, and shows the stack degrading gracefully: the transport
retransmits lost packets, pending packets on the dead rail fail over to
the survivor, the engine re-routes queued traffic, and every message is
still delivered exactly once.  The same seed reproduces the same
counters; ``faults=None`` restores the lossless fabric bit-for-bit.

Run:  python examples/failover.py
"""

from repro import Cluster, TrafficClass
from repro.middleware import StreamApp, uniform_small_flows
from repro.runtime import run_session
from repro.util.units import KiB, us

FAULTS = {
    "seed": 13,
    "drop": 0.05,
    "duplicate": 0.01,
    "outages": [{"nic": "n0.mx00", "at": 50 * us, "recover": 300 * us}],
    "reliability": {"max_retries": 16},
}


def run(faults):
    cluster = Cluster(n_nodes=2, networks=[("mx", 2)], seed=42, faults=faults)
    workloads = [
        StreamApp(size=32 * KiB, count=20, interval=10 * us, header_size=0,
                  traffic_class=TrafficClass.BULK, name="bulk"),
    ] + uniform_small_flows(4, size=256, count=50, interval=2 * us)
    report = run_session(cluster, [a.install for a in workloads])
    return cluster, report


def describe(label, cluster, report):
    print(f"=== {label} ===")
    print(f"messages delivered : {report.messages}")
    print(f"virtual time       : {cluster.sim.now * 1e3:.3f} ms")
    print(f"packets dropped    : {report.packets_dropped}")
    print(f"packets duplicated : {report.packets_duplicated}")
    print(f"retransmits        : {report.retransmits}")
    print(f"failovers          : {report.failovers}")
    if cluster.transport is not None:
        stats = cluster.transport.stats
        print(f"dedup discards     : {stats.dups_discarded}")
        print(f"acks sent          : {stats.acks_sent}")


def main() -> None:
    lossy, lossy_report = run(FAULTS)
    describe("lossy rails + scheduled outage", lossy, lossy_report)

    again, again_report = run(FAULTS)
    identical = (
        lossy_report.packets_dropped,
        lossy_report.retransmits,
        lossy_report.failovers,
    ) == (
        again_report.packets_dropped,
        again_report.retransmits,
        again_report.failovers,
    )
    print(f"\nsame seed, same counters: {identical}")

    clean, clean_report = run(faults=None)
    print()
    describe("lossless baseline (faults off)", clean, clean_report)


if __name__ == "__main__":
    main()
