#!/usr/bin/env python3
"""Trace-driven engine comparison.

Synthesizes a realistic communication trace (bursty arrivals,
heavy-tailed sizes, control/bulk/default mix — the kind of trace the
paper's authors would have captured from a PadicoTM application), saves
it, and replays the *identical* trace against the legacy engine, the
optimizing engine, and the optimizing engine with the adaptive channel
policy — the controlled-comparison methodology real traces enable.

Run:  python examples/trace_comparison.py
"""

import tempfile
from pathlib import Path

from repro import Cluster
from repro.core.adaptive import AdaptiveChannels
from repro.middleware import TraceReplayApp, load_trace, save_trace, synthesize_trace
from repro.runtime import run_session
from repro.util.rng import SeedSequenceRegistry
from repro.util.units import ms


def main() -> None:
    rng = SeedSequenceRegistry(seed=2006).stream("trace")
    trace = synthesize_trace(
        rng,
        nodes=["n0", "n1", "n2", "n3"],
        duration=2 * ms,
        message_rate=400_000.0,
        burstiness=3.0,
    )
    total_bytes = sum(r.size for r in trace)
    print(f"synthesized trace: {len(trace)} messages, {total_bytes / 1e6:.2f} MB "
          f"over {2.0:.0f} ms on 4 nodes")

    # Traces are a file format too: save + reload round-trips.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.jsonl"
        save_trace(trace, path)
        trace = load_trace(path)
    print(f"(saved and reloaded via JSONL)")
    print()

    configs = [
        ("legacy", dict(engine="legacy")),
        ("optimizing", dict(engine="optimizing")),
        ("optimizing+adaptive", dict(engine="optimizing", policy=AdaptiveChannels)),
    ]
    print(f"{'engine':<22}{'tx':>8}{'agg':>8}{'mean lat us':>14}{'p99 lat us':>13}{'MB/s':>9}")
    print("-" * 74)
    for label, kwargs in configs:
        cluster = Cluster(n_nodes=4, seed=1, **kwargs)
        app = TraceReplayApp(trace, name=f"replay-{label}")
        report = run_session(cluster, [app.install])
        assert report.messages == len(trace)
        print(
            f"{label:<22}{report.network_transactions:>8}"
            f"{report.aggregation_ratio:>8.2f}"
            f"{report.latency.mean * 1e6:>14.1f}"
            f"{report.latency.p99 * 1e6:>13.1f}"
            f"{report.throughput / 1e6:>9.1f}"
        )
    print()
    print("Same messages, same instants — only the engine differs. This is")
    print("the controlled comparison that motivates trace-driven replay.")


if __name__ == "__main__":
    main()
