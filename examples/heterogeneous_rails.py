#!/usr/bin/env python3
"""Multirail scheduling over NICs of different technologies.

Paper §2: the scheduler "may also perform dynamic load balancing on
multiple resources, multiple NICs, or even NICs from multiple
technologies".  This example attaches every node to a Myrinet network
*and* a Quadrics network, pushes bulk rendezvous traffic plus small
messages, and shows how the pooled scheduler stripes bulk data across
both rails in proportion to their speed — self-balancing, because the
faster NIC goes idle (and asks for the next chunk) sooner.

Run:  python examples/heterogeneous_rails.py
"""

from repro import Cluster, EngineConfig, TrafficClass
from repro.middleware import StreamApp, uniform_small_flows
from repro.runtime import run_session
from repro.util.units import KiB, MiB, format_rate, format_size, us


def run(rail_binding: str):
    cluster = Cluster(
        n_nodes=2,
        networks=[("mx", 1), ("elan", 1)],
        seed=42,
        config=EngineConfig(stripe_chunk=32 * KiB, rail_binding=rail_binding),
    )
    workloads = [
        StreamApp(size=1 * MiB, count=8, interval=10 * us, header_size=0,
                  traffic_class=TrafficClass.BULK, name=f"bulk{i}")
        for i in range(2)
    ] + uniform_small_flows(4, size=256, count=100, interval=2 * us)
    report = run_session(cluster, [a.install for a in workloads])
    return cluster, report


def main() -> None:
    for binding in ("pooled", "static"):
        cluster, report = run(binding)
        print(f"=== rail binding: {binding} ===")
        print(f"aggregate throughput : {format_rate(report.throughput)}")
        print(f"mean latency         : {report.latency.mean * 1e6:.1f} us")
        print("per-rail activity:")
        for nic in cluster.fabric.node("n0").nics:
            stats = nic.stats
            print(
                f"  {nic.name:<12} ({nic.link.name:>4})  "
                f"{stats.requests:>4} requests  "
                f"{format_size(stats.payload_bytes):>10}  "
                f"busy {stats.busy_time * 1e3:.2f} ms"
            )
        print()

    print("With pooled scheduling both rails stay busy and the Elan rail —")
    print("1.4x faster — naturally carries proportionally more bytes; static")
    print("channel->NIC binding leaves capacity on the table (experiment E6).")


if __name__ == "__main__":
    main()
