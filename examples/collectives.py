#!/usr/bin/env python3
"""Collective operations over the optimization engine.

MPI-style collectives are the "regular communication schemes" Madeleine
has always served (paper §2).  This example runs broadcast, barrier,
allreduce and a ring halo exchange over an 8-node Myrinet cluster, on
both engines, and prints the per-operation times — collectives stress
*many concurrent flows between many pairs*, which is where the
cross-flow optimizer helps without being asked.

Run:  python examples/collectives.py
"""

from repro import Cluster
from repro.middleware import AllReduceApp, BarrierApp, BroadcastApp, HaloExchangeApp
from repro.runtime import run_session
from repro.util.units import KiB


def run_collective(engine: str, make_app):
    cluster = Cluster(n_nodes=8, engine=engine, seed=2006)
    app = make_app(cluster.node_names)
    run_session(cluster, [app.install])
    return sum(app.durations) / len(app.durations)


def main() -> None:
    collectives = [
        ("broadcast 16KiB", lambda nodes: BroadcastApp(nodes, size=16 * KiB, rounds=5)),
        ("barrier", lambda nodes: BarrierApp(nodes, rounds=5)),
        ("allreduce 4KiB", lambda nodes: AllReduceApp(nodes, size=4 * KiB, rounds=5)),
        (
            "halo 8KiB",
            lambda nodes: HaloExchangeApp(nodes, halo_size=8 * KiB, iterations=5),
        ),
    ]
    print(f"{'collective (8 nodes, MX)':<26}{'legacy us':>12}{'optimizing us':>16}")
    print("-" * 54)
    for label, make_app in collectives:
        legacy = run_collective("legacy", make_app) * 1e6
        optimized = run_collective("optimizing", make_app) * 1e6
        print(f"{label:<26}{legacy:>12.1f}{optimized:>16.1f}")
    print()
    print("Each rank exchanges with several peers per step; the optimizer")
    print("aggregates those per-step packets per destination automatically.")


if __name__ == "__main__":
    main()
