#!/usr/bin/env python3
"""The paper's motivating scenario: a conglomerate of middlewares.

Modern applications stack MPI-like communication, RPC, DSM, and
one-sided put/get over the *same* network (paper §1, the PadicoTM
argument).  This example runs that conglomerate twice — once on the
legacy deterministic Madeleine, once on the optimizing engine — and
prints the head-to-head comparison.

Run:  python examples/middleware_mix.py
"""

from repro import Cluster
from repro.middleware import (
    ControlPlaneApp,
    DsmApp,
    GlobalArraysApp,
    IntegratorApp,
    PingPongApp,
    RpcApp,
    StreamApp,
)
from repro.network.virtual import TrafficClass
from repro.runtime import run_session
from repro.util.units import KiB, us


def conglomerate():
    """One PadicoTM-style stack: five middlewares over one node pair."""
    return IntegratorApp(
        [
            PingPongApp(count=60, size=32, name="mpi-latency"),
            StreamApp(size=16 * KiB, count=40, interval=5 * us,
                      traffic_class=TrafficClass.BULK, name="mpi-bulk"),
            RpcApp(calls=60, concurrency=4, service_time=2 * us, name="corba"),
            DsmApp(faults=30, name="dsm"),
            GlobalArraysApp(operations=60, name="ga"),
            ControlPlaneApp(count=80, interval=6 * us, name="signalling"),
        ]
    )


def run(engine: str):
    cluster = Cluster(n_nodes=2, engine=engine, seed=2006)
    report = run_session(cluster, [conglomerate().install])
    return cluster, report


def main() -> None:
    results = {engine: run(engine) for engine in ("legacy", "optimizing")}

    print(f"{'metric':<28}{'legacy':>14}{'optimizing':>14}")
    print("-" * 56)
    rows = [
        ("messages completed", lambda r: f"{r.messages}"),
        ("network transactions", lambda r: f"{r.network_transactions}"),
        ("aggregation ratio", lambda r: f"{r.aggregation_ratio:.2f}"),
        ("mean latency (us)", lambda r: f"{r.latency.mean * 1e6:.1f}"),
        ("p99 latency (us)", lambda r: f"{r.latency.p99 * 1e6:.1f}"),
        ("throughput (MB/s)", lambda r: f"{r.throughput / 1e6:.1f}"),
        ("rendezvous transfers", lambda r: f"{r.rdv_count}"),
    ]
    for label, fmt in rows:
        legacy_value = fmt(results["legacy"][1])
        optimized_value = fmt(results["optimizing"][1])
        print(f"{label:<28}{legacy_value:>14}{optimized_value:>14}")

    print()
    print("per-class mean latency (us):")
    for traffic_class in TrafficClass:
        line = f"  {traffic_class.value:<10}"
        for engine in ("legacy", "optimizing"):
            summary = results[engine][1].latency_by_class.get(traffic_class)
            line += f"{(summary.mean * 1e6 if summary else float('nan')):>14.1f}"
        print(line)

    gain = (
        results["optimizing"][1].throughput / results["legacy"][1].throughput
    )
    print()
    print(f"cross-flow optimization gain: {gain:.2f}x throughput with "
          f"{results['legacy'][1].network_transactions - results['optimizing'][1].network_transactions} "
          f"fewer network transactions")


if __name__ == "__main__":
    main()
