#!/usr/bin/env python3
"""Quickstart: send structured messages through the optimization engine.

Builds a two-node Myrinet/MX cluster, opens a flow, packs a structured
message through the Madeleine API (express header + bulk payload), and
prints what the engine did with it.

Run:  python examples/quickstart.py
"""

from repro import Cluster, PackMode, TrafficClass
from repro.util.units import KiB, format_size, format_time


def main() -> None:
    # One call wires the whole Figure-1 stack on every node:
    # packing API -> optimizer-scheduler -> MX driver -> simulated NIC.
    cluster = Cluster(n_nodes=2, networks=[("mx", 1)], engine="optimizing")
    api = cluster.api("n0")

    # A flow is what a middleware opens once and streams messages over.
    flow = api.open_flow("n1", traffic_class=TrafficClass.DEFAULT)

    # Structured message, Madeleine style: a small express header the
    # receiver can read early, then the payload, packed CHEAPER so the
    # engine may aggregate/reorder it freely.
    session = api.begin(flow)
    session.pack(16, express=True)
    session.pack(4 * KiB, mode=PackMode.CHEAPER)
    message = session.flush()

    # A burst of small sends from the same application: while the NIC is
    # busy with the first packet these accumulate in the waiting lists
    # and go out aggregated.
    burst = [api.send(flow, 64) for _ in range(10)]

    cluster.run_until_idle()

    print("first message delivered at", format_time(message.completion.value))
    print("burst delivered by        ", format_time(max(m.completion.value for m in burst)))

    report = cluster.report()
    stats = cluster.engine("n0").stats
    print()
    print(f"messages completed    : {report.messages}")
    print(f"payload delivered     : {format_size(report.total_bytes)}")
    print(f"network transactions  : {report.network_transactions}")
    print(f"aggregation ratio     : {stats.aggregation_ratio:.2f} segments/packet")
    print(f"optimizer activations : {dict(sorted(stats.activations.items()))}")
    print()
    print("Eleven messages, far fewer wire packets: that is the paper's")
    print("NIC-idle-triggered aggregation at work.")


if __name__ == "__main__":
    main()
