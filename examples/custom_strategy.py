#!/usr/bin/env python3
"""Extending the strategy database with a user-defined strategy.

The paper's abstract promises that "the database of predefined
strategies can be easily extended".  This example registers a custom
strategy — bounded-width aggregation, packing at most four segments per
packet — and benchmarks it against the built-in greedy aggregation and
the no-aggregation reference on the same saturated 8-flow workload.

The resulting table is a miniature of the paper's argument: under
multi-flow load, every extra segment a packet may carry buys throughput
*and* latency, because each aggregated entry saves one per-request
start-up.

Run:  python examples/custom_strategy.py
"""

from repro import Cluster, register_strategy
from repro.core.strategies import Strategy
from repro.core.strategies._builder import build_from_queue
from repro.middleware import uniform_small_flows
from repro.runtime import run_session
from repro.util.units import us


@register_strategy("bounded-width")
class BoundedWidthStrategy(Strategy):
    """Aggregate at most four segments per packet.

    A deliberately simple policy to show the extension surface: a
    strategy sees the engine (waiting lists, config, cost model) and the
    idle driver (capabilities), and returns one TransferPlan built with
    the same constraint-preserving builder the predefined strategies
    use.
    """

    WIDTH = 4

    def make_plan(self, engine, driver):
        for queue in engine.queues_for(driver):
            plan = build_from_queue(engine, driver, queue, max_items=self.WIDTH)
            if plan is not None:
                return plan
        return None


def run(strategy):
    cluster = Cluster(n_nodes=2, strategy=strategy, seed=7)
    apps = uniform_small_flows(8, size=256, count=150, interval=2 * us)
    return run_session(cluster, [a.install for a in apps])


def main() -> None:
    print(f"{'strategy':<16}{'tput MB/s':>12}{'mean lat us':>14}{'agg ratio':>12}{'tx':>8}")
    print("-" * 62)
    for name in ("aggregate", "bounded-width", "eager"):
        report = run(name)
        print(
            f"{name:<16}{report.throughput / 1e6:>12.1f}"
            f"{report.latency.mean * 1e6:>14.1f}"
            f"{report.aggregation_ratio:>12.2f}"
            f"{report.network_transactions:>8}"
        )
    print()
    print("Registering a strategy is one decorator; scenarios select it by")
    print("name exactly like the built-ins (Cluster(strategy='bounded-width')).")


if __name__ == "__main__":
    main()
