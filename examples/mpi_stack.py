#!/usr/bin/env python3
"""MPI on Madeleine: the historical MPICH-Madeleine stack in miniature.

Runs a tagged MPI-style workload — ping-pong, wildcard receives feeding
a worker pool, and a dissemination barrier — entirely through
``repro.mpi``, whose communicators sit on the public packing API and
therefore behind the optimization engine like any other middleware.

Run:  python examples/mpi_stack.py
"""

from repro import Cluster
from repro.mpi import ANY_SOURCE, ANY_TAG, MpiWorld
from repro.sim import Process
from repro.util.units import KiB, format_time


def main() -> None:
    cluster = Cluster(n_nodes=4, seed=2006)
    world = MpiWorld(cluster)
    sim = cluster.sim

    # --- 1. tagged ping-pong between ranks 0 and 1 --------------------
    rtts = []

    def pingpong_rank0():
        c = world.comm(0)
        for i in range(50):
            start = sim.now
            c.isend(dest=1, size=64, tag=i)
            yield c.irecv(source=1, tag=i).future
            rtts.append(sim.now - start)

    def pingpong_rank1():
        c = world.comm(1)
        for i in range(50):
            yield c.irecv(source=0, tag=i).future
            c.isend(dest=0, size=64, tag=i)

    Process(sim, pingpong_rank0())
    Process(sim, pingpong_rank1())

    # --- 2. a worker draining wildcard receives ------------------------
    # Ranks 0..2 all fire work items at rank 3; the worker takes them in
    # completion order with ANY_SOURCE/ANY_TAG — the unexpected-message
    # machinery in action.
    drained = []

    for producer in range(3):
        c = world.comm(producer)
        for k in range(10):
            c.isend(dest=3, size=2 * KiB, tag=100 + k)

    def worker():
        c = world.comm(3)
        for _ in range(30):
            status = yield c.irecv(source=ANY_SOURCE, tag=ANY_TAG).future
            drained.append((status.source, status.tag))

    Process(sim, worker())

    # --- 3. a barrier across all four ranks ----------------------------
    barriers = [world.comm(rank).barrier() for rank in range(4)]

    cluster.run_until_idle()

    print(f"ping-pong mean RTT        : {format_time(sum(rtts) / len(rtts))}")
    print(f"work items drained        : {len(drained)} from sources "
          f"{sorted(set(s for s, _ in drained))}")
    print(f"barrier released all ranks: {all(b.done for b in barriers)}")
    report = cluster.report()
    print(f"engine stats              : {report.network_transactions} transactions, "
          f"aggregation {report.aggregation_ratio:.2f}")
    print()
    print("Every MPI message above went through the waiting lists and the")
    print("NIC-idle-triggered optimizer — the MPICH-Madeleine layering.")


if __name__ == "__main__":
    main()
