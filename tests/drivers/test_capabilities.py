"""Tests for driver capability descriptors."""

import pytest

from repro.drivers.capabilities import DriverCapabilities
from repro.util.errors import ConfigurationError


def caps(**overrides):
    params = dict(technology="mx")
    params.update(overrides)
    return DriverCapabilities(**params)


class TestValidation:
    def test_defaults_valid(self):
        c = caps()
        assert c.supports_pio and c.supports_dma

    def test_no_transfer_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            caps(supports_pio=False, supports_dma=False)

    def test_gather_entry_minimum(self):
        with pytest.raises(ConfigurationError):
            caps(max_gather_entries=0)

    def test_gather_support_needs_entries(self):
        with pytest.raises(ConfigurationError):
            caps(supports_gather=True, max_gather_entries=1)

    def test_no_gather_single_entry_ok(self):
        c = caps(supports_gather=False, max_gather_entries=1)
        assert c.aggregation_limit == 1

    @pytest.mark.parametrize(
        "field,value",
        [
            ("max_aggregate_size", 0),
            ("eager_threshold", -1),
            ("rdv_ack_delay", -1.0),
            ("max_channels", 0),
            ("pio_threshold", -1),
        ],
    )
    def test_range_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            caps(**{field: value})

    def test_aggregation_limit_with_gather(self):
        assert caps(max_gather_entries=8).aggregation_limit == 8

    def test_frozen(self):
        with pytest.raises(AttributeError):
            caps().max_channels = 99
