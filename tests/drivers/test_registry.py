"""Registry-focused tests: error text, profile sanity, gather limits.

Complements ``test_driver.py`` (dispatch correctness) and
``test_capabilities.py`` (validation ranges) with the contract details
the live plane leans on: the exact unknown-technology diagnostic, and
that every registered driver ships a self-consistent capability profile.
"""

import pytest

from repro.drivers import DRIVER_TYPES, make_driver
from repro.drivers.capabilities import DriverCapabilities
from repro.network.model import LinkModel
from repro.network.nic import NIC
from repro.network.technologies import TECHNOLOGIES
from repro.sim import Simulator
from repro.util.errors import ConfigurationError


def _odd_link(name: str) -> LinkModel:
    return LinkModel(
        name=name,
        pio_latency=1e-6,
        pio_bandwidth=1e8,
        dma_latency=1e-6,
        dma_bandwidth=1e8,
        wire_latency=0,
        copy_bandwidth=1e9,
        gather_entry_cost=0,
        rx_overhead=0,
    )


class TestUnknownDriver:
    def test_error_names_the_technology(self):
        sim = Simulator()
        nic = NIC(sim, "x", "n0", _odd_link("quantum"), lambda p, o: None)
        with pytest.raises(ConfigurationError, match="'quantum'"):
            make_driver(nic)

    def test_error_is_configuration_not_keyerror(self):
        sim = Simulator()
        nic = NIC(sim, "x", "n0", _odd_link("nope"), lambda p, o: None)
        try:
            make_driver(nic)
        except ConfigurationError as exc:
            assert "no driver registered" in str(exc)
        else:  # pragma: no cover - the call must raise
            pytest.fail("make_driver accepted an unregistered technology")


class TestRegisteredProfiles:
    """Every shipped driver's capability profile is internally consistent."""

    @pytest.mark.parametrize("tech", sorted(DRIVER_TYPES))
    def test_profile_matches_technology(self, tech):
        sim = Simulator()
        nic = NIC(sim, "x", "n0", TECHNOLOGIES[tech](), lambda p, o: None)
        driver = make_driver(nic)
        assert driver.caps.technology == tech

    @pytest.mark.parametrize("tech", sorted(DRIVER_TYPES))
    def test_profile_has_usable_aggregation(self, tech):
        sim = Simulator()
        nic = NIC(sim, "x", "n0", TECHNOLOGIES[tech](), lambda p, o: None)
        caps = make_driver(nic).caps
        assert caps.aggregation_limit >= 1
        assert caps.max_aggregate_size >= 1
        if caps.supports_gather:
            assert caps.aggregation_limit == caps.max_gather_entries >= 2


class TestAggregationLimit:
    def test_gather_disabled_reports_one(self):
        caps = DriverCapabilities(
            technology="t", supports_gather=False, max_gather_entries=64
        )
        assert caps.aggregation_limit == 1

    def test_gather_enabled_reports_entries(self):
        caps = DriverCapabilities(technology="t", max_gather_entries=4)
        assert caps.aggregation_limit == 4
