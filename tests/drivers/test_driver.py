"""Tests for the driver layer: decisions, costs, validation, registry."""

import pytest

from repro.drivers import (
    DRIVER_TYPES,
    Driver,
    DriverCapabilities,
    ElanDriver,
    IbverbsDriver,
    MxDriver,
    TcpDriver,
    make_driver,
)
from repro.drivers.base import AggregationChoice
from repro.network.fabric import Fabric
from repro.network.model import TransferMode
from repro.network.nic import NIC
from repro.network.technologies import TECHNOLOGIES, myrinet_mx
from repro.network.wire import PacketKind, WirePacket, WireSegment
from repro.sim import Simulator
from repro.util.errors import CapabilityError, ConfigurationError
from repro.util.units import KiB


@pytest.fixture
def sim():
    return Simulator()


def make_mx_driver(sim, deliveries=None):
    deliveries = deliveries if deliveries is not None else []
    nic = NIC(sim, "mx0", "n0", myrinet_mx(), lambda p, o: deliveries.append(p))
    return MxDriver(nic), deliveries


class TestConstruction:
    def test_technology_mismatch_rejected(self, sim):
        nic = NIC(sim, "x", "n0", myrinet_mx(), lambda p, o: None)
        with pytest.raises(CapabilityError):
            ElanDriver(nic)

    def test_registry_covers_all_technologies(self):
        assert set(DRIVER_TYPES) == set(TECHNOLOGIES)

    def test_make_driver_dispatches(self, sim):
        fabric = Fabric(sim)
        for i, tech in enumerate(TECHNOLOGIES):
            net = fabric.add_network(f"net{i}", TECHNOLOGIES[tech]())
            node = fabric.add_node(f"n{i}")
            nic = net.attach(node)
            driver = make_driver(nic)
            assert isinstance(driver, DRIVER_TYPES[tech])

    def test_make_driver_unknown_tech(self, sim):
        from repro.network.model import LinkModel

        odd = LinkModel(
            name="weird",
            pio_latency=1e-6,
            pio_bandwidth=1e8,
            dma_latency=1e-6,
            dma_bandwidth=1e8,
            wire_latency=0,
            copy_bandwidth=1e9,
            gather_entry_cost=0,
            rx_overhead=0,
        )
        nic = NIC(sim, "x", "n0", odd, lambda p, o: None)
        with pytest.raises(ConfigurationError):
            make_driver(nic)


class TestModeChoice:
    def test_pio_below_threshold(self, sim):
        driver, _ = make_mx_driver(sim)
        assert driver.choose_mode(100) is TransferMode.PIO

    def test_dma_above_threshold(self, sim):
        driver, _ = make_mx_driver(sim)
        assert driver.choose_mode(driver.caps.pio_threshold + 1) is TransferMode.DMA

    def test_dma_only_driver(self, sim):
        from repro.network.technologies import gige_tcp

        nic = NIC(sim, "t", "n0", gige_tcp(), lambda p, o: None)
        driver = TcpDriver(nic)
        assert driver.choose_mode(1) is TransferMode.DMA


class TestRendezvousDecision:
    def test_eager_below_threshold(self, sim):
        driver, _ = make_mx_driver(sim)
        assert not driver.wants_rendezvous(driver.caps.eager_threshold)

    def test_rdv_above_threshold(self, sim):
        driver, _ = make_mx_driver(sim)
        assert driver.wants_rendezvous(driver.caps.eager_threshold + 1)

    def test_no_rdv_driver_never_wants(self, sim):
        from repro.network.technologies import gige_tcp

        nic = NIC(sim, "t", "n0", gige_tcp(), lambda p, o: None)
        driver = TcpDriver(nic)
        assert not driver.wants_rendezvous(10 * 1024 * 1024)


class TestAggregationChoice:
    def test_single_segment_free(self, sim):
        driver, _ = make_mx_driver(sim)
        choice = driver.choose_aggregation([4096])
        assert choice == AggregationChoice(copied_bytes=0, gather_entries=1)

    def test_small_segments_copied(self, sim):
        """Copying a handful of tiny segments beats gather descriptors."""
        driver, _ = make_mx_driver(sim)
        choice = driver.choose_aggregation([16, 16])
        assert choice.gather_entries == 1
        assert choice.copied_bytes == 32

    def test_large_segments_gathered(self, sim):
        driver, _ = make_mx_driver(sim)
        choice = driver.choose_aggregation([8 * KiB, 8 * KiB])
        assert choice.gather_entries == 2
        assert choice.copied_bytes == 0

    def test_gather_limit_forces_copy(self, sim):
        driver, _ = make_mx_driver(sim)
        n = driver.caps.max_gather_entries + 1
        choice = driver.choose_aggregation([8 * KiB] * n)
        assert choice.gather_entries == 1
        assert choice.copied_bytes == n * 8 * KiB

    def test_no_gather_driver_copies(self, sim):
        from repro.network.technologies import gige_tcp

        nic = NIC(sim, "t", "n0", gige_tcp(), lambda p, o: None)
        driver = TcpDriver(nic)
        choice = driver.choose_aggregation([8 * KiB, 8 * KiB])
        assert choice.gather_entries == 1

    def test_zero_segments_rejected(self, sim):
        driver, _ = make_mx_driver(sim)
        with pytest.raises(CapabilityError):
            driver.choose_aggregation([])


class TestSend:
    def packet(self, size=1024, n=1, kind=PacketKind.EAGER):
        segs = tuple(WireSegment(f"p{i}", 0, size // n) for i in range(n))
        return WirePacket(kind, "n0", "n1", 0, segs)

    def test_send_returns_costs_and_occupies_nic(self, sim):
        driver, deliveries = make_mx_driver(sim)
        busy, arrival = driver.send(self.packet())
        assert 0 < busy < arrival
        assert not driver.idle
        sim.run()
        assert driver.idle
        assert len(deliveries) == 1

    def test_oversized_eager_rejected(self, sim):
        driver, _ = make_mx_driver(sim)
        size = driver.caps.max_aggregate_size + 1
        with pytest.raises(CapabilityError):
            driver.send(self.packet(size=size))

    def test_rdv_data_exempt_from_aggregate_limit(self, sim):
        driver, _ = make_mx_driver(sim)
        size = 4 * driver.caps.max_aggregate_size
        busy, _ = driver.send(self.packet(size=size, kind=PacketKind.RDV_DATA))
        assert busy > 0

    def test_pio_unsupported_rejected(self, sim):
        from repro.network.technologies import gige_tcp

        nic = NIC(sim, "t", "n0", gige_tcp(), lambda p, o: None)
        driver = TcpDriver(nic)
        pkt = WirePacket(PacketKind.EAGER, "n0", "n1", 0, (WireSegment("p", 0, 8),))
        with pytest.raises(CapabilityError):
            driver.send(pkt, mode=TransferMode.PIO)

    def test_rdv_control_on_no_rdv_driver_rejected(self, sim):
        from repro.network.technologies import gige_tcp

        nic = NIC(sim, "t", "n0", gige_tcp(), lambda p, o: None)
        driver = TcpDriver(nic)
        pkt = WirePacket(PacketKind.RDV_REQ, "n0", "n1", 0)
        with pytest.raises(CapabilityError):
            driver.send(pkt)

    def test_explicit_gather_over_limit_rejected(self, sim):
        driver, _ = make_mx_driver(sim)
        agg = AggregationChoice(copied_bytes=0, gather_entries=999)
        with pytest.raises(CapabilityError):
            driver.send(self.packet(n=2), aggregation=agg)

    def test_aggregated_send_costs_more_than_contiguous(self, sim):
        """Framing + assembly overhead is visible but small."""
        driver, _ = make_mx_driver(sim)
        busy_multi, _ = driver.send(self.packet(size=4096, n=8))
        sim.run()
        busy_single, _ = driver.send(self.packet(size=4096, n=1))
        assert busy_multi > busy_single
        assert busy_multi < 2 * busy_single


class TestPerTechnologyProfiles:
    def test_ib_inline_window_small(self, sim):
        from repro.network.technologies import infiniband

        nic = NIC(sim, "i", "n0", infiniband(), lambda p, o: None)
        driver = IbverbsDriver(nic)
        assert driver.choose_mode(256) is TransferMode.PIO
        assert driver.choose_mode(257) is TransferMode.DMA

    def test_elan_thresholds_above_mx(self, sim):
        from repro.network.technologies import quadrics_elan

        elan_nic = NIC(sim, "e", "n0", quadrics_elan(), lambda p, o: None)
        elan = ElanDriver(elan_nic)
        mx, _ = make_mx_driver(sim)
        assert elan.caps.eager_threshold > mx.caps.eager_threshold
        assert elan.caps.max_gather_entries > mx.caps.max_gather_entries
