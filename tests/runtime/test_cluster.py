"""Tests for cluster assembly."""

import pytest

from repro.baseline.legacy import LegacyEngine
from repro.core.channels import OneToOneChannels
from repro.core.config import EngineConfig
from repro.core.engine import OptimizingEngine
from repro.runtime.cluster import Cluster
from repro.util.errors import ConfigurationError


class TestConstruction:
    def test_defaults(self):
        c = Cluster()
        assert c.node_names == ["n0", "n1"]
        assert isinstance(c.engine("n0"), OptimizingEngine)
        assert len(c.fabric.node("n0").nics) == 1

    def test_engine_kinds(self):
        assert isinstance(Cluster(engine="legacy").engine("n0"), LegacyEngine)
        with pytest.raises(ConfigurationError):
            Cluster(engine="bogus")

    def test_n_nodes(self):
        c = Cluster(n_nodes=4)
        assert len(c.node_names) == 4
        with pytest.raises(ConfigurationError):
            Cluster(n_nodes=1)

    def test_networks_spec(self):
        c = Cluster(networks=[("mx", 2), ("elan", 1)])
        nics = c.fabric.node("n0").nics
        assert len(nics) == 3
        assert sorted(n.link.name for n in nics) == ["elan", "mx", "mx"]

    def test_unknown_technology(self):
        with pytest.raises(ConfigurationError):
            Cluster(networks=[("quantum", 1)])

    def test_bad_nic_count(self):
        with pytest.raises(ConfigurationError):
            Cluster(networks=[("mx", 0)])

    def test_empty_networks(self):
        with pytest.raises(ConfigurationError):
            Cluster(networks=[])

    def test_strategy_by_name(self):
        from repro.core.strategies import EagerStrategy

        c = Cluster(strategy="eager")
        assert isinstance(c.engine("n0").strategy, EagerStrategy)

    def test_strategy_by_factory(self):
        from repro.core.strategies import BoundedSearchStrategy

        c = Cluster(strategy=lambda: BoundedSearchStrategy(budget=2))
        strategy = c.engine("n0").strategy
        assert isinstance(strategy, BoundedSearchStrategy)
        assert strategy.budget == 2

    def test_policy_factory_fresh_per_node(self):
        c = Cluster(policy=OneToOneChannels)
        assert c.engine("n0").policy is not c.engine("n1").policy

    def test_config_shared(self):
        cfg = EngineConfig(lookahead_window=3)
        c = Cluster(config=cfg)
        assert c.engine("n0").config.lookahead_window == 3

    def test_rng_streams(self):
        c = Cluster(seed=9)
        assert c.stream("x") is c.stream("x")


class TestRunHelpers:
    def test_run_until(self):
        c = Cluster()
        assert c.run(until=1.0) == 1.0
        assert c.sim.now == 1.0

    def test_report_empty(self):
        c = Cluster()
        report = c.report()
        assert report.messages == 0
        assert report.throughput == 0.0
