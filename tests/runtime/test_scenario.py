"""Tests for declarative scenarios and the top-level CLI."""

import json

import pytest

from repro.runtime.scenario import (
    APP_TYPES,
    POLICY_TYPES,
    build_scenario,
    load_scenario_file,
    run_scenario,
)
from repro.util.errors import ConfigurationError


def minimal_scenario(**overrides):
    scenario = {
        "cluster": {"n_nodes": 2, "seed": 1},
        "workloads": [
            {"app": "stream", "src": "n0", "dst": "n1", "size": 256, "count": 20}
        ],
    }
    scenario.update(overrides)
    return scenario


class TestBuildScenario:
    def test_minimal(self):
        cluster, apps = build_scenario(minimal_scenario())
        assert cluster.node_names == ["n0", "n1"]
        assert len(apps) == 1

    def test_all_registered_apps_buildable(self):
        pair_params = {
            "pingpong": {"count": 2},
            "stream": {"count": 2},
            "rpc": {"calls": 2},
            "dsm": {"faults": 2},
            "global_arrays": {"operations": 2},
            "control": {"count": 2},
        }
        group_params = {
            "broadcast": {"rounds": 1},
            "barrier": {"rounds": 1},
            "allreduce": {"rounds": 1},
            "halo": {"iterations": 1},
        }
        workloads = [
            {"app": name, "src": "n0", "dst": "n1", **params}
            for name, params in pair_params.items()
        ] + [
            {"app": name, "nodes": ["n0", "n1"], **params}
            for name, params in group_params.items()
        ]
        assert {w["app"] for w in workloads} == set(APP_TYPES)
        cluster, apps = build_scenario(
            {"cluster": {"n_nodes": 2}, "workloads": workloads}
        )
        assert len(apps) == len(APP_TYPES)

    def test_policies_resolvable(self):
        for name in POLICY_TYPES:
            cluster, _ = build_scenario(
                minimal_scenario(cluster={"n_nodes": 2, "policy": name})
            )
            assert cluster is not None

    def test_engine_config_parsed(self):
        cluster, _ = build_scenario(
            minimal_scenario(
                cluster={"n_nodes": 2, "config": {"lookahead_window": 5}}
            )
        )
        assert cluster.engine("n0").config.lookahead_window == 5

    def test_traffic_class_parsed(self):
        from repro.network.virtual import TrafficClass

        scenario = minimal_scenario()
        scenario["workloads"][0]["traffic_class"] = "bulk"
        _, apps = build_scenario(scenario)
        assert apps[0].traffic_class is TrafficClass.BULK

    def test_networks_parsed(self):
        cluster, _ = build_scenario(
            minimal_scenario(cluster={"n_nodes": 2, "networks": [["mx", 2]]})
        )
        assert len(cluster.fabric.node("n0").nics) == 2


class TestValidation:
    def test_unknown_app(self):
        with pytest.raises(ConfigurationError, match="unknown app"):
            build_scenario(minimal_scenario(workloads=[{"app": "nope"}]))

    def test_missing_app_key(self):
        with pytest.raises(ConfigurationError, match="missing 'app'"):
            build_scenario(minimal_scenario(workloads=[{"src": "n0"}]))

    def test_missing_endpoints(self):
        with pytest.raises(ConfigurationError, match="endpoint"):
            build_scenario(minimal_scenario(workloads=[{"app": "pingpong"}]))

    def test_bad_param(self):
        with pytest.raises(ConfigurationError):
            build_scenario(
                minimal_scenario(
                    workloads=[
                        {"app": "stream", "src": "n0", "dst": "n1", "bogus": 1}
                    ]
                )
            )

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            build_scenario(minimal_scenario(cluster={"policy": "nope"}))

    def test_unknown_traffic_class(self):
        scenario = minimal_scenario()
        scenario["workloads"][0]["traffic_class"] = "vip"
        with pytest.raises(ConfigurationError, match="traffic class"):
            build_scenario(scenario)

    def test_no_workloads(self):
        with pytest.raises(ConfigurationError, match="no workloads"):
            build_scenario({"cluster": {"n_nodes": 2}, "workloads": []})

    def test_bad_config_key(self):
        with pytest.raises(ConfigurationError, match="engine config"):
            build_scenario(
                minimal_scenario(cluster={"config": {"warp_speed": 9}})
            )

    def test_unknown_scenario_key_named_in_error(self):
        with pytest.raises(ConfigurationError, match="workload"):
            build_scenario(minimal_scenario(workload=[{"app": "stream"}]))

    def test_unknown_cluster_key_named_in_error(self):
        with pytest.raises(ConfigurationError, match="node_count"):
            build_scenario(minimal_scenario(cluster={"node_count": 2}))

    def test_unknown_run_key_named_in_error(self):
        with pytest.raises(ConfigurationError, match="stop_at"):
            run_scenario(minimal_scenario(run={"stop_at": 1.0}))

    def test_unknown_faults_key_named_in_error(self):
        from repro.util.errors import FaultInjectionError

        with pytest.raises(FaultInjectionError, match="drp"):
            build_scenario(minimal_scenario(faults={"drp": 0.1}))


class TestFaultsBlock:
    def test_faults_block_installs_plane(self):
        cluster, _ = build_scenario(
            minimal_scenario(faults={"drop": 0.02, "seed": 4})
        )
        assert cluster.fault_plane is not None
        assert cluster.fault_plane.default.drop == 0.02
        assert cluster.fault_plane.seed == 4
        assert cluster.transport is not None

    def test_faults_seed_defaults_to_cluster_seed(self):
        cluster, _ = build_scenario(minimal_scenario(faults={"drop": 0.02}))
        assert cluster.fault_plane.seed == 1  # from cluster.seed

    def test_reliability_subblock_parsed(self):
        cluster, _ = build_scenario(
            minimal_scenario(faults={"drop": 0.02, "reliability": {"max_retries": 3}})
        )
        assert cluster.transport.config.max_retries == 3

    def test_lossy_scenario_runs_to_completion(self):
        scenario = minimal_scenario(faults={"drop": 0.3, "seed": 5})
        report, cluster, apps = run_scenario(scenario)
        assert report.messages == 20
        assert all(a.done.done for a in apps)
        assert report.packets_dropped > 0
        assert report.retransmits > 0

    def test_cli_faults_override(self, capsys, tmp_path):
        from repro.__main__ import main

        path = tmp_path / "s.json"
        path.write_text(json.dumps(minimal_scenario()))
        assert main(["run", str(path), "--faults", "drop=0.05,seed=11"]) == 0
        out = capsys.readouterr().out
        assert "retransmits" in out

    def test_cli_faults_off_disables_scenario_block(self, capsys, tmp_path):
        from repro.__main__ import main

        path = tmp_path / "s.json"
        path.write_text(json.dumps(minimal_scenario(faults={"drop": 0.5})))
        assert main(["run", str(path), "--faults", "off"]) == 0
        out = capsys.readouterr().out
        assert "retransmits" not in out

    def test_cli_faults_malformed_rejected(self, tmp_path):
        from repro.__main__ import main

        path = tmp_path / "s.json"
        path.write_text(json.dumps(minimal_scenario()))
        with pytest.raises(ConfigurationError, match="--faults"):
            main(["run", str(path), "--faults", "drop"])


class TestRunScenario:
    def test_runs_to_completion(self):
        report, cluster, apps = run_scenario(minimal_scenario())
        assert report.messages == 20
        assert all(app.done.done for app in apps)

    def test_until_window(self):
        scenario = minimal_scenario(run={"until": 1e-5})
        report, cluster, _ = run_scenario(scenario)
        assert cluster.sim.now == 1e-5


class TestScenarioFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(minimal_scenario()))
        report, _, _ = run_scenario(load_scenario_file(path))
        assert report.messages == 20

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError):
            load_scenario_file(path)


class TestTopLevelCli:
    def test_info(self, capsys):
        from repro.__main__ import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "strategies" in out and "E10" in out

    def test_run(self, capsys, tmp_path):
        from repro.__main__ import main

        path = tmp_path / "s.json"
        path.write_text(json.dumps(minimal_scenario()))
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "messages completed   : 20" in out

    def test_run_histogram_flag(self, capsys, tmp_path):
        from repro.__main__ import main

        path = tmp_path / "s.json"
        path.write_text(json.dumps(minimal_scenario()))
        assert main(["run", str(path), "--histogram"]) == 0
        out = capsys.readouterr().out
        assert "latency histogram" in out
        assert "#" in out

    def test_run_json_tail_columns(self, capsys, tmp_path):
        from repro.__main__ import main

        # Traced run: the sketch-fed tail columns are real numbers.
        path = tmp_path / "s.json"
        path.write_text(json.dumps(minimal_scenario(observability={})))
        assert main(["run", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)["report"]
        assert report["latency_p999_us"] >= report["latency_p99_us"] > 0
        # Untraced run: the columns are present but null.
        path.write_text(json.dumps(minimal_scenario()))
        assert main(["run", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)["report"]
        assert report["latency_p99_us"] is None
        assert report["latency_p999_us"] is None

    def test_run_incomplete_warns(self, capsys, tmp_path):
        from repro.__main__ import main

        # A closed-loop app cannot finish inside a 0.1 us window.
        scenario = minimal_scenario(
            workloads=[{"app": "pingpong", "src": "n0", "dst": "n1", "count": 50}],
            run={"until": 1e-7},
        )
        path = tmp_path / "s.json"
        path.write_text(json.dumps(scenario))
        assert main(["run", str(path)]) == 1
        assert "WARNING" in capsys.readouterr().out
