"""Tests for the periodic cluster sampler."""

import pytest

from repro.middleware import StreamApp
from repro.runtime import Cluster, PeriodicSampler, run_session
from repro.util.errors import ConfigurationError
from repro.util.units import us


def loaded_cluster():
    cluster = Cluster(seed=6)
    apps = [
        StreamApp(size=2048, count=50, interval=2 * us, name=f"s{i}")
        for i in range(4)
    ]
    return cluster, apps


class TestSampling:
    def test_collects_samples_at_interval(self):
        cluster, apps = loaded_cluster()
        sampler = PeriodicSampler(cluster, interval=10 * us)
        run_session(cluster, [a.install for a in apps])
        assert len(sampler.samples) >= 5
        gaps = [
            b - a for a, b in zip(sampler.times[:-1], sampler.times[1:])
        ]
        assert all(abs(g - 10 * us) < 1e-12 for g in gaps)

    def test_backlog_series_sees_queueing(self):
        cluster, apps = loaded_cluster()
        sampler = PeriodicSampler(cluster, interval=5 * us)
        run_session(cluster, [a.install for a in apps])
        time, peak = sampler.peak_backlog()
        assert peak > 0
        assert time >= 0
        # Backlog eventually drains to zero.
        assert sampler.samples[-1].backlog == 0

    def test_stops_when_quiescent(self):
        """run_until_idle must terminate despite the self-rescheduling
        sampler (auto-stop on quiescence)."""
        cluster, apps = loaded_cluster()
        PeriodicSampler(cluster, interval=10 * us)
        final = run_session(cluster, [a.install for a in apps])
        assert final.messages == 200  # drained, no livelock

    def test_horizon_bounds_sampling(self):
        cluster, apps = loaded_cluster()
        sampler = PeriodicSampler(cluster, interval=10 * us, horizon=50 * us)
        run_session(cluster, [a.install for a in apps])
        assert all(s.time <= 50 * us for s in sampler.samples)

    def test_messages_completed_monotone(self):
        cluster, apps = loaded_cluster()
        sampler = PeriodicSampler(cluster, interval=10 * us)
        run_session(cluster, [a.install for a in apps])
        completed = sampler.series("messages_completed")
        assert all(b >= a for a, b in zip(completed[:-1], completed[1:]))
        assert completed[-1] == 200

    def test_utilization_between(self):
        cluster, apps = loaded_cluster()
        sampler = PeriodicSampler(cluster, interval=10 * us)
        run_session(cluster, [a.install for a in apps])
        times = sampler.times
        utilization = sampler.utilization_between(times[0], times[3])
        assert 0.0 < utilization <= 1.0


class TestValidation:
    def test_interval_positive(self):
        with pytest.raises(ConfigurationError):
            PeriodicSampler(Cluster(), interval=0.0)

    def test_horizon_positive(self):
        with pytest.raises(ConfigurationError):
            PeriodicSampler(Cluster(), interval=1e-6, horizon=-1.0)

    def test_unknown_field(self):
        cluster = Cluster()
        sampler = PeriodicSampler(cluster, interval=1e-6, horizon=1e-5)
        cluster.run(until=1e-5)
        with pytest.raises(ConfigurationError):
            sampler.series("bogus")

    def test_peak_requires_samples(self):
        sampler = PeriodicSampler(Cluster(), interval=1e-6, horizon=1e-6)
        with pytest.raises(ConfigurationError):
            sampler.peak_backlog()

    def test_bad_window(self):
        cluster, apps = loaded_cluster()
        sampler = PeriodicSampler(cluster, interval=10 * us)
        run_session(cluster, [a.install for a in apps])
        with pytest.raises(ConfigurationError):
            sampler.utilization_between(1.0, 0.5)
