"""Tests for metrics collection and session reports."""

import math

import pytest

from repro.network.virtual import TrafficClass
from repro.runtime import Cluster, run_session
from repro.runtime.metrics import LatencySummary
from repro.util.errors import SimulationError


class TestLatencySummary:
    def test_of_samples(self):
        s = LatencySummary.of([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0

    def test_empty_is_nan(self):
        s = LatencySummary.of([])
        assert s.count == 0
        assert math.isnan(s.mean)


class TestReport:
    def make_report(self, **send_kwargs):
        c = Cluster(seed=2)
        api = c.api("n0")
        flow = api.open_flow("n1", traffic_class=TrafficClass.BULK)
        for _ in range(10):
            api.send(flow, 1024, **send_kwargs)
        c.run_until_idle()
        return c.report()

    def test_counts_and_bytes(self):
        report = self.make_report(header_size=0)
        assert report.messages == 10
        assert report.total_bytes == 10 * 1024
        assert report.message_rate > 0
        assert report.duration > 0

    def test_by_class_breakdown(self):
        report = self.make_report()
        assert TrafficClass.BULK in report.latency_by_class
        assert report.latency_by_class[TrafficClass.BULK].count == 10
        assert TrafficClass.CONTROL not in report.latency_by_class

    def test_row_keys(self):
        row = self.make_report().row()
        assert {"messages", "tput_MBps", "mean_lat_us", "transactions", "agg_ratio"} <= set(row)

    def test_nic_utilization_bounded(self):
        report = self.make_report()
        assert 0 < report.nic_utilization <= 1.0

    def test_latency_filtering(self):
        c = Cluster(seed=2)
        api = c.api("n0")
        flow = api.open_flow("n1", name="special")
        api.send(flow, 64)
        c.run_until_idle()
        assert len(c.metrics.latencies(flow_name="special")) == 1
        assert c.metrics.latencies(flow_name="other") == []
        assert len(c.metrics.latencies(traffic_class=TrafficClass.DEFAULT)) == 1


class TestRunSession:
    def test_warmup_excludes_early_messages(self):
        from repro.middleware import StreamApp

        c = Cluster(seed=4)
        app = StreamApp(count=50, size=128, interval=5e-6, jitter=False)
        report = run_session(c, [app.install], warmup=100e-6)
        assert 0 < report.messages < 50

    def test_until_stops_clock(self):
        from repro.middleware import StreamApp

        c = Cluster(seed=4)
        app = StreamApp(count=10_000, size=128, interval=5e-6)
        report = run_session(c, [app.install], until=200e-6)
        assert c.sim.now == 200e-6
        assert report.messages < 10_000

    def test_validation(self):
        c = Cluster()
        with pytest.raises(SimulationError):
            run_session(c, [], warmup=-1.0)
        with pytest.raises(SimulationError):
            run_session(c, [], until=1.0, warmup=2.0)
