"""Tests for the LinkModel cost structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.model import LinkModel, TransferMode
from repro.util.errors import ConfigurationError
from repro.util.units import mb_per_s, us


def make_link(**overrides) -> LinkModel:
    params = dict(
        name="test",
        pio_latency=1.0 * us,
        pio_bandwidth=100 * mb_per_s,
        dma_latency=3.0 * us,
        dma_bandwidth=250 * mb_per_s,
        wire_latency=0.5 * us,
        copy_bandwidth=1000 * mb_per_s,
        gather_entry_cost=0.1 * us,
        rx_overhead=0.5 * us,
    )
    params.update(overrides)
    return LinkModel(**params)


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        ["pio_latency", "pio_bandwidth", "dma_latency", "dma_bandwidth", "copy_bandwidth"],
    )
    def test_positive_fields(self, field):
        with pytest.raises(ConfigurationError):
            make_link(**{field: 0.0})

    @pytest.mark.parametrize("field", ["wire_latency", "gather_entry_cost", "rx_overhead"])
    def test_non_negative_fields(self, field):
        with pytest.raises(ConfigurationError):
            make_link(**{field: -1.0})
        make_link(**{field: 0.0})  # zero allowed


class TestOccupancy:
    def test_zero_bytes_costs_startup(self):
        link = make_link()
        assert link.sender_occupancy(0, TransferMode.PIO) == pytest.approx(1.0 * us)
        assert link.sender_occupancy(0, TransferMode.DMA) == pytest.approx(3.0 * us)

    def test_linear_in_size(self):
        link = make_link()
        t1 = link.sender_occupancy(1000, TransferMode.DMA)
        t2 = link.sender_occupancy(2000, TransferMode.DMA)
        assert t2 - t1 == pytest.approx(1000 / (250 * mb_per_s))

    def test_copy_cost_added(self):
        link = make_link()
        base = link.sender_occupancy(4096, TransferMode.DMA)
        copied = link.sender_occupancy(4096, TransferMode.DMA, copied_bytes=4096)
        assert copied - base == pytest.approx(4096 / (1000 * mb_per_s))

    def test_gather_entries_cost(self):
        link = make_link()
        one = link.sender_occupancy(4096, TransferMode.DMA, gather_entries=1)
        four = link.sender_occupancy(4096, TransferMode.DMA, gather_entries=4)
        assert four - one == pytest.approx(3 * 0.1 * us)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            make_link().sender_occupancy(-1, TransferMode.PIO)

    def test_copied_bytes_bounds(self):
        link = make_link()
        with pytest.raises(ConfigurationError):
            link.sender_occupancy(100, TransferMode.DMA, copied_bytes=101)
        with pytest.raises(ConfigurationError):
            link.sender_occupancy(100, TransferMode.DMA, copied_bytes=-1)

    def test_gather_entries_minimum(self):
        with pytest.raises(ConfigurationError):
            make_link().sender_occupancy(100, TransferMode.DMA, gather_entries=0)

    @given(st.integers(min_value=0, max_value=10_000_000))
    def test_one_way_exceeds_occupancy(self, size):
        link = make_link()
        for mode in TransferMode:
            occ = link.sender_occupancy(size, mode)
            assert link.one_way_time(size, mode) >= occ

    @given(
        st.integers(min_value=0, max_value=1_000_000),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_monotone_in_size(self, a, b):
        link = make_link()
        small, large = min(a, b), max(a, b)
        assert link.sender_occupancy(small, TransferMode.DMA) <= link.sender_occupancy(
            large, TransferMode.DMA
        )


class TestCrossover:
    def test_crossover_where_costs_equal(self):
        link = make_link()
        s = link.pio_dma_crossover()
        pio = link.sender_occupancy(int(s), TransferMode.PIO)
        dma = link.sender_occupancy(int(s), TransferMode.DMA)
        assert pio == pytest.approx(dma, rel=1e-3)

    def test_pio_cheaper_below_crossover(self):
        link = make_link()
        s = int(link.pio_dma_crossover())
        below = s // 2
        assert link.sender_occupancy(below, TransferMode.PIO) < link.sender_occupancy(
            below, TransferMode.DMA
        )

    def test_dma_cheaper_above_crossover(self):
        link = make_link()
        s = int(link.pio_dma_crossover())
        above = s * 2
        assert link.sender_occupancy(above, TransferMode.DMA) < link.sender_occupancy(
            above, TransferMode.PIO
        )

    def test_pio_always_better(self):
        # PIO faster per byte AND lower startup: crossover at infinity.
        link = make_link(pio_bandwidth=500 * mb_per_s, dma_bandwidth=250 * mb_per_s)
        assert link.pio_dma_crossover() == float("inf")

    def test_dma_always_better(self):
        link = make_link(
            pio_latency=5.0 * us,
            dma_latency=1.0 * us,
            pio_bandwidth=100 * mb_per_s,
            dma_bandwidth=500 * mb_per_s,
        )
        assert link.pio_dma_crossover() == 0.0
