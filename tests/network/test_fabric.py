"""Tests for nodes, networks, routing, and reachability."""

import pytest

from repro.network.fabric import Fabric
from repro.network.technologies import myrinet_mx, quadrics_elan
from repro.network.wire import PacketKind, WirePacket, WireSegment
from repro.sim import Simulator
from repro.util.errors import ConfigurationError, ProtocolError


@pytest.fixture
def fabric():
    return Fabric(Simulator())


class TestConstruction:
    def test_add_node(self, fabric):
        node = fabric.add_node("n0")
        assert fabric.node("n0") is node
        assert node.nics == []

    def test_duplicate_node_rejected(self, fabric):
        fabric.add_node("n0")
        with pytest.raises(ConfigurationError):
            fabric.add_node("n0")

    def test_unknown_node_rejected(self, fabric):
        with pytest.raises(ConfigurationError):
            fabric.node("missing")

    def test_add_network(self, fabric):
        net = fabric.add_network("mx0", myrinet_mx())
        assert fabric.network("mx0") is net

    def test_duplicate_network_rejected(self, fabric):
        fabric.add_network("mx0", myrinet_mx())
        with pytest.raises(ConfigurationError):
            fabric.add_network("mx0", quadrics_elan())

    def test_attach_creates_nic(self, fabric):
        net = fabric.add_network("mx0", myrinet_mx())
        node = fabric.add_node("n0")
        nic = net.attach(node)
        assert nic in node.nics
        assert nic.network is net
        assert nic.link.name == "mx"
        assert "n0" in net.members

    def test_multiple_nics_unique_names(self, fabric):
        net = fabric.add_network("mx0", myrinet_mx())
        node = fabric.add_node("n0")
        a = net.attach(node)
        b = net.attach(node)
        assert a.name != b.name
        assert node.nic(a.name) is a

    def test_node_nic_lookup_missing(self, fabric):
        node = fabric.add_node("n0")
        with pytest.raises(ConfigurationError):
            node.nic("nope")

    def test_nodes_and_networks_properties(self, fabric):
        fabric.add_node("a")
        fabric.add_node("b")
        fabric.add_network("mx0", myrinet_mx())
        assert [n.name for n in fabric.nodes] == ["a", "b"]
        assert [n.name for n in fabric.networks] == ["mx0"]


class TestRouting:
    def test_packet_reaches_destination_receiver(self, fabric):
        sim = fabric.sim
        net = fabric.add_network("mx0", myrinet_mx())
        a, b = fabric.add_node("a"), fabric.add_node("b")
        nic = net.attach(a)
        net.attach(b)
        received = []
        fabric.node("b").receiver.register_default_sink(received.append)
        pkt = WirePacket(PacketKind.EAGER, "a", "b", 0, (WireSegment("x", 0, 64),))
        nic.submit(pkt, occupancy=1e-6, one_way=2e-6)
        sim.run()
        assert received == [pkt]

    def test_unreachable_destination_raises(self, fabric):
        sim = fabric.sim
        net = fabric.add_network("mx0", myrinet_mx())
        a = fabric.add_node("a")
        fabric.add_node("c")  # not attached to mx0
        nic = net.attach(a)
        pkt = WirePacket(PacketKind.EAGER, "a", "c", 0, (WireSegment("x", 0, 64),))
        nic.submit(pkt, occupancy=1e-6, one_way=2e-6)
        with pytest.raises(ConfigurationError):
            sim.run()

    def test_reaches_reflects_membership(self, fabric):
        net = fabric.add_network("mx0", myrinet_mx())
        elan = fabric.add_network("elan0", quadrics_elan())
        a, b, c = fabric.add_node("a"), fabric.add_node("b"), fabric.add_node("c")
        mx_nic = net.attach(a)
        net.attach(b)
        elan_nic = elan.attach(a)
        elan.attach(c)
        assert mx_nic.reaches("b") and not mx_nic.reaches("c")
        assert elan_nic.reaches("c") and not elan_nic.reaches("b")
