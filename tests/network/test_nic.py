"""Tests for the NIC busy/idle state machine — the paper's trigger point."""

import pytest

from repro.network.nic import NIC
from repro.network.technologies import myrinet_mx
from repro.network.wire import PacketKind, WirePacket, WireSegment
from repro.sim import Simulator
from repro.util.errors import SimulationError
from repro.util.tracing import TraceRecorder


def make_nic(sim, deliveries=None):
    deliveries = deliveries if deliveries is not None else []

    def deliver(packet, occupancy):
        deliveries.append((sim.now, packet))

    return NIC(sim, "nic0", "n0", myrinet_mx(), deliver), deliveries


def packet(size=100):
    return WirePacket(
        PacketKind.EAGER, "n0", "n1", 0, (WireSegment("payload", 0, size),)
    )


class TestStateMachine:
    def test_starts_idle(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        assert nic.idle

    def test_busy_during_transfer(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        nic.submit(packet(), occupancy=1e-6, one_way=2e-6)
        assert not nic.idle
        sim.run()
        assert nic.idle

    def test_submit_while_busy_rejected(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        nic.submit(packet(), occupancy=1e-6, one_way=2e-6)
        with pytest.raises(SimulationError):
            nic.submit(packet(), occupancy=1e-6, one_way=2e-6)

    def test_wrong_source_rejected(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        foreign = WirePacket(
            PacketKind.EAGER, "other", "n1", 0, (WireSegment("p", 0, 10),)
        )
        with pytest.raises(SimulationError):
            nic.submit(foreign, occupancy=1e-6, one_way=2e-6)

    def test_inconsistent_timings_rejected(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        with pytest.raises(SimulationError):
            nic.submit(packet(), occupancy=0.0, one_way=1e-6)
        with pytest.raises(SimulationError):
            nic.submit(packet(), occupancy=2e-6, one_way=1e-6)

    def test_delivery_at_one_way_time(self):
        sim = Simulator()
        nic, deliveries = make_nic(sim)
        nic.submit(packet(), occupancy=1e-6, one_way=3e-6)
        sim.run()
        assert len(deliveries) == 1
        assert deliveries[0][0] == pytest.approx(3e-6)


class TestIdleCallbacks:
    def test_fires_at_idle_transition(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        idle_times = []
        nic.on_idle(lambda n: idle_times.append(sim.now))
        nic.submit(packet(), occupancy=5e-6, one_way=6e-6)
        sim.run()
        assert idle_times == [pytest.approx(5e-6)]

    def test_subscriber_can_refill_nic(self):
        """The optimizer pattern: the idle callback submits the next packet."""
        sim = Simulator()
        nic, deliveries = make_nic(sim)
        backlog = [packet(), packet()]

        def refill(n):
            if backlog:
                n.submit(backlog.pop(0), occupancy=1e-6, one_way=2e-6)

        nic.on_idle(refill)
        nic.submit(packet(), occupancy=1e-6, one_way=2e-6)
        sim.run()
        assert len(deliveries) == 3
        assert not backlog

    def test_later_subscribers_skipped_after_refill(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        calls = []

        def first(n):
            calls.append("first")
            n.submit(packet(), occupancy=1e-6, one_way=2e-6)

        def second(n):
            calls.append("second")

        nic.on_idle(first)
        nic.on_idle(second)
        nic.submit(packet(), occupancy=1e-6, one_way=2e-6)
        sim.run(until=1.5e-6)
        assert calls == ["first"]  # second not told about a busy NIC


class TestStats:
    def test_counters(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        nic.submit(packet(100), occupancy=1e-6, one_way=2e-6)
        sim.run()
        nic.submit(packet(200), occupancy=2e-6, one_way=3e-6)
        sim.run()
        assert nic.stats.requests == 2
        assert nic.stats.payload_bytes == 300
        assert nic.stats.busy_time == pytest.approx(3e-6)
        assert nic.stats.kind_counts == {"eager": 2}

    def test_utilization(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        nic.submit(packet(), occupancy=1e-6, one_way=2e-6)
        sim.run()
        assert nic.stats.utilization(elapsed=4e-6) == pytest.approx(0.25)
        assert nic.stats.utilization(elapsed=0.0) == 0.0


class TestReaches:
    def test_permissive_without_network(self):
        sim = Simulator()
        nic, _ = make_nic(sim)
        assert nic.reaches("anything")


class TestTracing:
    def test_send_and_idle_events(self):
        tracer = TraceRecorder()
        sim = Simulator(tracer)
        nic, _ = make_nic(sim)
        nic.submit(packet(), occupancy=1e-6, one_way=2e-6)
        sim.run()
        assert len(tracer.of_kind("nic.send")) == 1
        assert len(tracer.of_kind("nic.idle")) == 1
