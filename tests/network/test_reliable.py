"""Tests for the ACK/retransmit reliability protocol."""

import pytest

from repro.network.fabric import Fabric
from repro.network.faults import FaultPlane, FaultSpec, FaultVerdict
from repro.network.reliable import ReliabilityConfig, ReliableTransport
from repro.network.technologies import myrinet_mx, quadrics_elan
from repro.network.wire import PacketKind, WirePacket, WireSegment
from repro.sim import Simulator
from repro.util.errors import ConfigurationError, ProtocolError, TransportError

OCC = 1e-6
ONE_WAY = 2e-6


class ScriptedPlane(FaultPlane):
    """A plane replaying a fixed verdict script (then clean forever)."""

    def __init__(self, verdicts=(), ack_losses=()):
        super().__init__()
        self._verdicts = list(verdicts)
        self._ack_losses = list(ack_losses)

    def judge(self, nic):
        self.stats.judged += 1
        return self._verdicts.pop(0) if self._verdicts else FaultVerdict()

    def judge_ack(self, nic):
        return self._ack_losses.pop(0) if self._ack_losses else False


def make_stack(plane=None, config=None, n_networks=1):
    """Two-node fabric with a transport installed and a list-collecting sink."""
    sim = Simulator()
    fabric = Fabric(sim)
    techs = [myrinet_mx, quadrics_elan]
    for i in range(n_networks):
        network = fabric.add_network(f"net{i}", techs[i]())
        if i == 0:
            for name in ("n0", "n1"):
                network.attach(fabric.add_node(name))
        else:
            for name in ("n0", "n1"):
                network.attach(fabric.node(name))
    transport = ReliableTransport(sim, fabric, plane, config)
    transport.install()
    received = []
    for node in fabric.nodes:
        node.receiver.register_default_sink(received.append)
    return sim, fabric, transport, received


def data_packet(channel=0, size=64, src="n0", dst="n1"):
    return WirePacket(
        PacketKind.EAGER, src, dst, channel, (WireSegment("x", 0, size),)
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReliabilityConfig(max_retries=-1)
        with pytest.raises(ConfigurationError):
            ReliabilityConfig(rto=0.0)
        with pytest.raises(ConfigurationError):
            ReliabilityConfig(backoff=0.5)
        with pytest.raises(ConfigurationError):
            ReliabilityConfig(ack_delay=-1.0)

    def test_rto_scales_with_one_way_and_backoff(self):
        config = ReliabilityConfig(backoff=2.0)
        assert config.rto_for(ONE_WAY, 0) == pytest.approx(4 * ONE_WAY)
        assert config.rto_for(ONE_WAY, 2) == pytest.approx(16 * ONE_WAY)
        fixed = ReliabilityConfig(rto=1e-3)
        assert fixed.rto_for(ONE_WAY, 1) == pytest.approx(2e-3)

    def test_from_spec(self):
        config = ReliabilityConfig.from_spec({"max_retries": 3, "backoff": 1.5})
        assert config.max_retries == 3 and config.backoff == 1.5

    def test_from_spec_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="retries"):
            ReliabilityConfig.from_spec({"retries": 3})


class TestCleanPath:
    def test_delivered_once_and_acknowledged(self):
        sim, fabric, transport, received = make_stack()
        fabric.node("n0").nics[0].submit(data_packet(), OCC, ONE_WAY)
        sim.run()
        assert len(received) == 1
        assert transport.in_flight == 0
        assert transport.stats.retransmits == 0
        assert transport.stats.acks_sent == 1

    def test_sequence_numbers_per_stream(self):
        sim, fabric, transport, received = make_stack()
        nic = fabric.node("n0").nics[0]
        for channel in (0, 0, 1):
            packet = data_packet(channel=channel)
            nic.submit(packet, OCC, ONE_WAY)
            sim.run()
        seqs = [(p.channel_id, p.meta["rel_seq"]) for p in received]
        assert seqs == [(0, 0), (0, 1), (1, 0)]


class TestRetransmit:
    def test_dropped_packet_retransmitted_once(self):
        plane = ScriptedPlane(verdicts=[FaultVerdict(drop=True)])
        sim, fabric, transport, received = make_stack(plane)
        fabric.node("n0").nics[0].submit(data_packet(), OCC, ONE_WAY)
        sim.run()
        assert len(received) == 1
        assert transport.stats.retransmits == 1
        assert transport.in_flight == 0

    def test_corrupt_copy_discarded_and_retransmitted(self):
        plane = ScriptedPlane(verdicts=[FaultVerdict(corrupt=True)])
        sim, fabric, transport, received = make_stack(plane)
        fabric.node("n0").nics[0].submit(data_packet(), OCC, ONE_WAY)
        sim.run()
        assert len(received) == 1
        assert transport.stats.corrupt_discarded == 1
        assert transport.stats.retransmits == 1

    def test_duplicate_copy_deduplicated(self):
        plane = ScriptedPlane(verdicts=[FaultVerdict(duplicate=True)])
        sim, fabric, transport, received = make_stack(plane)
        fabric.node("n0").nics[0].submit(data_packet(), OCC, ONE_WAY)
        sim.run()
        assert len(received) == 1
        assert transport.stats.dups_discarded == 1
        assert transport.stats.retransmits == 0

    def test_lost_ack_triggers_reack_not_redelivery(self):
        plane = ScriptedPlane(ack_losses=[True])
        sim, fabric, transport, received = make_stack(plane)
        fabric.node("n0").nics[0].submit(data_packet(), OCC, ONE_WAY)
        sim.run()
        assert len(received) == 1  # retransmitted copy deduplicated
        assert transport.stats.retransmits == 1
        assert transport.stats.acks_dropped == 1
        assert transport.stats.dups_discarded == 1
        assert transport.in_flight == 0

    def test_retry_budget_exhaustion_raises(self):
        plane = FaultPlane(FaultSpec(drop=1.0))
        config = ReliabilityConfig(max_retries=2)
        sim, fabric, transport, received = make_stack(plane, config)
        fabric.node("n0").nics[0].submit(data_packet(), OCC, ONE_WAY)
        with pytest.raises(TransportError, match="unacknowledged after 3 attempts"):
            sim.run()
        assert received == []
        assert transport.stats.exhausted == 1


class TestReorderBuffer:
    def test_out_of_order_released_in_sequence(self):
        sim, fabric, transport, received = make_stack()
        packets = [data_packet() for _ in range(3)]
        for seq, packet in enumerate(packets):
            packet.meta["rel_seq"] = seq
        transport._ingest(packets[2])
        transport._ingest(packets[0])
        assert [p.meta["rel_seq"] for p in received] == [0]
        transport._ingest(packets[1])  # releases 1 and buffered 2
        assert [p.meta["rel_seq"] for p in received] == [0, 1, 2]
        assert transport.stats.reorder_held == 1

    def test_stale_and_buffered_duplicates_discarded(self):
        sim, fabric, transport, received = make_stack()
        packets = [data_packet() for _ in range(2)]
        for seq, packet in enumerate(packets):
            packet.meta["rel_seq"] = seq
        transport._ingest(packets[0])
        transport._ingest(packets[0])  # stale: seq below expected
        transport._ingest(packets[1])
        transport._ingest(packets[1])  # stale after flush
        assert len(received) == 2
        assert transport.stats.dups_discarded == 2

    def test_unsequenced_packet_passes_through(self):
        sim, fabric, transport, received = make_stack()
        transport._ingest(data_packet())
        assert len(received) == 1


class TestFailover:
    def test_retransmit_fails_over_to_surviving_rail(self):
        plane = ScriptedPlane(verdicts=[FaultVerdict(drop=True)])
        sim, fabric, transport, received = make_stack(plane, n_networks=2)
        node = fabric.node("n0")
        primary, secondary = node.nics
        primary.submit(data_packet(), OCC, ONE_WAY)
        sim.schedule(4e-6, primary.fail)  # before the ~8e-6 retransmit timer
        sim.run()
        assert len(received) == 1
        assert transport.stats.failovers == 1
        assert transport.stats.retransmits == 1
        assert secondary.stats.retransmits == 1

    def test_no_survivor_keeps_retrying_then_raises(self):
        plane = ScriptedPlane(verdicts=[FaultVerdict(drop=True)])
        config = ReliabilityConfig(max_retries=2)
        sim, fabric, transport, received = make_stack(plane, config)
        primary = fabric.node("n0").nics[0]
        primary.submit(data_packet(), OCC, ONE_WAY)
        sim.schedule(4e-6, primary.fail)
        with pytest.raises(TransportError):
            sim.run()
        assert received == []


class TestGuardWiring:
    def test_install_routes_nics_and_guards_receivers(self):
        sim, fabric, transport, received = make_stack()
        for node in fabric.nodes:
            for nic in node.nics:
                assert nic.transport is transport
        with pytest.raises(ProtocolError):
            fabric.node("n0").receiver.install_guard(lambda p: None)

    def test_deliver_routes_through_guard(self):
        sim, fabric, transport, received = make_stack()
        packet = data_packet()
        packet.meta["rel_seq"] = 1  # out of order: guard must hold it
        fabric.node("n1").receiver.deliver(packet)
        assert received == []
        assert transport.stats.reorder_held == 1
