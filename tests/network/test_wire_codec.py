"""Round-trip and corruption tests for the wire.py byte codec."""

from __future__ import annotations

import struct

import pytest

from repro.network.wire import (
    WIRE_MAGIC,
    WIRE_VERSION,
    DecodedFrame,
    PacketKind,
    WirePacket,
    WireSegment,
    decode_frame,
    encode_frame,
    encode_packet,
)
from repro.util.errors import ProtocolError, WireError


def _frame(**overrides) -> bytes:
    kwargs = dict(
        kind=PacketKind.EAGER,
        src="n0",
        dst="n1",
        channel_id=3,
        meta={"rdv": False, "token": 17},
        segments=[
            ({"flow": 1, "frag": 0}, 0, 5, b"hello"),
            ({"flow": 2, "frag": 4}, 128, 3, b"xyz"),
        ],
    )
    kwargs.update(overrides)
    return encode_frame(**kwargs)


class TestRoundTrip:
    def test_full_round_trip(self):
        frame = _frame()
        decoded = decode_frame(frame)
        assert isinstance(decoded, DecodedFrame)
        assert decoded.kind is PacketKind.EAGER
        assert decoded.src == "n0"
        assert decoded.dst == "n1"
        assert decoded.channel_id == 3
        assert decoded.meta == {"rdv": False, "token": 17}
        assert len(decoded.segments) == 2
        first, second = decoded.segments
        assert (first.descriptor, first.offset, first.length, first.data) == (
            {"flow": 1, "frag": 0},
            0,
            5,
            b"hello",
        )
        assert (second.descriptor, second.offset, second.length, second.data) == (
            {"flow": 2, "frag": 4},
            128,
            3,
            b"xyz",
        )

    def test_control_frame_without_segments(self):
        frame = _frame(kind=PacketKind.RDV_ACK, segments=[], meta={"msg": 9})
        decoded = decode_frame(frame)
        assert decoded.kind is PacketKind.RDV_ACK
        assert decoded.segments == ()
        assert decoded.meta == {"msg": 9}

    @pytest.mark.parametrize("kind", list(PacketKind))
    def test_every_kind_survives(self, kind):
        segs = [] if kind.is_control else [({"i": 0}, 0, 1, b"a")]
        assert decode_frame(_frame(kind=kind, segments=segs)).kind is kind

    def test_empty_payload_segment(self):
        decoded = decode_frame(_frame(segments=[({"z": True}, 7, 0, b"")]))
        assert decoded.segments[0].data == b""
        assert decoded.segments[0].offset == 7

    def test_large_payload(self):
        blob = bytes(range(256)) * 512  # 128 KiB
        decoded = decode_frame(_frame(segments=[({"big": 1}, 0, len(blob), blob)]))
        assert decoded.segments[0].data == blob

    def test_unicode_node_names_and_meta(self):
        frame = _frame(src="nœud-0", dst="ノード1", meta={"why": "héllo"})
        decoded = decode_frame(frame)
        assert decoded.src == "nœud-0"
        assert decoded.dst == "ノード1"
        assert decoded.meta["why"] == "héllo"

    def test_encode_packet_uses_packet_framing(self):
        packet = WirePacket(
            kind=PacketKind.EAGER,
            src="a",
            dst="b",
            channel_id=1,
            segments=(WireSegment(object(), 32, 4),),
            meta={"k": 1},
        )
        decoded = decode_frame(encode_packet(packet, [({"d": 0}, b"abcd")]))
        assert decoded.segments[0].offset == 32
        assert decoded.segments[0].data == b"abcd"
        assert decoded.meta == {"k": 1}

    def test_encode_packet_payload_count_mismatch(self):
        packet = WirePacket(
            kind=PacketKind.EAGER,
            src="a",
            dst="b",
            channel_id=1,
            segments=(WireSegment(object(), 0, 4),),
        )
        with pytest.raises(WireError, match="1 segments but 2 payloads"):
            encode_packet(packet, [({}, b"abcd"), ({}, b"efgh")])

    def test_encode_rejects_length_mismatch(self):
        with pytest.raises(WireError, match="disagrees"):
            encode_frame(PacketKind.EAGER, "a", "b", 0, {}, [({}, 0, 9, b"short")])


class TestCorruption:
    def test_empty_input(self):
        with pytest.raises(WireError, match="shorter than"):
            decode_frame(b"")

    def test_truncated_prefix(self):
        with pytest.raises(WireError, match="shorter than"):
            decode_frame(_frame()[:7])

    @pytest.mark.parametrize("keep", [17, 30, -1])
    def test_truncated_body(self, keep):
        frame = _frame()
        with pytest.raises(WireError, match="body is"):
            decode_frame(frame[:keep])

    def test_bad_magic(self):
        frame = bytearray(_frame())
        frame[:4] = b"JUNK"
        with pytest.raises(WireError, match="bad magic"):
            decode_frame(bytes(frame))

    def test_unsupported_version(self):
        frame = bytearray(_frame())
        frame[4] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="unsupported wire version"):
            decode_frame(bytes(frame))

    def test_unknown_kind_code(self):
        frame = bytearray(_frame())
        frame[5] = 250
        with pytest.raises(WireError, match="unknown packet kind"):
            decode_frame(bytes(frame))

    def test_flipped_payload_byte_fails_checksum(self):
        frame = bytearray(_frame())
        frame[-1] ^= 0xFF
        with pytest.raises(WireError, match="checksum mismatch"):
            decode_frame(bytes(frame))

    def test_flipped_header_byte_fails_checksum(self):
        frame = bytearray(_frame())
        frame[20] ^= 0x40  # inside the body header
        with pytest.raises(WireError, match="checksum"):
            decode_frame(bytes(frame))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(WireError, match="body is"):
            decode_frame(_frame() + b"garbage")

    def test_garbage_bytes_never_leak_struct_error(self):
        # Random-ish garbage of various lengths must always surface as
        # WireError, never IndexError/struct.error/UnicodeDecodeError.
        for n in (0, 1, 4, 12, 16, 40, 100):
            blob = bytes((i * 37 + 11) % 256 for i in range(n))
            with pytest.raises(WireError):
                decode_frame(blob)

    def test_magic_only_prefix_with_declared_body_but_no_body(self):
        # Craft a prefix that declares a body it does not carry.
        prefix = struct.pack("!4sBBBBII", WIRE_MAGIC, WIRE_VERSION, 0, 0, 0, 0, 64)
        with pytest.raises(WireError, match="body is 0 bytes"):
            decode_frame(prefix)

    def test_corrupt_meta_json_rejected(self):
        # Rebuild a frame whose CRC is valid but whose meta bytes are not
        # JSON: encode with a sentinel then patch both meta and CRC.
        import zlib

        frame = bytearray(_frame(meta={"A": 1}, segments=[]))
        body = bytearray(frame[16:])
        idx = bytes(body).index(b'{"A":1}')
        body[idx : idx + 7] = b"not-js}"
        frame[16:] = body
        frame[8:12] = struct.pack("!I", zlib.crc32(bytes(body)))
        with pytest.raises(WireError, match="malformed meta JSON"):
            decode_frame(bytes(frame))

    def test_meta_must_be_object(self):
        import zlib

        frame = bytearray(_frame(meta={"A": 1}, segments=[]))
        body = bytearray(frame[16:])
        idx = bytes(body).index(b'{"A":1}')
        body[idx : idx + 7] = b'[1,2,3]'
        frame[16:] = body
        frame[8:12] = struct.pack("!I", zlib.crc32(bytes(body)))
        with pytest.raises(WireError, match="must decode to an object"):
            decode_frame(bytes(frame))

    def test_wire_error_is_protocol_error(self):
        assert issubclass(WireError, ProtocolError)
        with pytest.raises(ProtocolError):
            decode_frame(b"nope")
