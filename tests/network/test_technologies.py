"""Sanity checks on the calibrated technology presets."""

import pytest

from repro.network.model import TransferMode
from repro.network.technologies import (
    TECHNOLOGIES,
    gige_tcp,
    infiniband,
    myrinet_mx,
    quadrics_elan,
)
from repro.util.units import KiB, MiB, us


class TestRegistry:
    def test_all_registered(self):
        assert set(TECHNOLOGIES) == {"mx", "elan", "ib", "tcp"}

    def test_names_match_keys(self):
        for key, factory in TECHNOLOGIES.items():
            assert factory().name == key

    def test_factories_return_fresh_equal_models(self):
        assert myrinet_mx() == myrinet_mx()


class TestCalibrationShapes:
    """The relative shapes the experiments rely on (not absolute values)."""

    def test_elan_lower_latency_than_mx(self):
        assert quadrics_elan().dma_latency < myrinet_mx().dma_latency

    def test_elan_higher_bandwidth_than_mx(self):
        assert quadrics_elan().dma_bandwidth > myrinet_mx().dma_bandwidth

    def test_ib_highest_bandwidth(self):
        ib = infiniband().dma_bandwidth
        assert ib > quadrics_elan().dma_bandwidth > myrinet_mx().dma_bandwidth

    def test_tcp_much_slower_startup(self):
        assert gige_tcp().dma_latency > 10 * myrinet_mx().dma_latency

    @pytest.mark.parametrize("factory", list(TECHNOLOGIES.values()))
    def test_pio_startup_below_dma_startup(self, factory):
        link = factory()
        assert link.pio_latency <= link.dma_latency

    @pytest.mark.parametrize("factory", list(TECHNOLOGIES.values()))
    def test_dma_bandwidth_above_pio(self, factory):
        link = factory()
        assert link.dma_bandwidth >= link.pio_bandwidth

    def test_mx_crossover_in_small_message_range(self):
        """PIO/DMA crossover on MX falls in the sub-4KiB regime."""
        crossover = myrinet_mx().pio_dma_crossover()
        assert 64 <= crossover <= 4 * KiB

    def test_mx_large_message_latency_scale(self):
        """A 1 MiB DMA transfer on MX takes about 4 ms (247 MB/s)."""
        t = myrinet_mx().one_way_time(1 * MiB, TransferMode.DMA)
        assert 3e-3 < t < 6e-3

    def test_mx_small_message_latency_scale(self):
        """Small-message PIO latency on MX is a few microseconds."""
        t = myrinet_mx().one_way_time(8, TransferMode.PIO)
        assert 1 * us < t < 5 * us
