"""Tests for receiver-side demultiplexing."""

import pytest

from repro.network.receiver import Receiver
from repro.network.wire import PacketKind, WirePacket, WireSegment
from repro.sim import Simulator
from repro.util.errors import ProtocolError


def data_packet(dst="n0", channel=0, size=64):
    return WirePacket(
        PacketKind.EAGER, "src", dst, channel, (WireSegment("x", 0, size),)
    )


def control_packet(kind=PacketKind.RDV_REQ, dst="n0"):
    return WirePacket(kind, "src", dst, 0, meta={"token": 7})


class TestDataDemux:
    def test_routes_by_channel(self):
        r = Receiver(Simulator(), "n0")
        ch0, ch1 = [], []
        r.register_sink(0, ch0.append)
        r.register_sink(1, ch1.append)
        r.deliver(data_packet(channel=0))
        r.deliver(data_packet(channel=1))
        assert len(ch0) == 1 and len(ch1) == 1

    def test_default_sink_catches_unregistered(self):
        r = Receiver(Simulator(), "n0")
        fallback = []
        r.register_default_sink(fallback.append)
        r.deliver(data_packet(channel=42))
        assert len(fallback) == 1

    def test_no_sink_raises(self):
        r = Receiver(Simulator(), "n0")
        with pytest.raises(ProtocolError):
            r.deliver(data_packet())

    def test_duplicate_sink_rejected(self):
        r = Receiver(Simulator(), "n0")
        r.register_sink(0, lambda p: None)
        with pytest.raises(ProtocolError):
            r.register_sink(0, lambda p: None)

    def test_wrong_destination_rejected(self):
        r = Receiver(Simulator(), "n0")
        r.register_default_sink(lambda p: None)
        with pytest.raises(ProtocolError):
            r.deliver(data_packet(dst="other"))

    def test_counters(self):
        r = Receiver(Simulator(), "n0")
        r.register_default_sink(lambda p: None)
        r.deliver(data_packet(size=100))
        r.deliver(data_packet(size=50))
        assert r.packets_received == 2
        assert r.bytes_received == 150


class TestControlDispatch:
    def test_routes_by_kind(self):
        r = Receiver(Simulator(), "n0")
        reqs, acks = [], []
        r.register_control_handler(PacketKind.RDV_REQ, reqs.append)
        r.register_control_handler(PacketKind.RDV_ACK, acks.append)
        r.deliver(control_packet(PacketKind.RDV_REQ))
        r.deliver(control_packet(PacketKind.RDV_ACK))
        assert len(reqs) == 1 and len(acks) == 1

    def test_missing_handler_raises(self):
        r = Receiver(Simulator(), "n0")
        with pytest.raises(ProtocolError):
            r.deliver(control_packet())

    def test_duplicate_handler_rejected(self):
        r = Receiver(Simulator(), "n0")
        r.register_control_handler(PacketKind.RDV_REQ, lambda p: None)
        with pytest.raises(ProtocolError):
            r.register_control_handler(PacketKind.RDV_REQ, lambda p: None)

    def test_data_kind_as_handler_rejected(self):
        r = Receiver(Simulator(), "n0")
        with pytest.raises(ProtocolError):
            r.register_control_handler(PacketKind.EAGER, lambda p: None)


class TestGuard:
    """A guard (the reliability layer) intercepts between arrival and demux."""

    def test_guard_intercepts_delivery(self):
        r = Receiver(Simulator(), "n0")
        held, dispatched = [], []
        r.register_default_sink(dispatched.append)
        r.install_guard(held.append)
        r.deliver(data_packet())
        assert len(held) == 1 and dispatched == []

    def test_guard_can_forward_via_dispatch(self):
        r = Receiver(Simulator(), "n0")
        dispatched = []
        r.register_default_sink(dispatched.append)
        r.install_guard(r.dispatch)
        r.deliver(data_packet())
        assert len(dispatched) == 1
        assert r.packets_received == 1

    def test_second_guard_rejected(self):
        r = Receiver(Simulator(), "n0")
        r.install_guard(lambda p: None)
        with pytest.raises(ProtocolError):
            r.install_guard(lambda p: None)

    def test_guard_still_checks_destination(self):
        r = Receiver(Simulator(), "n0")
        r.install_guard(lambda p: None)
        with pytest.raises(ProtocolError):
            r.deliver(data_packet(dst="other"))


class TestDuplicateDeliveryWithoutGuard:
    """Without the reliability guard, replaying a packet into the
    reassembler is a protocol violation — exactly the failure mode the
    transport's dedup exists to prevent."""

    def test_replayed_packet_raises(self):
        from repro.madeleine.message import Flow, Message
        from repro.madeleine.rx import MessageReassembler

        sim = Simulator()
        reassembler = MessageReassembler(sim, "n0")
        r = Receiver(sim, "n0")
        r.register_default_sink(reassembler.sink)
        flow = Flow("f", "src", "n0")
        message = Message(flow)
        message.add_fragment(64)
        message.submit_time = 0.0
        fragment = message.fragments[0]
        packet = WirePacket(
            PacketKind.EAGER, "src", "n0", 0, (WireSegment(fragment, 0, 64),)
        )
        r.deliver(packet)
        with pytest.raises(ProtocolError):
            r.deliver(packet)
