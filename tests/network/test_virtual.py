"""Tests for channels, pools, and traffic-class assignment."""

import pytest

from repro.network.virtual import Channel, ChannelPool, TrafficClass
from repro.util.errors import ConfigurationError


class TestChannel:
    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Channel(-1, "bad")


class TestChannelPool:
    def test_create_assigns_sequential_ids(self):
        pool = ChannelPool()
        a = pool.create("a")
        b = pool.create("b")
        assert (a.channel_id, b.channel_id) == (0, 1)
        assert len(pool) == 2
        assert 0 in pool and 2 not in pool

    def test_get(self):
        pool = ChannelPool()
        c = pool.create("x")
        assert pool.get(c.channel_id) is c
        with pytest.raises(ConfigurationError):
            pool.get(99)

    def test_channels_in_creation_order(self):
        pool = ChannelPool()
        names = ["a", "b", "c"]
        for n in names:
            pool.create(n)
        assert [c.name for c in pool.channels] == names


class TestAssignment:
    def test_assign_and_resolve(self):
        pool = ChannelPool()
        bulk = pool.create("bulk")
        ctrl = pool.create("ctrl")
        pool.assign(TrafficClass.BULK, bulk.channel_id)
        pool.assign(TrafficClass.CONTROL, ctrl.channel_id)
        assert pool.channel_for(TrafficClass.BULK) is bulk
        assert pool.channel_for(TrafficClass.CONTROL) is ctrl

    def test_default_fallback(self):
        pool = ChannelPool()
        default = pool.create("default")
        pool.assign(TrafficClass.DEFAULT, default.channel_id)
        assert pool.channel_for(TrafficClass.PUTGET) is default

    def test_first_channel_fallback(self):
        pool = ChannelPool()
        first = pool.create("first")
        pool.create("second")
        assert pool.channel_for(TrafficClass.BULK) is first

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelPool().channel_for(TrafficClass.BULK)

    def test_assign_unknown_channel_rejected(self):
        pool = ChannelPool()
        with pytest.raises(ConfigurationError):
            pool.assign(TrafficClass.BULK, 5)

    def test_reassignment_is_dynamic(self):
        """Paper §2: assignment may change while running."""
        pool = ChannelPool()
        a = pool.create("a")
        b = pool.create("b")
        pool.assign(TrafficClass.BULK, a.channel_id)
        assert pool.channel_for(TrafficClass.BULK) is a
        pool.assign(TrafficClass.BULK, b.channel_id)
        assert pool.channel_for(TrafficClass.BULK) is b

    def test_assignment_copy(self):
        pool = ChannelPool()
        a = pool.create("a")
        pool.assign(TrafficClass.BULK, a.channel_id)
        snapshot = pool.assignment
        snapshot[TrafficClass.BULK] = 99
        assert pool.channel_for(TrafficClass.BULK) is a
