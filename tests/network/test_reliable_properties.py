"""Property tests: the reliability protocol delivers exactly-once, in
order, under arbitrary seeded drop/duplicate/reorder patterns."""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.fabric import Fabric
from repro.network.faults import FaultPlane, FaultSpec
from repro.network.reliable import ReliabilityConfig, ReliableTransport
from repro.network.technologies import myrinet_mx
from repro.network.wire import PacketKind, WirePacket, WireSegment
from repro.sim import Simulator

OCC = 1e-6
ONE_WAY = 2e-6
SPACING = 1e-5  # inter-submit gap; > OCC so the NIC is idle again


def run_lossy_session(seed, drop, duplicate, jitter, n_packets, n_channels):
    sim = Simulator()
    fabric = Fabric(sim)
    network = fabric.add_network("mx0", myrinet_mx())
    for name in ("n0", "n1"):
        network.attach(fabric.add_node(name))
    plane = FaultPlane(
        FaultSpec(drop=drop, duplicate=duplicate, jitter=jitter), seed=seed
    )
    # A deep retry budget so pathological drop draws cannot exhaust it.
    transport = ReliableTransport(
        sim, fabric, plane, ReliabilityConfig(max_retries=64)
    )
    transport.install()
    received = []
    for node in fabric.nodes:
        node.receiver.register_default_sink(received.append)
    nic = fabric.node("n0").nics[0]
    for i in range(n_packets):
        packet = WirePacket(
            PacketKind.EAGER, "n0", "n1", i % n_channels, (WireSegment("x", 0, 64),)
        )
        sim.at(i * SPACING, nic.submit, packet, OCC, ONE_WAY)
    sim.run()
    return transport, received


@given(
    seed=st.integers(0, 2**16),
    drop=st.floats(0.0, 0.5),
    duplicate=st.floats(0.0, 0.4),
    jitter=st.floats(0.0, 5e-5),
    n_packets=st.integers(1, 12),
    n_channels=st.integers(1, 3),
)
@settings(max_examples=60, deadline=None)
def test_exactly_once_in_order_delivery(
    seed, drop, duplicate, jitter, n_packets, n_channels
):
    transport, received = run_lossy_session(
        seed, drop, duplicate, jitter, n_packets, n_channels
    )
    # Every packet acknowledged; nothing left pending.
    assert transport.in_flight == 0
    # Exactly-once: every (channel, seq) pair dispatched precisely once.
    keys = [(p.channel_id, p.meta["rel_seq"]) for p in received]
    assert len(keys) == n_packets
    assert len(set(keys)) == n_packets
    # In-order per channel: dispatch order is the gap-free sequence 0..k.
    per_channel = defaultdict(list)
    for channel, seq in keys:
        per_channel[channel].append(seq)
    for seqs in per_channel.values():
        assert seqs == list(range(len(seqs)))


@given(seed=st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_same_seed_reproduces_fault_counters(seed):
    def counters():
        transport, received = run_lossy_session(
            seed, drop=0.3, duplicate=0.2, jitter=2e-5, n_packets=8, n_channels=2
        )
        stats = transport.plane.stats
        return (
            transport.stats.retransmits,
            transport.stats.dups_discarded,
            stats.drops,
            stats.duplicates,
            len(received),
        )

    assert counters() == counters()
