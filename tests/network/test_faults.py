"""Tests for the seeded fault-injection plane."""

import pytest

from repro.network.fabric import Fabric
from repro.network.faults import FaultPlane, FaultSpec, FaultVerdict, RailOutage
from repro.network.nic import NIC
from repro.network.technologies import myrinet_mx
from repro.sim import Simulator
from repro.util.errors import FaultInjectionError, SimulationError


def make_nic(sim, name="nic0"):
    return NIC(sim, name, "n0", myrinet_mx(), lambda p, o: None)


def two_node_fabric(sim):
    fabric = Fabric(sim)
    network = fabric.add_network("mx0", myrinet_mx())
    for name in ("n0", "n1"):
        network.attach(fabric.add_node(name))
    return fabric


class TestFaultSpec:
    def test_defaults_are_null(self):
        assert FaultSpec().is_null

    def test_any_knob_breaks_null(self):
        assert not FaultSpec(drop=0.1).is_null
        assert not FaultSpec(jitter=1e-6).is_null

    @pytest.mark.parametrize("field", ["drop", "corrupt", "duplicate"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probability_range_enforced(self, field, bad):
        with pytest.raises(FaultInjectionError):
            FaultSpec(**{field: bad})

    def test_negative_jitter_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec(jitter=-1e-6)


class TestRailOutage:
    def test_needs_exactly_one_target(self):
        with pytest.raises(FaultInjectionError):
            RailOutage(at=1.0)
        with pytest.raises(FaultInjectionError):
            RailOutage(at=1.0, nic="a", network="b")

    def test_recover_must_follow_outage(self):
        with pytest.raises(FaultInjectionError):
            RailOutage(at=2.0, nic="a", recover=1.0)
        with pytest.raises(FaultInjectionError):
            RailOutage(at=2.0, nic="a", recover=2.0)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultInjectionError):
            RailOutage(at=-1.0, nic="a")


class TestSpecResolution:
    def test_per_nic_beats_per_network_beats_default(self):
        sim = Simulator()
        fabric = two_node_fabric(sim)
        nic = fabric.node("n0").nics[0]
        plane = FaultPlane(
            FaultSpec(drop=0.1),
            per_network={"mx0": FaultSpec(drop=0.2)},
            per_nic={nic.name: FaultSpec(drop=0.3)},
        )
        assert plane.spec_for(nic).drop == 0.3
        other = fabric.node("n1").nics[0]
        assert plane.spec_for(other).drop == 0.2

    def test_default_applies_without_overrides(self):
        sim = Simulator()
        nic = make_nic(sim)
        plane = FaultPlane(FaultSpec(drop=0.5))
        assert plane.spec_for(nic).drop == 0.5


class TestJudge:
    def test_null_spec_never_perturbs(self):
        sim = Simulator()
        nic = make_nic(sim)
        plane = FaultPlane()
        for _ in range(100):
            verdict = plane.judge(nic)
            assert verdict == FaultVerdict()
        assert plane.stats.judged == 100
        assert plane.stats.drops == 0

    def test_certain_drop(self):
        sim = Simulator()
        nic = make_nic(sim)
        plane = FaultPlane(FaultSpec(drop=1.0))
        verdict = plane.judge(nic)
        assert verdict.drop and not verdict.delivers
        assert plane.stats.drops == 1

    def test_same_seed_same_decisions(self):
        def decisions(seed):
            sim = Simulator()
            nic = make_nic(sim)
            plane = FaultPlane(
                FaultSpec(drop=0.3, corrupt=0.1, duplicate=0.2, jitter=1e-6), seed=seed
            )
            return [plane.judge(nic) for _ in range(200)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_streams_are_per_nic(self):
        sim = Simulator()
        a, b = make_nic(sim, "a"), make_nic(sim, "b")
        plane = FaultPlane(FaultSpec(drop=0.5), seed=3)
        seq_a = [plane.judge(a).drop for _ in range(64)]
        seq_b = [plane.judge(b).drop for _ in range(64)]
        assert seq_a != seq_b  # independent streams (astronomically unlikely equal)

    def test_jitter_delays_delivery(self):
        sim = Simulator()
        nic = make_nic(sim)
        plane = FaultPlane(FaultSpec(jitter=1e-6))
        delays = [plane.judge(nic).delay for _ in range(50)]
        assert all(d > 0 for d in delays)
        assert len(set(delays)) > 1


class TestFromSpec:
    def test_round_trip(self):
        plane = FaultPlane.from_spec(
            {
                "drop": 0.05,
                "duplicate": 0.01,
                "per_network": {"mx0": {"drop": 0.2}},
                "per_nic": {"n0.mx00": {"jitter": 1e-6}},
                "outages": [{"nic": "n0.mx00", "at": 0.001, "recover": 0.002}],
                "seed": 42,
            }
        )
        assert plane.default.drop == 0.05
        assert plane.per_network["mx0"].drop == 0.2
        assert plane.per_nic["n0.mx00"].jitter == 1e-6
        assert plane.outages[0].recover == 0.002
        assert plane.seed == 42

    def test_seed_defaults_to_session_seed(self):
        plane = FaultPlane.from_spec({"drop": 0.1}, default_seed=9)
        assert plane.seed == 9

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(FaultInjectionError, match="dorp"):
            FaultPlane.from_spec({"dorp": 0.1})

    def test_unknown_subspec_key_rejected(self):
        with pytest.raises(FaultInjectionError, match="latency"):
            FaultPlane.from_spec({"per_nic": {"x": {"latency": 1}}})

    def test_unknown_outage_key_rejected(self):
        with pytest.raises(FaultInjectionError, match="until"):
            FaultPlane.from_spec({"outages": [{"nic": "x", "at": 1, "until": 2}]})

    def test_outage_missing_at_rejected(self):
        with pytest.raises(FaultInjectionError, match="at"):
            FaultPlane.from_spec({"outages": [{"nic": "x"}]})


class TestOutageInstall:
    def test_fail_and_recover_scheduled(self):
        sim = Simulator()
        fabric = two_node_fabric(sim)
        nic = fabric.node("n0").nics[0]
        plane = FaultPlane(
            outages=[RailOutage(at=1.0, nic=nic.name, recover=2.0)]
        )
        plane.install(fabric, sim)
        assert not nic.failed
        sim.run(until=1.5)
        assert nic.failed and not nic.idle
        sim.run()
        assert not nic.failed and nic.idle
        assert nic.stats.failures == 1

    def test_network_outage_hits_every_member_nic(self):
        sim = Simulator()
        fabric = two_node_fabric(sim)
        plane = FaultPlane(outages=[RailOutage(at=1.0, network="mx0")])
        plane.install(fabric, sim)
        sim.run()
        assert all(nic.failed for node in fabric.nodes for nic in node.nics)

    def test_unknown_nic_rejected(self):
        sim = Simulator()
        fabric = two_node_fabric(sim)
        plane = FaultPlane(outages=[RailOutage(at=1.0, nic="ghost")])
        with pytest.raises(FaultInjectionError, match="ghost"):
            plane.install(fabric, sim)

    def test_unknown_network_rejected(self):
        sim = Simulator()
        fabric = two_node_fabric(sim)
        plane = FaultPlane(outages=[RailOutage(at=1.0, network="elan9")])
        with pytest.raises(FaultInjectionError, match="elan9"):
            plane.install(fabric, sim)


class TestFailedNic:
    def test_submit_while_failed_rejected(self):
        from repro.network.wire import PacketKind, WirePacket, WireSegment

        sim = Simulator()
        nic = make_nic(sim)
        nic.fail()
        packet = WirePacket(
            PacketKind.EAGER, "n0", "n1", 0, (WireSegment("p", 0, 10),)
        )
        with pytest.raises(SimulationError, match="failed"):
            nic.submit(packet, occupancy=1e-6, one_way=2e-6)

    def test_in_flight_transfer_completes_without_idle(self):
        from repro.network.wire import PacketKind, WirePacket, WireSegment

        sim = Simulator()
        delivered = []
        nic = NIC(sim, "nic0", "n0", myrinet_mx(), lambda p, o: delivered.append(p))
        idles = []
        nic.on_idle(lambda n: idles.append(sim.now))
        packet = WirePacket(
            PacketKind.EAGER, "n0", "n1", 0, (WireSegment("p", 0, 10),)
        )
        nic.submit(packet, occupancy=2e-6, one_way=3e-6)
        sim.schedule(1e-6, nic.fail)  # outage mid-transfer
        sim.run()
        assert delivered  # the packet had already left for the switch
        assert idles == []  # but the rail never reported idle

    def test_fail_recover_callbacks_and_idempotence(self):
        sim = Simulator()
        nic = make_nic(sim)
        events = []
        nic.on_fail(lambda n: events.append("fail"))
        nic.on_recover(lambda n: events.append("recover"))
        nic.fail()
        nic.fail()
        nic.recover()
        nic.recover()
        assert events == ["fail", "recover"]
        assert nic.stats.failures == 1
