"""Tests for wire packets and segments."""

import pytest

from repro.network.wire import (
    HEADER_BYTES_PER_SEGMENT,
    PACKET_HEADER_BYTES,
    PacketKind,
    WirePacket,
    WireSegment,
)
from repro.util.errors import ProtocolError


class TestWireSegment:
    def test_fields(self):
        seg = WireSegment(payload="p", offset=10, length=20)
        assert seg.offset == 10 and seg.length == 20

    def test_negative_offset_rejected(self):
        with pytest.raises(ProtocolError):
            WireSegment(payload=None, offset=-1, length=5)

    def test_negative_length_rejected(self):
        with pytest.raises(ProtocolError):
            WireSegment(payload=None, offset=0, length=-5)


class TestWirePacket:
    def test_sizes(self):
        segs = (
            WireSegment("a", 0, 100),
            WireSegment("b", 0, 200),
        )
        pkt = WirePacket(PacketKind.EAGER, "n0", "n1", 0, segs)
        assert pkt.payload_bytes == 300
        assert pkt.wire_bytes == PACKET_HEADER_BYTES + 2 * HEADER_BYTES_PER_SEGMENT + 300
        assert pkt.segment_count == 2

    def test_control_packet_without_segments(self):
        pkt = WirePacket(PacketKind.RDV_REQ, "n0", "n1", 0, meta={"token": 1})
        assert pkt.payload_bytes == 0
        assert pkt.wire_bytes == PACKET_HEADER_BYTES

    def test_data_packet_requires_segments(self):
        with pytest.raises(ProtocolError):
            WirePacket(PacketKind.EAGER, "n0", "n1", 0)
        with pytest.raises(ProtocolError):
            WirePacket(PacketKind.RDV_DATA, "n0", "n1", 0)

    def test_self_addressed_rejected(self):
        with pytest.raises(ProtocolError):
            WirePacket(PacketKind.CTRL, "n0", "n0", 0)

    def test_packet_ids_unique(self):
        a = WirePacket(PacketKind.CTRL, "n0", "n1", 0)
        b = WirePacket(PacketKind.CTRL, "n0", "n1", 0)
        assert a.packet_id != b.packet_id


class TestPacketKind:
    @pytest.mark.parametrize(
        "kind,expected",
        [
            (PacketKind.EAGER, False),
            (PacketKind.RDV_DATA, False),
            (PacketKind.RDV_REQ, True),
            (PacketKind.RDV_ACK, True),
            (PacketKind.CTRL, True),
        ],
    )
    def test_is_control(self, kind, expected):
        assert kind.is_control is expected
