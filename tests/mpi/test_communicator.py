"""Tests for the MPI-flavoured layer: matching, wildcards, the
unexpected queue, ordering, and the dissemination barrier."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpi import ANY_SOURCE, ANY_TAG, MpiWorld, Status
from repro.runtime import Cluster
from repro.sim import Process
from repro.util.errors import ConfigurationError


def make_world(n=2, seed=1, **kwargs):
    cluster = Cluster(n_nodes=n, seed=seed, **kwargs)
    return cluster, MpiWorld(cluster)


class TestBasics:
    def test_send_recv(self):
        cluster, world = make_world()
        c0, c1 = world.comm(0), world.comm(1)
        recv = c1.irecv(source=0, tag=5)
        send = c0.isend(dest=1, size=1024, tag=5)
        cluster.run_until_idle()
        assert send.test() and recv.test()
        status = recv.status
        assert (status.source, status.tag, status.size) == (0, 5, 1024)
        assert status.time > 0

    def test_send_completes_at_delivery(self):
        cluster, world = make_world()
        send = world.comm(0).isend(dest=1, size=1024, tag=0)
        assert not send.test()
        cluster.run_until_idle()
        assert send.test()

    def test_validation(self):
        cluster, world = make_world()
        c0 = world.comm(0)
        with pytest.raises(ConfigurationError):
            c0.isend(dest=0, size=8)  # self-send
        with pytest.raises(ConfigurationError):
            c0.isend(dest=9, size=8)
        with pytest.raises(ConfigurationError):
            c0.isend(dest=1, size=8, tag=-2)
        with pytest.raises(ConfigurationError):
            c0.irecv(source=9)
        with pytest.raises(ConfigurationError):
            world.comm(5)


class TestMatching:
    def test_tag_selectivity(self):
        cluster, world = make_world()
        c0, c1 = world.comm(0), world.comm(1)
        recv_b = c1.irecv(source=0, tag=2)
        recv_a = c1.irecv(source=0, tag=1)
        c0.isend(dest=1, size=100, tag=1)
        c0.isend(dest=1, size=200, tag=2)
        cluster.run_until_idle()
        assert recv_a.status.size == 100
        assert recv_b.status.size == 200

    def test_wildcards(self):
        cluster, world = make_world(n=3)
        c2 = world.comm(2)
        recv = c2.irecv(source=ANY_SOURCE, tag=ANY_TAG)
        world.comm(1).isend(dest=2, size=64, tag=9)
        cluster.run_until_idle()
        assert recv.status.source == 1
        assert recv.status.tag == 9

    def test_unexpected_queue(self):
        cluster, world = make_world()
        c0, c1 = world.comm(0), world.comm(1)
        c0.isend(dest=1, size=128, tag=3)
        cluster.run_until_idle()
        assert c1.pending_unexpected == 1
        assert c1.probe(source=0, tag=3) is not None
        assert c1.probe(source=0, tag=4) is None
        recv = c1.irecv(source=0, tag=3)
        assert recv.test()  # matched immediately from the queue
        assert c1.pending_unexpected == 0

    def test_probe_does_not_consume(self):
        cluster, world = make_world()
        c0, c1 = world.comm(0), world.comm(1)
        c0.isend(dest=1, size=128, tag=3)
        cluster.run_until_idle()
        assert c1.probe() is not None
        assert c1.probe() is not None
        assert c1.pending_unexpected == 1

    def test_non_overtaking_same_source_tag(self):
        """Two sends with equal (source, tag) match posted receives in
        order (MPI's non-overtaking guarantee)."""
        cluster, world = make_world()
        c0, c1 = world.comm(0), world.comm(1)
        first = c1.irecv(source=0, tag=1)
        second = c1.irecv(source=0, tag=1)
        c0.isend(dest=1, size=111, tag=1)
        c0.isend(dest=1, size=222, tag=1)
        cluster.run_until_idle()
        assert first.status.size == 111
        assert second.status.size == 222


class TestProcessIntegration:
    def test_closed_loop_pingpong(self):
        cluster, world = make_world()
        c0, c1 = world.comm(0), world.comm(1)
        rtts = []

        def rank0():
            for i in range(10):
                start = cluster.sim.now
                c0.isend(dest=1, size=8, tag=i)
                yield c0.irecv(source=1, tag=i).future
                rtts.append(cluster.sim.now - start)

        def rank1():
            for i in range(10):
                yield c1.irecv(source=0, tag=i).future
                c1.isend(dest=0, size=8, tag=i)

        Process(cluster.sim, rank0())
        Process(cluster.sim, rank1())
        cluster.run_until_idle()
        assert len(rtts) == 10
        assert all(r > 0 for r in rtts)


class TestBarrier:
    @pytest.mark.parametrize("n", [2, 3, 4, 8])
    def test_all_ranks_released(self, n):
        cluster, world = make_world(n=n)
        barriers = [world.comm(r).barrier() for r in range(n)]
        cluster.run_until_idle()
        assert all(b.done for b in barriers)

    def test_barrier_waits_for_laggard(self):
        """No rank passes the barrier before the last one enters."""
        cluster, world = make_world(n=3)
        release_times = {}
        entered = {}

        def lagged_entry(rank, delay):
            def proc():
                yield delay
                entered[rank] = cluster.sim.now
                barrier = world.comm(rank).barrier()
                value = yield barrier
                release_times[rank] = cluster.sim.now

            return proc

        for rank, delay in [(0, 0.0), (1, 1e-5), (2, 5e-4)]:
            Process(cluster.sim, lagged_entry(rank, delay)())
        cluster.run_until_idle()
        assert min(release_times.values()) >= entered[2]


class TestMpiOverEngines:
    def test_works_on_legacy_engine(self):
        cluster, world = make_world(engine="legacy")
        recv = world.comm(1).irecv(source=0)
        world.comm(0).isend(dest=1, size=512)
        cluster.run_until_idle()
        assert recv.test()

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        sends=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),  # src
                st.integers(min_value=0, max_value=2),  # dst
                st.integers(min_value=0, max_value=4),  # tag
                st.integers(min_value=1, max_value=4096),  # size
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_every_send_matches_a_wildcard_recv(self, sends):
        sends = [(s, d, t, z) for s, d, t, z in sends if s != d]
        if not sends:
            return
        cluster, world = make_world(n=3, seed=2)
        recvs = []
        for src, dst, tag, size in sends:
            recvs.append(world.comm(dst).irecv(source=ANY_SOURCE, tag=ANY_TAG))
            world.comm(src).isend(dest=dst, size=size, tag=tag)
        cluster.run_until_idle()
        assert all(r.test() for r in recvs)
        # Totals conserved: matched sizes == sent sizes per destination.
        for dst in range(3):
            sent = sorted(z for s, d, t, z in sends if d == dst)
            expected_count = len(sent)
            matched = sorted(
                r.status.size
                for r, (s, d, t, z) in zip(recvs, sends)
                if d == dst
            )
            assert len(matched) == expected_count
