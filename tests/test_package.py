"""Package-level smoke tests: public API surface and docstring coverage."""

import importlib
import inspect
import pkgutil

import pytest

import repro


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_from_docstring_works(self):
        """The README/module quickstart must actually run."""
        from repro import Cluster, TrafficClass

        cluster = Cluster(n_nodes=2, networks=[("mx", 1)], engine="optimizing")
        api = cluster.api("n0")
        flow = api.open_flow("n1", traffic_class=TrafficClass.BULK)
        message = api.send(flow, payload_size=4096)
        cluster.run_until_idle()
        assert message.completion.value > 0


def _walk_modules():
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in module_info.name:
            continue
        yield importlib.import_module(module_info.name)


class TestDocumentation:
    def test_every_module_has_docstring(self):
        undocumented = [m.__name__ for m in _walk_modules() if not m.__doc__]
        assert undocumented == []

    def test_every_public_class_has_docstring(self):
        undocumented = []
        for module in _walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export
                if not obj.__doc__:
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_every_public_function_has_docstring(self):
        undocumented = []
        for module in _walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not obj.__doc__:
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_public_methods_documented(self):
        """Public methods carry docstrings, directly or via the
        overridden base-class method (interface implementations inherit
        the contract's documentation)."""

        def documented(cls, meth_name):
            for base in cls.__mro__:
                meth = vars(base).get(meth_name)
                if meth is not None and getattr(meth, "__doc__", None):
                    return True
            return False

        undocumented = []
        for module in _walk_modules():
            for cls_name, cls in vars(module).items():
                if cls_name.startswith("_") or not inspect.isclass(cls):
                    continue
                if cls.__module__ != module.__name__:
                    continue
                for meth_name, meth in vars(cls).items():
                    if meth_name.startswith("_") or not inspect.isfunction(meth):
                        continue
                    if not documented(cls, meth_name):
                        undocumented.append(
                            f"{module.__name__}.{cls_name}.{meth_name}"
                        )
        assert undocumented == []
