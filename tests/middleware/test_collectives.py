"""Tests for the collective-operation workloads."""

import pytest

from repro.middleware import (
    AllReduceApp,
    BarrierApp,
    BroadcastApp,
    CollectiveApp,
    HaloExchangeApp,
)
from repro.runtime import Cluster, run_session
from repro.util.errors import ConfigurationError
from repro.util.units import KiB


def group(n=4, **kwargs):
    cluster = Cluster(n_nodes=n, **kwargs)
    return cluster, cluster.node_names


class TestCollectiveBase:
    def test_needs_two_nodes(self):
        with pytest.raises(ConfigurationError):
            BarrierApp(["n0"])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            BarrierApp(["n0", "n0"])

    def test_size(self):
        assert BarrierApp(["n0", "n1", "n2"]).size == 3


class TestBroadcast:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8])
    def test_all_group_sizes_complete(self, n):
        cluster, nodes = group(n)
        app = BroadcastApp(nodes, size=1 * KiB, rounds=2)
        run_session(cluster, [app.install])
        assert app.done.done
        assert len(app.durations) == 2
        assert all(d > 0 for d in app.durations)

    def test_binomial_tree_structure(self):
        app = BroadcastApp([f"n{i}" for i in range(8)])
        # Rank 0 feeds 4, 2, 1 (largest subtree first) in a tree of 8.
        assert app._children(0) == [4, 2, 1]
        assert app._children(1) == []
        assert app._children(2) == [3]
        assert app._children(4) == [6, 5]
        assert app._parent(5) == 4
        assert app._parent(6) == 4
        assert app._parent(3) == 2

    def test_binomial_beats_flat_broadcast(self):
        """The tree parallelizes forwarding: with 8 ranks and a 16 KiB
        payload it clearly beats the root sending to everyone itself."""
        from repro.sim import Process

        def binomial_duration():
            cluster, nodes = group(8)
            app = BroadcastApp(nodes, size=16 * KiB, rounds=1)
            run_session(cluster, [app.install])
            return app.durations[0]

        def flat_duration():
            cluster, nodes = group(8)
            api = cluster.api(nodes[0])
            flows = [api.open_flow(dst) for dst in nodes[1:]]
            inboxes = {}
            ack_flows = {}
            for dst, flow in zip(nodes[1:], flows):
                peer = cluster.api(dst)
                inboxes[dst] = peer.inbox(flow)
                ack = peer.open_flow(nodes[0])
                ack_flows[dst] = ack

            result = {}

            def root():
                start = cluster.sim.now
                for flow in flows:
                    api.send(flow, 16 * KiB)
                for dst in nodes[1:]:
                    yield api.inbox(ack_flows[dst]).get()
                result["duration"] = cluster.sim.now - start

            def leaf(dst):
                yield inboxes[dst].get()
                cluster.api(dst).send(ack_flows[dst], 8, header_size=0)

            Process(cluster.sim, root())
            for dst in nodes[1:]:
                Process(cluster.sim, leaf(dst))
            cluster.run_until_idle()
            return result["duration"]

        assert binomial_duration() < 0.8 * flat_duration()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BroadcastApp(["n0", "n1"], rounds=0)


class TestBarrier:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_completes(self, n):
        cluster, nodes = group(n)
        app = BarrierApp(nodes, rounds=3)
        run_session(cluster, [app.install])
        assert len(app.durations) == 3

    def test_barrier_synchronizes(self):
        """No rank may start barrier k+1 before every rank entered k —
        measured indirectly: barrier time >= one-way latency."""
        cluster, nodes = group(4)
        app = BarrierApp(nodes, rounds=1)
        run_session(cluster, [app.install])
        assert app.durations[0] > 1e-6


class TestAllReduce:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_power_of_two_groups(self, n):
        cluster, nodes = group(n)
        app = AllReduceApp(nodes, size=2 * KiB, rounds=2)
        run_session(cluster, [app.install])
        assert len(app.durations) == 2

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            AllReduceApp(["n0", "n1", "n2"])

    def test_steps_scale_with_log_n(self):
        def duration(n):
            cluster, nodes = group(n)
            app = AllReduceApp(nodes, size=1 * KiB, rounds=1)
            run_session(cluster, [app.install])
            return app.durations[0]

        # 8 ranks = 3 steps vs 2 ranks = 1 step: about 3x, not 4x.
        assert duration(8) < 5 * duration(2)


class TestHaloExchange:
    def test_ring_completes(self):
        cluster, nodes = group(4)
        app = HaloExchangeApp(nodes, halo_size=4 * KiB, iterations=5)
        run_session(cluster, [app.install])
        assert len(app.durations) == 5

    def test_compute_time_adds_up(self):
        def duration(compute):
            cluster, nodes = group(3)
            app = HaloExchangeApp(
                nodes, halo_size=1 * KiB, iterations=2, compute_time=compute
            )
            run_session(cluster, [app.install])
            return sum(app.durations)

        assert duration(100e-6) > duration(0.0) + 150e-6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HaloExchangeApp(["n0", "n1"], compute_time=-1.0)


class TestCollectivesOnLegacyEngine:
    def test_broadcast_on_legacy(self):
        cluster, nodes = group(4, engine="legacy")
        app = BroadcastApp(nodes, size=1 * KiB, rounds=2)
        run_session(cluster, [app.install])
        assert app.done.done

    def test_optimizer_not_slower_on_collectives(self):
        def barrier_time(engine):
            cluster, nodes = group(8, engine=engine)
            app = BarrierApp(nodes, rounds=5)
            run_session(cluster, [app.install])
            return sum(app.durations)

        assert barrier_time("optimizing") <= barrier_time("legacy") * 1.1
