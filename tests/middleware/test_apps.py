"""Tests for the synthetic middleware workloads."""

import pytest

from repro.middleware import (
    ControlPlaneApp,
    DsmApp,
    GlobalArraysApp,
    IntegratorApp,
    PingPongApp,
    RpcApp,
    StreamApp,
    uniform_small_flows,
)
from repro.network.virtual import TrafficClass
from repro.runtime import Cluster, run_session
from repro.util.errors import ConfigurationError


@pytest.fixture
def cluster():
    return Cluster(n_nodes=2, seed=11)


class TestPingPong:
    def test_collects_rtts(self, cluster):
        app = PingPongApp(count=10, size=8)
        run_session(cluster, [app.install])
        assert app.done.done
        assert len(app.rtts) == 10
        assert all(r > 0 for r in app.rtts)

    def test_rtt_grows_with_size(self):
        def rtt_for(size):
            c = Cluster(n_nodes=2, seed=1)
            app = PingPongApp(count=10, size=size)
            run_session(c, [app.install])
            return sum(app.rtts) / len(app.rtts)

        assert rtt_for(64 * 1024) > rtt_for(64)

    def test_count_validation(self):
        with pytest.raises(ConfigurationError):
            PingPongApp(count=0)

    def test_same_endpoints_rejected(self):
        with pytest.raises(ConfigurationError):
            PingPongApp(src="n0", dst="n0")


class TestStream:
    def test_all_messages_sent_and_delivered(self, cluster):
        app = StreamApp(count=25, size=128, interval=1e-6)
        run_session(cluster, [app.install])
        assert len(app.messages) == 25
        assert all(m.completion.done for m in app.messages)

    def test_lognormal_sizes(self, cluster):
        app = StreamApp(count=50, size=256, size_sigma=1.0)
        run_session(cluster, [app.install])
        sizes = {m.total_size for m in app.messages}
        assert len(sizes) > 5  # actually varied

    def test_periodic_arrivals(self, cluster):
        app = StreamApp(count=5, size=64, interval=10e-6, jitter=False)
        run_session(cluster, [app.install])
        submits = [m.submit_time for m in app.messages]
        gaps = [b - a for a, b in zip(submits, submits[1:])]
        assert all(g == pytest.approx(10e-6) for g in gaps)

    def test_interval_validation(self):
        with pytest.raises(ConfigurationError):
            StreamApp(interval=-1.0)


class TestRpc:
    def test_call_latencies_recorded(self, cluster):
        app = RpcApp(calls=12, concurrency=3)
        run_session(cluster, [app.install])
        assert app.done.done
        assert len(app.call_latencies) == 12

    def test_service_time_adds_latency(self):
        def mean_latency(service_time):
            c = Cluster(n_nodes=2, seed=5)
            app = RpcApp(calls=10, service_time=service_time)
            run_session(c, [app.install])
            return sum(app.call_latencies) / len(app.call_latencies)

        assert mean_latency(100e-6) > mean_latency(0.0) + 50e-6

    def test_concurrency_validation(self):
        with pytest.raises(ConfigurationError):
            RpcApp(calls=2, concurrency=5)


class TestDsm:
    def test_fault_latencies(self, cluster):
        app = DsmApp(faults=8)
        run_session(cluster, [app.install])
        assert len(app.fault_latencies) == 8

    def test_classes(self, cluster):
        app = DsmApp(faults=4)
        report = run_session(cluster, [app.install])
        assert TrafficClass.CONTROL in report.latency_by_class
        assert TrafficClass.PUTGET in report.latency_by_class


class TestGlobalArrays:
    def test_op_mix(self, cluster):
        app = GlobalArraysApp(operations=40, get_fraction=0.5)
        run_session(cluster, [app.install])
        kinds = {op for op, _ in app.op_log}
        assert kinds == {"put", "get"}
        n_gets = sum(1 for op, _ in app.op_log if op == "get")
        assert len(app.get_latencies) == n_gets

    def test_pure_puts(self, cluster):
        app = GlobalArraysApp(operations=10, get_fraction=0.0)
        run_session(cluster, [app.install])
        assert app.get_latencies == []
        assert app.done.done

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            GlobalArraysApp(get_fraction=1.5)


class TestControlPlane:
    def test_latencies_recorded(self, cluster):
        app = ControlPlaneApp(count=15)
        run_session(cluster, [app.install])
        assert len(app.latencies) == 15
        assert all(l > 0 for l in app.latencies)


class TestIntegrator:
    def test_composes_apps(self, cluster):
        parts = [PingPongApp(count=5), RpcApp(calls=5), ControlPlaneApp(count=5)]
        app = IntegratorApp(parts)
        run_session(cluster, [app.install])
        assert app.done.done
        assert all(p.done.done for p in parts)

    def test_mixed_node_pairs_rejected(self):
        with pytest.raises(ConfigurationError):
            IntegratorApp([PingPongApp("n0", "n1"), PingPongApp("n1", "n2")])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            IntegratorApp([])

    def test_double_install_rejected(self, cluster):
        app = IntegratorApp([PingPongApp(count=2)])
        app.install(cluster)
        with pytest.raises(ConfigurationError):
            app.install(cluster)


class TestUniformSmallFlows:
    def test_builds_n_flows(self, cluster):
        apps = uniform_small_flows(5, count=10, size=64)
        report = run_session(cluster, [a.install for a in apps])
        assert report.messages == 50

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_small_flows(0)


class TestDeterminism:
    def test_same_seed_same_report(self):
        def run(seed):
            c = Cluster(n_nodes=2, seed=seed)
            apps = uniform_small_flows(4, count=20, interval=2e-6)
            return run_session(c, [a.install for a in apps])

        r1, r2 = run(42), run(42)
        assert r1.latency.mean == r2.latency.mean
        assert r1.network_transactions == r2.network_transactions

    def test_different_seed_differs(self):
        def run(seed):
            c = Cluster(n_nodes=2, seed=seed)
            apps = uniform_small_flows(4, count=20, interval=2e-6)
            return run_session(c, [a.install for a in apps])

        assert run(1).latency.mean != run(2).latency.mean
