"""Tests for trace synthesis, persistence, and replay."""

import pytest

from repro.middleware import (
    TraceRecord,
    TraceReplayApp,
    load_trace,
    save_trace,
    synthesize_trace,
)
from repro.network.virtual import TrafficClass
from repro.runtime import Cluster, run_session
from repro.util.errors import ConfigurationError
from repro.util.rng import SeedSequenceRegistry
from repro.util.units import ms, us


def rng(seed=1):
    return SeedSequenceRegistry(seed).stream("trace")


class TestTraceRecord:
    def test_valid(self):
        r = TraceRecord(1e-6, "n0", "n1", 100, TrafficClass.BULK, 2)
        assert r.size == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(time=-1.0, src="a", dst="b", size=10),
            dict(time=0.0, src="a", dst="b", size=0),
            dict(time=0.0, src="a", dst="a", size=10),
            dict(time=0.0, src="a", dst="b", size=10, fragments=0),
            dict(time=0.0, src="a", dst="b", size=10, fragments=11),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            TraceRecord(**kwargs)


class TestSynthesis:
    def test_generates_plausible_mix(self):
        trace = synthesize_trace(
            rng(),
            nodes=["n0", "n1", "n2"],
            duration=2 * ms,
            message_rate=200_000.0,
        )
        assert len(trace) > 100
        classes = {r.traffic_class for r in trace}
        assert TrafficClass.CONTROL in classes
        assert TrafficClass.BULK in classes
        assert TrafficClass.DEFAULT in classes
        assert all(0 <= r.time < 2 * ms for r in trace)
        assert all(r.src != r.dst for r in trace)

    def test_deterministic_per_seed(self):
        kwargs = dict(nodes=["n0", "n1"], duration=1 * ms, message_rate=100_000.0)
        a = synthesize_trace(rng(7), **kwargs)
        b = synthesize_trace(rng(7), **kwargs)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            synthesize_trace(rng(), nodes=["n0"], duration=1.0, message_rate=1.0)
        with pytest.raises(ConfigurationError):
            synthesize_trace(
                rng(), nodes=["n0", "n1"], duration=0.0, message_rate=1.0
            )
        with pytest.raises(ConfigurationError):
            synthesize_trace(
                rng(), nodes=["n0", "n1"], duration=1.0, message_rate=1.0, burstiness=0.5
            )


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        trace = synthesize_trace(
            rng(), nodes=["n0", "n1"], duration=0.5 * ms, message_rate=100_000.0
        )
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            load_trace(path)


class TestReplay:
    def test_replays_every_record(self):
        trace = synthesize_trace(
            rng(3), nodes=["n0", "n1"], duration=1 * ms, message_rate=100_000.0
        )
        cluster = Cluster(seed=3)
        app = TraceReplayApp(trace)
        report = run_session(cluster, [app.install])
        assert report.messages == len(trace)
        assert report.total_bytes == sum(r.size for r in trace)
        assert all(m.completion.done for m in app.messages)

    def test_submit_times_match_trace(self):
        records = [
            TraceRecord(10 * us, "n0", "n1", 100),
            TraceRecord(30 * us, "n0", "n1", 100),
            TraceRecord(20 * us, "n1", "n0", 100),
        ]
        cluster = Cluster(seed=1)
        app = TraceReplayApp(records)
        run_session(cluster, [app.install])
        submit_times = sorted(m.submit_time for m in app.messages)
        assert submit_times == pytest.approx([10 * us, 20 * us, 30 * us])

    def test_same_trace_comparable_across_engines(self):
        trace = synthesize_trace(
            rng(5), nodes=["n0", "n1"], duration=1 * ms, message_rate=300_000.0
        )

        def run(engine):
            cluster = Cluster(engine=engine, seed=5)
            app = TraceReplayApp(trace)
            return run_session(cluster, [app.install])

        legacy = run("legacy")
        optimized = run("optimizing")
        assert legacy.messages == optimized.messages == len(trace)
        assert optimized.network_transactions < legacy.network_transactions

    def test_fragment_structure_respected(self):
        records = [TraceRecord(0.0, "n0", "n1", 1000, fragments=4)]
        cluster = Cluster(seed=1)
        app = TraceReplayApp(records)
        run_session(cluster, [app.install])
        message = app.messages[0]
        assert len(message.fragments) == 4
        assert message.total_size == 1000
        assert message.fragments[0].express

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceReplayApp([])
