"""Causal attribution: blame buckets, exemplars, and ``obs why``."""

from __future__ import annotations

import argparse
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.causal import (
    BLAME_BUCKETS,
    TailExemplars,
    attribute_chain,
    attribute_events,
    main as why_main,
    render_report,
    render_waterfall,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Leg, MessageChain, SpanCollector
from repro.runtime.scenario import run_scenario
from repro.util.tracing import NullTracer, TraceEvent, Tracer


def _chain(
    submit=0.0,
    complete=10.0,
    send=4.0,
    deliver=9.0,
    occupancy=1.0,
    rdv=(),
    retransmits=(),
    reorder_enter=None,
    reorder_release=None,
):
    leg = Leg(
        key="n0#1",
        node="n0",
        packet_id=1,
        dst="n1",
        nic="n0.mx00",
        packet_kind="eager",
        bytes=100,
        dispatch_t=submit + 0.1,
        send_t=send,
        occupancy=occupancy,
        reorder_enter_t=reorder_enter,
        reorder_release_t=reorder_release,
        deliver_t=deliver,
        retransmits=list(retransmits),
        slices=[(5, 0, 100)],
    )
    return MessageChain(
        src="n0",
        message_id=5,
        flow="f",
        dst="n1",
        bytes=100,
        fragments=1,
        submit_t=submit,
        complete_t=complete,
        delivered_bytes=100,
        last_deliver_t=deliver,
        legs=[leg],
        rdv_windows=list(rdv),
    )


def _assert_balanced(blame):
    total = sum(blame.buckets.values())
    assert math.isclose(total, blame.e2e, rel_tol=1e-9, abs_tol=1e-12)
    assert all(v >= 0.0 for v in blame.buckets.values())


class TestAttributeChain:
    def test_incomplete_chain_returns_none(self):
        chain = _chain()
        chain.complete_t = None
        assert attribute_chain(chain) is None

    def test_buckets_partition_the_e2e_exactly(self):
        blame = attribute_chain(_chain())
        _assert_balanced(blame)
        # queue span [0,4] has no hold/rdv evidence -> nic_queue
        assert blame.buckets["nic_queue"] == pytest.approx(4.0)
        # transit [4,9]: 1.0 service, rest wire
        assert blame.buckets["service"] == pytest.approx(1.0)
        assert blame.buckets["wire"] == pytest.approx(4.0)
        # deliver -> complete gap [9,10] has no span evidence: it must
        # land in the explicit residual, never silently vanish
        assert blame.buckets["reorder"] == pytest.approx(0.0)
        assert blame.buckets["unattributed"] == pytest.approx(1.0)

    def test_reorder_residency_charged_to_reorder(self):
        blame = attribute_chain(
            _chain(reorder_enter=7.0, reorder_release=9.0,
                   deliver=9.0, complete=9.0)
        )
        _assert_balanced(blame)
        assert blame.buckets["reorder"] == pytest.approx(2.0)
        assert blame.buckets["wire"] == pytest.approx(2.0)  # [4,7] minus service

    def test_rdv_window_beats_hold_on_overlap(self):
        blame = attribute_chain(
            _chain(rdv=[(1.0, 3.0)]),
            hold_windows={"n0": [(0.5, 2.0)]},
        )
        _assert_balanced(blame)
        assert blame.buckets["rdv"] == pytest.approx(2.0)
        assert blame.buckets["hold"] == pytest.approx(0.5)  # [0.5,1.0] only
        assert blame.buckets["nic_queue"] == pytest.approx(1.5)

    def test_open_windows_clip_at_send(self):
        blame = attribute_chain(
            _chain(rdv=[(1.0, None)]),
            hold_windows={"n0": [(0.2, None)]},
        )
        _assert_balanced(blame)
        assert blame.buckets["rdv"] == pytest.approx(3.0)  # [1,4]
        assert blame.buckets["hold"] == pytest.approx(0.8)  # [0.2,1.0]

    def test_retransmit_rounds_charge_the_recovery_window(self):
        blame = attribute_chain(
            _chain(send=2.0, deliver=9.0, retransmits=[4.0, 7.0],
                   reorder_enter=8.5)
        )
        _assert_balanced(blame)
        # last rtx at 7.0, send at 2.0 -> 5.0 of recovery
        assert blame.buckets["retransmit"] == pytest.approx(5.0)
        assert blame.buckets["service"] == pytest.approx(1.0)
        assert blame.buckets["wire"] == pytest.approx(0.5)
        assert blame.buckets["reorder"] == pytest.approx(0.5)

    def test_critical_path_is_slowest_leg_not_sum(self):
        chain = _chain()
        fast = Leg(key="n0#2", node="n0", packet_id=2, nic="n0.mx00",
                   send_t=4.0, occupancy=3.0, deliver_t=5.0,
                   slices=[(5, 1, 0)])
        chain.legs.append(fast)
        blame = attribute_chain(chain)
        assert blame.critical_leg == "n0#1"
        # the fast leg's 3.0 occupancy must not inflate service
        assert blame.buckets["service"] == pytest.approx(1.0)
        flags = {leg["leg"]: leg["critical"] for leg in blame.legs}
        assert flags == {"n0#1": True, "n0#2": False}
        _assert_balanced(blame)

    def test_chain_with_no_legs_is_all_unattributed(self):
        chain = _chain()
        chain.legs = []
        blame = attribute_chain(chain)
        assert blame.buckets["unattributed"] == pytest.approx(blame.e2e)
        _assert_balanced(blame)

    @given(
        submit=st.floats(0, 1e3, allow_nan=False),
        queue=st.floats(0, 10, allow_nan=False),
        transit=st.floats(1e-9, 10, allow_nan=False),
        tail=st.floats(0, 10, allow_nan=False),
        occupancy=st.floats(0, 20, allow_nan=False),
        hold_frac=st.floats(0, 1),
        rdv_frac=st.floats(0, 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_bucket_sums_equal_e2e_for_any_timeline(
        self, submit, queue, transit, tail, occupancy, hold_frac, rdv_frac
    ):
        """Hypothesis-enforced: attribution partitions e2e exactly."""
        send = submit + queue
        deliver = send + transit
        complete = deliver + tail
        blame = attribute_chain(
            _chain(
                submit=submit,
                send=send,
                deliver=deliver,
                complete=complete,
                occupancy=occupancy,
                rdv=[(submit, submit + rdv_frac * queue)],
            ),
            hold_windows={"n0": [(submit, submit + hold_frac * queue)]},
        )
        _assert_balanced(blame)


class TestEndToEndSim:
    @pytest.fixture(scope="class")
    def traced_run(self):
        scenario = {
            "name": "causal-e2e",
            "cluster": {"n_nodes": 3, "strategy": "aggregate", "seed": 3},
            "observability": {"trace": True},
            "workloads": [
                {"app": "stream", "src": "n0", "dst": "n1", "size": 256,
                 "count": 40, "interval": 0.0},
                {"app": "stream", "src": "n1", "dst": "n2", "size": 65536,
                 "count": 4},
                {"app": "pingpong", "src": "n2", "dst": "n0", "size": 64,
                 "count": 10},
            ],
        }
        report, cluster, _ = run_scenario(scenario)
        return report, cluster

    def test_every_message_attributed_with_exact_sums(self, traced_run):
        report, cluster = traced_run
        causal = attribute_events(cluster.obs.events)
        assert len(causal.messages) == report.messages > 0
        assert causal.incomplete == 0
        for blame in causal.messages:
            _assert_balanced(blame)

    def test_unattributed_fraction_below_ten_percent(self, traced_run):
        _, cluster = traced_run
        causal = attribute_events(cluster.obs.events)
        for edge, slot in causal.edges().items():
            assert slot["fractions"]["unattributed"] < 0.10, edge

    def test_exemplars_match_offline_attribution(self, traced_run):
        _, cluster = traced_run
        plane = cluster.obs
        assert plane.tail_exemplars is not None  # default K with trace on
        snap = plane.tail_exemplars.snapshot()
        causal = attribute_events(plane.events)
        assert snap["messages"] == len(causal.messages)
        offline = causal.edges()
        for edge, slot in snap["edges"].items():
            assert slot["buckets_s"] == pytest.approx(offline[edge]["buckets_s"])

    def test_blame_metrics_exported(self, traced_run):
        _, cluster = traced_run
        text = cluster.obs.registry.to_prometheus()
        assert "repro_blame_seconds_total" in text
        assert "repro_blame_fraction" in text


class TestTailExemplars:
    def _blame_events(self, mid, e2e, src="n0", dst="n1"):
        pid = 1000 + mid
        return [
            TraceEvent(0.0, f"engine:{src}", "collect.enqueue",
                       {"message": mid, "flow": "f", "dst": dst,
                        "bytes": 8, "fragments": 1}),
            TraceEvent(0.1, f"engine:{src}", "engine.dispatch",
                       {"packet": pid, "dst": dst, "packet_kind": "eager",
                        "bytes": 8, "messages": [[mid, 0, 8]]}),
            TraceEvent(e2e, f"rx:{dst}", "rx.deliver",
                       {"packet": pid, "src": src, "corr": None}),
            TraceEvent(e2e, f"reasm:{dst}", "message.complete",
                       {"message": mid, "flow": "f", "src": src}),
        ]

    def test_keeps_slowest_k_per_edge(self):
        reservoir = TailExemplars(2)
        for mid, e2e in enumerate([5.0, 9.0, 1.0, 7.0]):
            for event in self._blame_events(mid, e2e):
                reservoir(event)
        snap = reservoir.snapshot()
        slot = snap["edges"]["n0->n1"]
        assert slot["messages"] == 4  # sums cover everything
        kept = [ex["e2e_s"] for ex in slot["exemplars"]]
        assert kept == [9.0, 7.0]  # only the worst K chains survive

    def test_survives_ring_buffer_eviction(self):
        """Exemplar evidence outlives the flight recorder window."""
        from repro.obs.plane import ObservabilityConfig, ObservabilityPlane
        from repro.runtime.cluster import Cluster

        plane = ObservabilityPlane(
            ObservabilityConfig(ring_buffer=8, exemplars=3)
        )
        cluster = Cluster(seed=0, strategy="eager")
        plane.install(cluster)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        api.send(flow, 4096)
        cluster.run_until_idle()
        plane.finalize()
        assert plane.sink.dropped > 0  # the ring really did evict
        ring_report = attribute_events(plane.events)
        snap = plane.tail_exemplars.snapshot()
        assert snap["messages"] >= 1
        assert snap["messages"] >= len(ring_report.messages)

    def test_export_writes_registry_series(self):
        reservoir = TailExemplars(1)
        for event in self._blame_events(1, 2.0):
            reservoir(event)
        registry = MetricsRegistry()
        reservoir.export(registry)
        text = registry.to_prometheus()
        assert 'repro_blame_seconds_total{bucket="nic_queue",edge="n0->n1"}' in text
        assert "repro_blame_fraction" in text
        # fractions of one edge sum to 1
        snap = reservoir.snapshot()["edges"]["n0->n1"]["fractions"]
        assert sum(snap.values()) == pytest.approx(1.0)

    def test_zero_k_plane_disables_reservoir(self):
        from repro.obs.plane import ObservabilityConfig, ObservabilityPlane

        plane = ObservabilityPlane(ObservabilityConfig(exemplars=0))
        assert plane.tail_exemplars is None


class TestZeroEmission:
    def test_untraced_run_emits_nothing(self, monkeypatch):
        """Every span-boundary emit site sits behind ``tracer.enabled``."""
        calls = []

        def spy(self, time, source, kind, **detail):
            calls.append(kind)

        monkeypatch.setattr(Tracer, "emit", spy)
        monkeypatch.setattr(NullTracer, "emit", spy)
        scenario = {
            "name": "zero-emission",
            "cluster": {"n_nodes": 2, "strategy": "aggregate", "seed": 1},
            "faults": {"drop": 0.1, "seed": 2},
            "workloads": [
                {"app": "stream", "src": "n0", "dst": "n1", "size": 256,
                 "count": 30, "interval": 0.0},
                {"app": "stream", "src": "n0", "dst": "n1", "size": 65536,
                 "count": 2},
            ],
        }
        run_scenario(scenario)
        assert calls == []

    def test_traced_run_emits_span_boundaries(self):
        scenario = {
            "name": "span-boundaries",
            "cluster": {
                "n_nodes": 2,
                "strategy": "nagle",
                "config": {"nagle_delay": 4e-6, "nagle_min_bytes": 1024},
                "seed": 1,
            },
            "faults": {"drop": 0.1, "seed": 2},
            "observability": {"trace": True},
            "workloads": [
                {"app": "stream", "src": "n0", "dst": "n1", "size": 256,
                 "count": 30, "interval": 0.0},
                {"app": "stream", "src": "n0", "dst": "n1", "size": 65536,
                 "count": 2},
            ],
        }
        _, cluster, _ = run_scenario(scenario)
        kinds = {e.kind for e in cluster.obs.events}
        assert {"hold.arm", "hold.fire", "rel.retransmit"} <= kinds


class TestRendering:
    def test_waterfall_mentions_every_nonzero_bucket(self):
        blame = attribute_chain(_chain(rdv=[(0.0, 2.0)]))
        text = render_waterfall(blame)
        assert "rdv" in text and "nic_queue" in text and "unattributed" in text
        assert "n0#m5" in text
        assert "*leg n0#1" in text

    def test_report_edge_filter_accepts_colon_form(self):
        report = attribute_events([])
        report.messages.append(attribute_chain(_chain()))
        text = render_report(report, edge="n0:n1")
        assert "n0->n1" in text
        assert "no attributed message" not in text


class TestWhyCli:
    def _args(self, trace, **over):
        base = dict(trace=str(trace), message=None, slowest=5,
                    edge=None, json=False)
        base.update(over)
        return argparse.Namespace(**base)

    @pytest.fixture()
    def trace_file(self, tmp_path):
        scenario = {
            "name": "why-cli",
            "cluster": {"n_nodes": 2, "strategy": "aggregate", "seed": 5},
            "observability": {"trace": True},
            "workloads": [
                {"app": "stream", "src": "n0", "dst": "n1", "size": 512,
                 "count": 10, "interval": 0.0}
            ],
        }
        _, cluster, _ = run_scenario(scenario)
        path = tmp_path / "trace.jsonl"
        cluster.obs.write_trace(path)
        return path

    def test_human_report(self, trace_file, capsys):
        assert why_main(self._args(trace_file)) == 0
        out = capsys.readouterr().out
        assert "causal attribution" in out
        assert "per-edge blame fractions" in out

    def test_json_bucket_sums(self, trace_file, capsys):
        assert why_main(self._args(trace_file, json=True)) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["messages"]
        for msg in payload["messages"]:
            total = sum(msg["buckets_s"].values())
            assert math.isclose(total, msg["e2e_s"], rel_tol=1e-9,
                                abs_tol=1e-12)
            assert msg["buckets_s"]["unattributed"] <= 0.10 * msg["e2e_s"]

    def test_single_message_lookup(self, trace_file, capsys):
        assert why_main(self._args(trace_file, json=True)) == 0
        payload = json.loads(capsys.readouterr().out)
        key = payload["messages"][0]["message"]
        assert why_main(self._args(trace_file, message=key)) == 0
        out = capsys.readouterr().out
        assert f"message {key}" in out

    def test_empty_trace_exits_nonzero(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert why_main(self._args(empty)) == 1

    def test_truncated_trace_warns_loudly(self, tmp_path, capsys):
        from repro.obs.plane import ObservabilityConfig, ObservabilityPlane
        from repro.runtime.cluster import Cluster

        plane = ObservabilityPlane(ObservabilityConfig(ring_buffer=64))
        cluster = Cluster(seed=0, strategy="eager")
        plane.install(cluster)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        for _ in range(30):
            api.send(flow, 512)
        cluster.run_until_idle()
        assert plane.sink.dropped > 0
        path = tmp_path / "trunc.jsonl"
        plane.write_trace(path)
        why_main(self._args(path))
        captured = capsys.readouterr()
        assert "TRUNCATED" in captured.out or "TRUNCATED" in captured.err
        assert "evicted" in captured.err
