"""Parser-based conformance tests for the Prometheus text exposition.

Instead of substring-matching a few expected lines, these tests run the
registry's ``to_prometheus`` output through a small grammar-checking
parser modeled on the exposition-format spec: comment ordering
(HELP before TYPE before samples, one contiguous block per family),
metric/label name character sets, label-value escaping, and the
histogram invariants (cumulative ``le`` buckets, ``+Inf`` == ``_count``,
``_sum`` present).
"""

from __future__ import annotations

import math
import re

import pytest

from repro.obs.metrics import MetricsRegistry

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_NAME})(?:\{{(?P<labels>.*)\}})? (?P<value>\S+)$"
)
_HELP_RE = re.compile(rf"^# HELP (?P<name>{_NAME}) (?P<text>.*)$")
_TYPE_RE = re.compile(
    rf"^# TYPE (?P<name>{_NAME}) (?P<kind>counter|gauge|histogram|summary|untyped)$"
)


def _parse_label_block(block: str) -> dict[str, str]:
    """Parse ``k="v",k2="v2"`` honouring the three escape sequences."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(block):
        m = re.match(rf"({_LABEL_NAME})=\"", block[i:])
        assert m, f"bad label syntax at ...{block[i:]!r}"
        key = m.group(1)
        i += m.end()
        value = []
        while True:
            assert i < len(block), "unterminated label value"
            ch = block[i]
            if ch == "\\":
                esc = block[i + 1]
                assert esc in ('"', "\\", "n"), f"invalid escape \\{esc}"
                value.append({"n": "\n"}.get(esc, esc))
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                assert ch != "\n", "raw newline inside a label value"
                value.append(ch)
                i += 1
        assert key not in labels, f"duplicate label {key!r}"
        labels[key] = "".join(value)
        if i < len(block):
            assert block[i] == ",", f"expected ',' at ...{block[i:]!r}"
            i += 1
    return labels


class Exposition:
    """Parsed form of one text exposition, validating as it reads."""

    def __init__(self, text: str) -> None:
        #: family name -> declared kind
        self.types: dict[str, str] = {}
        self.helps: dict[str, str] = {}
        #: series: (sample_name, frozen labels) -> value
        self.samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
        self._ingest(text)

    @staticmethod
    def _family_of(sample_name: str, types: dict[str, str]) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name.removesuffix(suffix)
            if base != sample_name and types.get(base) == "histogram":
                return base
        return sample_name

    def _ingest(self, text: str) -> None:
        assert text == "" or text.endswith("\n"), "exposition must end in newline"
        seen_families: list[str] = []
        current: str | None = None
        for line in text.splitlines():
            assert line.strip(), "blank lines are not emitted"
            if line.startswith("# HELP "):
                m = _HELP_RE.match(line)
                assert m, f"malformed HELP: {line!r}"
                name = m.group("name")
                assert name not in self.helps, f"duplicate HELP for {name}"
                assert name not in self.types, f"HELP after TYPE for {name}"
                self.helps[name] = m.group("text")
                text_part = m.group("text")
                assert "\n" not in text_part
                current = name
                if name not in seen_families:
                    seen_families.append(name)
                continue
            if line.startswith("# TYPE "):
                m = _TYPE_RE.match(line)
                assert m, f"malformed TYPE: {line!r}"
                name = m.group("name")
                assert name not in self.types, f"duplicate TYPE for {name}"
                self.types[name] = m.group("kind")
                if name in seen_families:
                    # HELP (if any) must have immediately preceded.
                    assert current == name, f"TYPE for {name} not after its HELP"
                else:
                    seen_families.append(name)
                current = name
                continue
            assert not line.startswith("#"), f"unknown comment: {line!r}"
            m = _SAMPLE_RE.match(line)
            assert m, f"malformed sample: {line!r}"
            family = self._family_of(m.group("name"), self.types)
            assert family in self.types, f"sample before TYPE: {line!r}"
            assert family == current, (
                f"sample for {family} outside its contiguous block"
            )
            labels = _parse_label_block(m.group("labels") or "")
            key = (m.group("name"), tuple(sorted(labels.items())))
            assert key not in self.samples, f"duplicate series {key}"
            self.samples[key] = float(m.group("value"))

    def series(self, sample_name: str) -> dict[tuple[tuple[str, str], ...], float]:
        return {
            labels: v
            for (name, labels), v in self.samples.items()
            if name == sample_name
        }


class TestGrammar:
    def test_empty_registry(self):
        assert Exposition(MetricsRegistry().to_prometheus()).samples == {}

    def test_counter_gauge_families(self):
        reg = MetricsRegistry()
        reg.counter("repro_things_total", {"node": "n0"}, help="Things.").inc(3)
        reg.counter("repro_things_total", {"node": "n1"}).inc(4)
        reg.gauge("repro_depth", {"chan": "a"}, help="Depth.").set(2.5)
        exp = Exposition(reg.to_prometheus())
        assert exp.types["repro_things_total"] == "counter"
        assert exp.types["repro_depth"] == "gauge"
        assert exp.helps["repro_things_total"] == "Things."
        assert exp.samples[("repro_things_total", (("node", "n0"),))] == 3
        assert exp.samples[("repro_things_total", (("node", "n1"),))] == 4
        assert exp.samples[("repro_depth", (("chan", "a"),))] == 2.5

    def test_label_value_escaping_round_trips(self):
        nasty = 'quote:" backslash:\\ newline:\nend'
        reg = MetricsRegistry()
        reg.counter("repro_esc_total", {"path": nasty}).inc()
        exp = Exposition(reg.to_prometheus())
        assert exp.samples[("repro_esc_total", (("path", nasty),))] == 1

    def test_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("repro_h_total", help="line\nbreak and \\slash").inc()
        exp = Exposition(reg.to_prometheus())
        # The parser proves no raw newline leaked; the content round-trips
        # through the spec's HELP escapes (\\n and \\\\).
        assert exp.helps["repro_h_total"] == "line\\nbreak and \\\\slash"

    def test_every_family_block_is_contiguous(self):
        reg = MetricsRegistry()
        for node in ("n0", "n1", "n2"):
            reg.counter("repro_a_total", {"node": node}).inc()
            reg.gauge("repro_b", {"node": node}).set(1)
            reg.histogram("repro_c", {"node": node}).observe(1.0)
        Exposition(reg.to_prometheus())  # parser asserts contiguity


class TestHistogramInvariants:
    def _exposition(self, observations):
        reg = MetricsRegistry()
        hist = reg.histogram(
            "repro_lat", {"node": "n0"}, help="Latency.", base=1.0, growth=2.0,
            n_buckets=6,
        )
        for value in observations:
            hist.observe(value)
        return Exposition(reg.to_prometheus()), hist

    def test_buckets_cumulative_and_inf_equals_count(self):
        exp, hist = self._exposition([0.5, 1.0, 3.0, 100.0, 1e9])
        buckets = exp.series("repro_lat_bucket")
        by_le = {dict(labels)["le"]: v for labels, v in buckets.items()}
        assert "+Inf" in by_le
        finite = sorted(
            (float(le), v) for le, v in by_le.items() if le != "+Inf"
        )
        counts = [v for _, v in finite]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert by_le["+Inf"] == max(counts + [0]) + hist.inf_count
        count = exp.series("repro_lat_count")
        total = exp.series("repro_lat_sum")
        ((_, count_val),) = count.items()
        ((_, sum_val),) = total.items()
        assert by_le["+Inf"] == count_val == 5
        assert math.isclose(sum_val, 0.5 + 1.0 + 3.0 + 100.0 + 1e9)

    def test_le_label_joins_instrument_labels(self):
        exp, _ = self._exposition([2.0])
        for labels, _v in exp.series("repro_lat_bucket").items():
            as_dict = dict(labels)
            assert as_dict["node"] == "n0"
            assert "le" in as_dict

    def test_type_declared_on_base_name_only(self):
        exp, _ = self._exposition([2.0])
        assert exp.types["repro_lat"] == "histogram"
        for derived in ("repro_lat_bucket", "repro_lat_sum", "repro_lat_count"):
            assert derived not in exp.types


class TestNameValidation:
    def test_bad_metric_name_rejected(self):
        from repro.util.errors import ConfigurationError

        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("bad name")

    def test_bad_label_name_rejected(self):
        from repro.util.errors import ConfigurationError

        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("repro_ok_total", {"bad-label": "x"})
