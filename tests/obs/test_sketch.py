"""Property tests for the deterministic KLL-style quantile sketch.

The sketch's contracts are algebraic, so they get algebraic tests:

* quantile answers agree with exact sorted-list quantiles within the
  documented rank-error envelope, including adversarial distributions
  (sorted, reverse-sorted, heavy duplicates, bimodal);
* merge is associative and commutative up to rank error — merged
  quantiles match quantiles of the pooled stream;
* snapshot -> restore is an identity on observable behavior;
* shift equals having corrected every sample before insertion.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import DEFAULT_K, QuantileSketch
from repro.util.errors import ConfigurationError

_values = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, width=32),
    min_size=1,
    max_size=2000,
)

#: Adversarial fixed streams the fuzzer is unlikely to produce verbatim.
_ADVERSARIAL = [
    sorted(float(i) for i in range(5000)),
    sorted((float(i) for i in range(5000)), reverse=True),
    [7.0] * 4000 + [1e6] * 40,  # heavy duplicates with a far tail
    [0.0, 1e9] * 1500,  # bimodal
    [float(i % 13) for i in range(6000)],  # periodic
]


def _sketch_of(values, *, k=DEFAULT_K) -> QuantileSketch:
    s = QuantileSketch("s", k=k)
    for v in values:
        s.observe(v)
    return s


def _exact_quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile over a sorted list."""
    idx = min(int(math.ceil(q * len(ordered))) - 1, len(ordered) - 1)
    return ordered[max(idx, 0)]


def _rank_of(ordered: list[float], value: float) -> float:
    """Fraction of samples <= value (the sketch's rank space)."""
    lo, hi = 0, len(ordered)
    while lo < hi:
        mid = (lo + hi) // 2
        if ordered[mid] <= value:
            lo = mid + 1
        else:
            hi = mid
    return lo / len(ordered)


def _assert_within_rank_error(values, sketch, quantiles=(0.5, 0.99)):
    ordered = sorted(values)
    # The answered value's true rank must be within the documented
    # envelope of the asked rank (plus 1/n nearest-rank slack).
    bound = sketch.rank_error_bound() + 1.0 / len(ordered)
    for q in quantiles:
        answer = sketch.quantile(q)
        rank = _rank_of(ordered, answer)
        # rank_of counts <=, so the answer's rank interval is
        # [rank_of(answer-) , rank_of(answer)]; accept either side.
        rank_lo = _rank_of(ordered, math.nextafter(answer, -math.inf))
        assert rank_lo - bound <= q <= rank + bound, (
            f"q={q}: answered {answer} with true rank "
            f"[{rank_lo:.4f}, {rank:.4f}], bound {bound:.4f}"
        )


class TestQuantileAccuracy:
    @given(values=_values)
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_sorted_list_within_rank_error(self, values):
        _assert_within_rank_error(values, _sketch_of(values))

    @pytest.mark.parametrize("stream", _ADVERSARIAL, ids=range(len(_ADVERSARIAL)))
    def test_adversarial_distributions(self, stream):
        _assert_within_rank_error(stream, _sketch_of(stream))

    def test_exact_while_unfilled(self):
        # Below k samples nothing has compacted: answers are exact.
        values = [float(v) for v in (5, 1, 9, 3, 7)]
        s = _sketch_of(values)
        ordered = sorted(values)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert s.quantile(q) == _exact_quantile(ordered, q) or q == 0.0

    def test_min_max_mean_exact(self):
        values = [3.0, 1.0, 4.0, 1.5, 9.0] * 100
        s = _sketch_of(values, k=8)
        assert s.minimum == 1.0
        assert s.maximum == 9.0
        assert s.quantile(0.0) == 1.0
        assert s.quantile(1.0) == 9.0
        assert math.isclose(s.mean, sum(values) / len(values))

    def test_validation(self):
        s = _sketch_of([1.0])
        with pytest.raises(ConfigurationError):
            s.quantile(1.5)
        with pytest.raises(ConfigurationError):
            QuantileSketch("s", k=7)
        with pytest.raises(ConfigurationError):
            QuantileSketch("s", k=4)

    def test_deterministic_given_insertion_order(self):
        values = [float((i * 7919) % 1000) for i in range(10_000)]
        a, b = _sketch_of(values), _sketch_of(values)
        assert a.levels == b.levels
        assert a.quantile(0.99) == b.quantile(0.99)

    def test_bounded_memory(self):
        s = _sketch_of([float(i) for i in range(100_000)], k=32)
        retained = sum(len(level) for level in s.levels)
        assert retained <= 32 * len(s.levels)
        assert len(s.levels) <= 18  # ~log2(n/k) + slack


class TestMerge:
    @given(a=_values, b=_values)
    @settings(max_examples=40, deadline=None)
    def test_merge_matches_pooled_stream(self, a, b):
        merged = _sketch_of(a).merge(_sketch_of(b))
        assert merged.count == len(a) + len(b)
        assert math.isclose(
            merged.total, sum(a) + sum(b), rel_tol=1e-6, abs_tol=1e-6
        )
        _assert_within_rank_error(a + b, merged)

    @given(a=_values, b=_values)
    @settings(max_examples=40, deadline=None)
    def test_commutative_up_to_rank_error(self, a, b):
        ab = _sketch_of(a).merge(_sketch_of(b))
        ba = _sketch_of(b).merge(_sketch_of(a))
        pooled = a + b
        _assert_within_rank_error(pooled, ab)
        _assert_within_rank_error(pooled, ba)
        assert ab.count == ba.count
        assert ab.minimum == ba.minimum and ab.maximum == ba.maximum

    @given(a=_values, b=_values, c=_values)
    @settings(max_examples=30, deadline=None)
    def test_associative_up_to_rank_error(self, a, b, c):
        left = _sketch_of(a).merge(_sketch_of(b)).merge(_sketch_of(c))
        right = _sketch_of(a).merge(_sketch_of(b).merge(_sketch_of(c)))
        pooled = a + b + c
        _assert_within_rank_error(pooled, left)
        _assert_within_rank_error(pooled, right)
        assert left.count == right.count == len(pooled)

    def test_k_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantileSketch("s", k=16).merge(QuantileSketch("s", k=32))

    def test_merge_empty_is_identity(self):
        values = [float(i) for i in range(500)]
        s = _sketch_of(values)
        before = [list(level) for level in s.levels]
        s.merge(QuantileSketch("s"))
        assert [list(level) for level in s.levels] == before


class TestSnapshotRestore:
    @given(values=_values)
    @settings(max_examples=40, deadline=None)
    def test_round_trip_identity(self, values):
        s = _sketch_of(values)
        restored = QuantileSketch._restore(s.name, s.labels, s.state())
        assert restored.count == s.count
        assert restored.levels == s.levels
        assert restored.minimum == s.minimum
        assert restored.maximum == s.maximum
        for q in (0.0, 0.5, 0.9, 0.99, 0.999, 1.0):
            assert restored.quantile(q) == s.quantile(q)

    def test_restore_continues_observing(self):
        s = _sketch_of([float(i) for i in range(300)])
        restored = QuantileSketch._restore(s.name, s.labels, s.state())
        restored.observe(1e6)
        assert restored.count == 301
        assert restored.maximum == 1e6

    def test_empty_round_trip(self):
        s = QuantileSketch("s")
        restored = QuantileSketch._restore("s", (), s.state())
        assert restored.count == 0
        assert math.isinf(restored._min)


class TestShift:
    def test_shift_equals_pre_corrected_samples(self):
        values = [float((i * 31) % 977) for i in range(3000)]
        delta = 41.5
        shifted = _sketch_of(values)
        shifted.shift(delta)
        corrected = _sketch_of([v + delta for v in values])
        assert shifted.levels == corrected.levels
        assert shifted.minimum == corrected.minimum
        assert shifted.maximum == corrected.maximum
        for q in (0.5, 0.99):
            assert shifted.quantile(q) == corrected.quantile(q)

    def test_floor_clamps(self):
        s = _sketch_of([1.0, 2.0, 3.0])
        s.shift(-2.5, floor=0.0)
        assert s.minimum == 0.0
        assert s.quantile(1.0) == 0.5
