"""Observability plane lifecycle, scenario wiring, and the off fast path."""

import json
import math

import pytest

from repro.obs.plane import ObservabilityConfig, ObservabilityPlane
from repro.obs.recorder import RingBufferSink
from repro.runtime.cluster import Cluster
from repro.runtime.scenario import run_scenario
from repro.util.errors import ConfigurationError


def _scenario(**extra):
    scenario = {
        "name": "obs-test",
        "cluster": {"n_nodes": 2, "strategy": "search"},
        "workloads": [
            {"app": "stream", "src": "n0", "dst": "n1", "size": 512, "count": 20}
        ],
    }
    scenario.update(extra)
    return scenario


class TestConfig:
    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="sample_intervall"):
            ObservabilityConfig.from_spec({"sample_intervall": 1e-5})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(sample_interval=0)
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(ring_buffer=0)

    def test_scenario_level_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="observabillity"):
            run_scenario(_scenario(observabillity={}))

    def test_unknown_key_inside_block_rejected(self):
        with pytest.raises(ConfigurationError, match="ringbuffer"):
            run_scenario(_scenario(observability={"ringbuffer": 10}))


class TestLifecycle:
    def test_double_install_rejected(self):
        plane = ObservabilityPlane()
        plane.install(Cluster(seed=0))
        with pytest.raises(ConfigurationError):
            plane.install(Cluster(seed=0))

    def test_trace_false_means_no_sink(self):
        plane = ObservabilityPlane(ObservabilityConfig(trace=False))
        cluster = Cluster(seed=0)
        plane.install(cluster)
        assert not cluster.sim.tracer.enabled
        assert plane.events == []
        with pytest.raises(ConfigurationError):
            plane.write_trace("/tmp/never.json")

    def test_scenario_block_attaches_plane(self):
        report, cluster, _ = run_scenario(
            _scenario(observability={"sample_interval": 1e-5})
        )
        plane = cluster.obs
        assert plane is not None
        assert plane.sampler is not None
        assert len(plane.sampler.samples) > 1
        assert any(e.kind == "optimizer.decide" for e in plane.events)
        assert any(e.kind == "obs.sample" for e in plane.events)

    def test_flight_recorder_bounds_capture(self):
        _, cluster, _ = run_scenario(_scenario(observability={"ring_buffer": 16}))
        plane = cluster.obs
        assert len(plane.events) == 16
        assert isinstance(plane.sink, RingBufferSink)
        assert plane.sink.dropped == plane.sink.seen - 16 > 0

    def test_finalize_mirrors_engine_and_nic_stats(self):
        _, cluster, _ = run_scenario(_scenario(observability={}))
        plane = cluster.obs
        plane.finalize()
        engine = cluster.engine("n0")
        dispatched = plane.registry.get("repro_dispatches_total", {"node": "n0"})
        assert dispatched.value == engine.stats.dispatches > 0
        nic = engine.drivers[0].nic
        wire = plane.registry.get("repro_nic_wire_bytes_total", {"nic": nic.name})
        assert wire.value == nic.stats.wire_bytes > 0
        captured = plane.registry.get("repro_trace_events_total")
        assert captured.value == len(plane.events)

    def test_exports_write_files(self, tmp_path):
        _, cluster, _ = run_scenario(
            _scenario(observability={"sample_interval": 1e-5})
        )
        plane = cluster.obs
        plane.finalize()
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.prom"
        assert plane.write_trace(trace_path) == "chrome"
        plane.write_metrics(metrics_path)
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]
        text = metrics_path.read_text()
        assert "# TYPE repro_dispatches_total counter" in text


class TestNullTracerFastPath:
    def test_no_plane_means_no_events_and_no_emit_calls(self):
        """Without sinks every guard site must skip ``emit`` entirely —
        not call it and discard: the fast path never builds the detail
        dict at all."""
        cluster = Cluster(seed=0)
        tracer = cluster.sim.tracer
        assert not tracer.enabled

        def forbidden_emit(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("emit() called on the NullTracer fast path")

        tracer.emit = forbidden_emit
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        messages = [api.send(flow, 512) for _ in range(10)]
        cluster.run_until_idle()
        assert all(m.completion.done for m in messages)

    def test_results_identical_with_and_without_plane(self):
        def run(observability):
            report, cluster, _ = run_scenario(
                _scenario(observability=observability) if observability is not None
                else _scenario()
            )
            # sim.now is excluded: the sampler's own final tick
            # legitimately lands after the last delivery.
            return (
                report.messages,
                report.total_bytes,
                report.network_transactions,
                report.latency.mean,
                report.latency.p99,
            )

        assert run(None) == run({"sample_interval": 1e-5})


class TestReportRow:
    def test_fault_counter_columns_present(self):
        report, _, _ = run_scenario(_scenario())
        row = report.row()
        for column in ("retransmits", "failovers", "dropped"):
            assert row[column] == 0

    def test_tail_columns_present(self):
        report, _, _ = run_scenario(_scenario())
        row = report.row()
        assert "latency_p99_us" in row and "latency_p999_us" in row
        # Untraced run: the sketch columns stay NaN (and None in JSON).
        assert math.isnan(row["latency_p99_us"])
        assert report.to_dict()["latency_p99_us"] is None


class TestTailTelemetry:
    def test_traced_run_populates_tail_sketches(self):
        report, cluster, _ = run_scenario(_scenario(observability={}))
        view = cluster.obs.tail_view
        edges = view.edges()
        assert "n0->n1" in edges and edges["n0->n1"].count > 0
        assert edges["n0->n1"].p99_us >= edges["n0->n1"].p50_us > 0
        assert view.rails()  # per-NIC service-time spans
        assert "n1" in view.messages()
        # The pooled message sketch feeds the report columns.
        assert not math.isnan(report.latency_p99_us)
        assert report.latency_p999_us >= report.latency_p99_us > 0
        assert report.to_dict()["latency_p99_us"] == report.latency_p99_us

    def test_engines_carry_view_and_decides_carry_hint(self):
        _, cluster, _ = run_scenario(_scenario(observability={}))
        plane = cluster.obs
        for engine in cluster.engines.values():
            assert engine.tail_view is plane.tail_view
        decides = [e for e in plane.events if e.kind == "optimizer.decide"]
        assert decides
        hints = [e.detail["tail_hint"] for e in decides if "tail_hint" in e.detail]
        assert hints  # later decides see earlier samples
        assert all(
            set(h) <= {"edge_p99_us", "edge_p999_us", "edge_n",
                       "rail_p99_us", "rail_n"}
            for h in hints
        )

    def test_trace_off_means_no_tail_recording(self):
        report, cluster, _ = run_scenario(
            _scenario(observability={"trace": False})
        )
        plane = cluster.obs
        assert plane.tail_recorder is None
        assert plane.tail_view.edges() == {}
        assert math.isnan(report.latency_p99_us)

    def test_dispatch_identical_traced_vs_untraced(self):
        def run(observability):
            report, _, _ = run_scenario(
                _scenario(observability=observability)
                if observability is not None else _scenario()
            )
            return (
                report.messages,
                report.total_bytes,
                report.network_transactions,
                report.latency.mean,
                report.latency.p99,
            )

        assert run(None) == run({})  # trace + tail recorder on

    def test_sampler_emits_tail_p99(self):
        _, cluster, _ = run_scenario(
            _scenario(observability={"sample_interval": 1e-5})
        )
        samples = [
            e for e in cluster.obs.events
            if e.kind == "obs.sample" and "tail_p99_us" in e.detail
        ]
        assert samples
        assert all(
            edge == "n0->n1" and p99 > 0
            for e in samples
            for edge, p99 in e.detail["tail_p99_us"].items()
        )
