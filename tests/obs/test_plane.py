"""Observability plane lifecycle, scenario wiring, and the off fast path."""

import json

import pytest

from repro.obs.plane import ObservabilityConfig, ObservabilityPlane
from repro.obs.recorder import RingBufferSink
from repro.runtime.cluster import Cluster
from repro.runtime.scenario import run_scenario
from repro.util.errors import ConfigurationError


def _scenario(**extra):
    scenario = {
        "name": "obs-test",
        "cluster": {"n_nodes": 2, "strategy": "search"},
        "workloads": [
            {"app": "stream", "src": "n0", "dst": "n1", "size": 512, "count": 20}
        ],
    }
    scenario.update(extra)
    return scenario


class TestConfig:
    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="sample_intervall"):
            ObservabilityConfig.from_spec({"sample_intervall": 1e-5})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(sample_interval=0)
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(ring_buffer=0)

    def test_scenario_level_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="observabillity"):
            run_scenario(_scenario(observabillity={}))

    def test_unknown_key_inside_block_rejected(self):
        with pytest.raises(ConfigurationError, match="ringbuffer"):
            run_scenario(_scenario(observability={"ringbuffer": 10}))


class TestLifecycle:
    def test_double_install_rejected(self):
        plane = ObservabilityPlane()
        plane.install(Cluster(seed=0))
        with pytest.raises(ConfigurationError):
            plane.install(Cluster(seed=0))

    def test_trace_false_means_no_sink(self):
        plane = ObservabilityPlane(ObservabilityConfig(trace=False))
        cluster = Cluster(seed=0)
        plane.install(cluster)
        assert not cluster.sim.tracer.enabled
        assert plane.events == []
        with pytest.raises(ConfigurationError):
            plane.write_trace("/tmp/never.json")

    def test_scenario_block_attaches_plane(self):
        report, cluster, _ = run_scenario(
            _scenario(observability={"sample_interval": 1e-5})
        )
        plane = cluster.obs
        assert plane is not None
        assert plane.sampler is not None
        assert len(plane.sampler.samples) > 1
        assert any(e.kind == "optimizer.decide" for e in plane.events)
        assert any(e.kind == "obs.sample" for e in plane.events)

    def test_flight_recorder_bounds_capture(self):
        _, cluster, _ = run_scenario(_scenario(observability={"ring_buffer": 16}))
        plane = cluster.obs
        assert len(plane.events) == 16
        assert isinstance(plane.sink, RingBufferSink)
        assert plane.sink.dropped == plane.sink.seen - 16 > 0

    def test_finalize_mirrors_engine_and_nic_stats(self):
        _, cluster, _ = run_scenario(_scenario(observability={}))
        plane = cluster.obs
        plane.finalize()
        engine = cluster.engine("n0")
        dispatched = plane.registry.get("repro_dispatches_total", {"node": "n0"})
        assert dispatched.value == engine.stats.dispatches > 0
        nic = engine.drivers[0].nic
        wire = plane.registry.get("repro_nic_wire_bytes_total", {"nic": nic.name})
        assert wire.value == nic.stats.wire_bytes > 0
        captured = plane.registry.get("repro_trace_events_total")
        assert captured.value == len(plane.events)

    def test_exports_write_files(self, tmp_path):
        _, cluster, _ = run_scenario(
            _scenario(observability={"sample_interval": 1e-5})
        )
        plane = cluster.obs
        plane.finalize()
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.prom"
        assert plane.write_trace(trace_path) == "chrome"
        plane.write_metrics(metrics_path)
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]
        text = metrics_path.read_text()
        assert "# TYPE repro_dispatches_total counter" in text


class TestNullTracerFastPath:
    def test_no_plane_means_no_events_and_no_emit_calls(self):
        """Without sinks every guard site must skip ``emit`` entirely —
        not call it and discard: the fast path never builds the detail
        dict at all."""
        cluster = Cluster(seed=0)
        tracer = cluster.sim.tracer
        assert not tracer.enabled

        def forbidden_emit(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("emit() called on the NullTracer fast path")

        tracer.emit = forbidden_emit
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        messages = [api.send(flow, 512) for _ in range(10)]
        cluster.run_until_idle()
        assert all(m.completion.done for m in messages)

    def test_results_identical_with_and_without_plane(self):
        def run(observability):
            report, cluster, _ = run_scenario(
                _scenario(observability=observability) if observability is not None
                else _scenario()
            )
            # sim.now is excluded: the sampler's own final tick
            # legitimately lands after the last delivery.
            return (
                report.messages,
                report.total_bytes,
                report.network_transactions,
                report.latency.mean,
                report.latency.p99,
            )

        assert run(None) == run({"sample_interval": 1e-5})


class TestReportRow:
    def test_fault_counter_columns_present(self):
        report, _, _ = run_scenario(_scenario())
        row = report.row()
        for column in ("retransmits", "failovers", "dropped"):
            assert row[column] == 0
