"""Unit tests for the tail-telemetry layer (recorder, view, SLOs)."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tails import (
    EDGE_METRIC,
    MESSAGE_METRIC,
    RAIL_METRIC,
    SLObjective,
    TailRecorder,
    TailView,
    evaluate_slo,
    evaluate_slo_offline,
    parse_slo,
    pooled_message_sketch,
)
from repro.util.errors import ConfigurationError
from repro.util.tracing import TraceEvent


def _feed(recorder, time, source, kind, **detail):
    recorder(TraceEvent(time=time, source=source, kind=kind, detail=detail))


class TestTailRecorder:
    def test_sim_send_deliver_pair_records_edge_latency(self):
        reg = MetricsRegistry()
        rec = TailRecorder(reg)
        _feed(rec, 1.0, "nic:n0.mx", "nic.send", packet=7, bytes=64)
        _feed(rec, 1.0001, "rx:n1", "rx.deliver", packet=7, bytes=64)
        sketch = reg.get(EDGE_METRIC, {"src": "n0", "dst": "n1"})
        assert sketch is not None and sketch.count == 1
        assert sketch.quantile(0.5) == pytest.approx(100.0, rel=1e-6)

    def test_unmatched_deliver_is_ignored(self):
        reg = MetricsRegistry()
        rec = TailRecorder(reg)
        _feed(rec, 1.0, "rx:n1", "rx.deliver", packet=99)
        assert reg.get(EDGE_METRIC, {"src": "n0", "dst": "n1"}) is None

    def test_rail_service_span_send_to_idle(self):
        reg = MetricsRegistry()
        rec = TailRecorder(reg)
        _feed(rec, 2.0, "nic:n0.mx", "nic.send", packet=1)
        _feed(rec, 2.0005, "nic:n0.mx", "nic.send", packet=2)  # same busy span
        _feed(rec, 2.001, "nic:n0.mx", "nic.idle")
        sketch = reg.get(RAIL_METRIC, {"nic": "n0.mx"})
        assert sketch is not None and sketch.count == 1
        assert sketch.quantile(0.5) == pytest.approx(1000.0, rel=1e-6)

    def test_idle_without_send_is_ignored(self):
        reg = MetricsRegistry()
        rec = TailRecorder(reg)
        _feed(rec, 1.0, "nic:n0.mx", "nic.idle")
        assert reg.get(RAIL_METRIC, {"nic": "n0.mx"}) is None

    def test_live_recv_records_raw_clock_edge(self):
        reg = MetricsRegistry()
        rec = TailRecorder(reg)
        _feed(
            rec, 5.0002, "live:n1", "live.recv",
            src="n0", dst="n1", sent_at=5.0, corr=3,
        )
        sketch = reg.get(EDGE_METRIC, {"src": "n0", "dst": "n1"})
        assert sketch is not None
        assert sketch.quantile(0.5) == pytest.approx(200.0, rel=1e-6)

    def test_live_recv_clamps_negative_skew(self):
        reg = MetricsRegistry()
        rec = TailRecorder(reg)
        _feed(rec, 4.0, "live:n1", "live.recv", src="n0", sent_at=5.0)
        sketch = reg.get(EDGE_METRIC, {"src": "n0", "dst": "n1"})
        assert sketch.quantile(0.5) == 0.0

    def test_message_complete_needs_submit_time(self):
        reg = MetricsRegistry()
        rec = TailRecorder(reg)
        _feed(rec, 3.0, "reasm:n1", "message.complete", message=1)
        assert reg.get(MESSAGE_METRIC, {"node": "n1"}) is None
        _feed(rec, 3.001, "reasm:n1", "message.complete",
              message=2, submit_time=3.0)
        sketch = reg.get(MESSAGE_METRIC, {"node": "n1"})
        assert sketch.count == 1
        assert sketch.quantile(0.5) == pytest.approx(1000.0, rel=1e-6)

    def test_pending_cap_evicts_oldest(self):
        from repro.obs import tails

        reg = MetricsRegistry()
        rec = TailRecorder(reg)
        cap = tails._PENDING_CAP
        for i in range(cap + 10):
            _feed(rec, 1.0, "nic:n0.mx", "nic.send", packet=i)
        assert len(rec._pending) == cap
        assert 0 not in rec._pending and cap + 9 in rec._pending


class TestTailView:
    def _populated(self):
        reg = MetricsRegistry()
        rec = TailRecorder(reg)
        for i in range(100):
            _feed(rec, float(i), "nic:n0.mx", "nic.send", packet=i)
            _feed(rec, float(i) + 1e-4 * (1 + i % 3), "rx:n1", "rx.deliver",
                  packet=i)
            _feed(rec, float(i) + 2e-4, "nic:n0.mx", "nic.idle")
        return reg

    def test_edge_and_rail_lookups(self):
        view = TailView(self._populated())
        edge = view.edge("n0", "n1")
        assert edge is not None and edge.count == 100
        assert 100.0 <= edge.p50_us <= 300.0
        assert view.edge("n1", "n0") is None
        rail = view.rail("n0.mx")
        assert rail is not None and rail.count == 100

    def test_family_maps(self):
        view = TailView(self._populated())
        assert set(view.edges()) == {"n0->n1"}
        assert set(view.rails()) == {"n0.mx"}
        assert view.messages() == {}

    def test_cache_invalidation_on_new_samples(self):
        reg = self._populated()
        view = TailView(reg)
        before = view.edge("n0", "n1")
        assert view.edge("n0", "n1") is before  # cached object
        reg.get(EDGE_METRIC, {"src": "n0", "dst": "n1"}).observe(1e6)
        after = view.edge("n0", "n1")
        assert after is not before and after.count == 101

    def test_hint_shape(self):
        view = TailView(self._populated())
        hint = view.hint("n0", "n1", "n0.mx")
        assert set(hint) == {
            "edge_p99_us", "edge_p999_us", "edge_n", "rail_p99_us", "rail_n",
        }
        assert view.hint("n9", "n8", "n9.mx") is None

    def test_snapshot_includes_slo_when_configured(self):
        objectives = parse_slo(
            [{"name": "fast", "edge": "*", "threshold_us": 1.0, "target": 0.9}]
        )
        view = TailView(self._populated(), objectives)
        snap = view.snapshot()
        assert set(snap) >= {"edges", "rails", "messages", "slo"}
        assert snap["slo"][0]["violated"] is True  # everything exceeds 1us

    def test_pooled_message_sketch(self):
        reg = MetricsRegistry()
        rec = TailRecorder(reg)
        for node, lat in (("n0", 1e-3), ("n1", 2e-3)):
            _feed(rec, 1.0 + lat, f"reasm:{node}", "message.complete",
                  message=1, submit_time=1.0)
        pooled = pooled_message_sketch(reg)
        assert pooled is not None and pooled.count == 2
        assert pooled.minimum == pytest.approx(1000.0, rel=1e-6)
        assert pooled.maximum == pytest.approx(2000.0, rel=1e-6)
        assert pooled_message_sketch(MetricsRegistry()) is None


class TestParseSLO:
    def test_defaults_and_names(self):
        objectives = parse_slo([{"threshold_us": 50.0}])
        assert objectives[0].name == "slo0"
        assert objectives[0].edge == "*"
        assert objectives[0].target == 0.999
        assert objectives[0].windows == (1.0, 10.0)
        assert objectives[0].budget == pytest.approx(0.001)

    def test_none_is_empty(self):
        assert parse_slo(None) == ()

    @pytest.mark.parametrize(
        "bad",
        [
            {"threshold_us": 50.0, "bogus": 1},
            {"edge": "*"},  # no threshold
            {"threshold_us": -1.0},
            {"threshold_us": 1.0, "target": 1.0},
            {"threshold_us": 1.0, "target": 0.0},
            {"threshold_us": 1.0, "windows": []},
            {"threshold_us": 1.0, "windows": [-1.0]},
        ],
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ConfigurationError):
            parse_slo([bad])

    def test_rejects_non_list(self):
        with pytest.raises(ConfigurationError):
            parse_slo({"threshold_us": 1.0})


class TestEvaluateSLO:
    def _registry(self, latencies_us):
        reg = MetricsRegistry()
        sketch = reg.sketch(EDGE_METRIC, {"src": "n0", "dst": "n1"})
        for v in latencies_us:
            sketch.observe(v)
        return reg

    def test_online_burn_rate(self):
        # 10% of samples above threshold against a 10% budget: burn == 1.
        reg = self._registry([1.0] * 90 + [100.0] * 10)
        objective = SLObjective("o", "*", threshold_us=50.0, target=0.9)
        statuses = evaluate_slo(reg, [objective])
        assert len(statuses) == 1
        assert statuses[0].burn["cumulative"] == pytest.approx(1.0)
        assert statuses[0].violated

    def test_glob_filters_edges(self):
        reg = self._registry([1.0])
        objective = SLObjective("o", "n9->*", threshold_us=50.0)
        assert evaluate_slo(reg, [objective]) == []

    def test_offline_multi_window_requires_all_windows(self):
        class Stats:
            def __init__(self, times, latencies):
                self.times = times
                self.latencies = latencies

        # Old violations outside the 1s window, clean since: the short
        # window does not burn, so no violation despite the long one.
        times = [0.1 * i for i in range(100)]
        latencies = [1.0 if t < 5.0 else 1e-6 for t in times]
        edges = {"n0->n1": Stats(times, latencies)}
        objective = SLObjective(
            "o", "*", threshold_us=10.0, target=0.5, windows=(1.0, 10.0)
        )
        (status,) = evaluate_slo_offline(edges, [objective], t_end=times[-1])
        assert status.burn["1s"] == 0.0
        assert status.burn["10s"] > 0.0
        assert not status.violated
        # Violations throughout: every window burns, verdict flips.
        edges = {"n0->n1": Stats(times, [1.0] * 100)}
        (status,) = evaluate_slo_offline(edges, [objective], t_end=times[-1])
        assert status.violated
        assert status.worst_burn >= 1.0

    def test_offline_empty_window_burns_zero(self):
        class Stats:
            times = [0.0]
            latencies = [1.0]

        objective = SLObjective("o", "*", threshold_us=0.5, windows=(0.001,))
        (status,) = evaluate_slo_offline(
            {"n0->n1": Stats()}, [objective], t_end=100.0
        )
        assert status.burn == {"0.001s": 0.0}
        assert not status.violated
