"""Trace-analysis CLI: timeline reconstruction and miss accounting."""

import pytest

from repro.obs.analyze import (
    _sparkline,
    analyze_events,
    analyze_file,
    render,
    summary_metrics,
)
from repro.runtime.scenario import run_scenario
from repro.util.tracing import TraceEvent


def _decide(t, items, widest, channel=0, truncation="exhausted"):
    return TraceEvent(
        t,
        "engine:n0",
        "optimizer.decide",
        {
            "items": items,
            "widest_items": widest,
            "channel": channel,
            "truncation": truncation,
        },
    )


def _sample(t, depth):
    return TraceEvent(
        t,
        "obs:sampler",
        "obs.sample",
        {
            "queues": {"n0/0": [depth, depth * 256]},
            "nic_busy": {"n0.mx00": 0.25},
            "backlog": depth,
            "retransmits_in_flight": 1,
        },
    )


class TestAnalysis:
    def test_miss_accounting(self):
        events = [
            _decide(0.0, 2, 2),
            _decide(1e-6, 1, 3),  # wider candidate lost
            _decide(2e-6, 4, 4, truncation="budget"),
        ]
        analysis = analyze_events(events)
        assert analysis.decides == 3
        assert analysis.misses == 1
        assert analysis.miss_fraction == 1 / 3
        assert analysis.miss_by_channel == {"n0/0": 1}
        assert analysis.truncation == {"exhausted": 2, "budget": 1}

    def test_timeline_reconstruction(self):
        events = [_sample(i * 1e-5, depth) for i, depth in enumerate((0, 5, 2))]
        analysis = analyze_events(events)
        assert analysis.backlog.values == [0, 5, 2]
        assert analysis.node_depth["n0"].values == [0, 5, 2]
        assert analysis.nic_busy["n0.mx00"].values == [0.25] * 3
        assert analysis.backlog.peak == (1e-5, 5)
        assert analysis.retransmits.values == [1, 1, 1]

    def test_render_sections(self):
        events = [_sample(0.0, 3), _decide(1e-6, 1, 2)]
        text = render(analyze_events(events))
        assert "queue depth" in text
        assert "NIC utilization" in text
        assert "aggregation opportunities" in text
        assert "wider plan existed but lost    : 1" in text

    def test_render_degrades_without_samples(self):
        text = render(analyze_events([_decide(0.0, 1, 1)]))
        assert "no obs.sample records" in text

    def test_empty_trace(self):
        analysis = analyze_events([])
        assert analysis.n_events == 0
        assert "no decide records" in render(analysis)


def _recv(t, src, dst, sent_at):
    return TraceEvent(
        t,
        f"live:{dst}",
        "live.recv",
        {"src": src, "dst": dst, "sent_at": sent_at, "corr": 1},
    )


class TestEdgePercentiles:
    def test_linear_interpolation(self):
        # 4 crossings with latencies 1..4 ms: numpy's default definition
        # puts p50 at rank q*(n-1)=1.5, i.e. halfway between 2 and 3 ms.
        events = [
            _recv(10.0 + 0.001 * lat, "n0", "n1", 10.0) for lat in (1, 2, 3, 4)
        ]
        analysis = analyze_events(events)
        edge = analysis.edges["n0->n1"]
        assert edge.percentile(0.50) == pytest.approx(2.5e-3)
        assert edge.percentile(0.25) == pytest.approx(1.75e-3)
        # q clamps at the extremes instead of indexing out of range.
        assert edge.percentile(0.0) == pytest.approx(1e-3)
        assert edge.percentile(1.0) == pytest.approx(4e-3)
        assert edge.percentile(-5.0) == pytest.approx(1e-3)
        assert edge.percentile(5.0) == pytest.approx(4e-3)

    def test_times_parallel_to_latencies(self):
        # evaluate_slo_offline windows over (times, latencies) pairs.
        events = [_recv(t, "n0", "n1", t - 1e-4) for t in (1.0, 2.0, 3.0)]
        edge = analyze_events(events).edges["n0->n1"]
        assert edge.times == [1.0, 2.0, 3.0]
        assert len(edge.times) == len(edge.latencies) == 3

    def test_negative_latency_clamped_and_counted(self):
        edge = analyze_events([_recv(1.0, "n0", "n1", 2.0)]).edges["n0->n1"]
        assert edge.latencies == [0.0]
        assert edge.clamped == 1

    def test_render_includes_tail_percentiles(self):
        events = [_recv(1.0 + 1e-4 * i, "n0", "n1", 1.0) for i in range(1, 50)]
        text = render(analyze_events(events))
        assert "cross-peer wire crossings" in text
        for token in ("p50", "p90", "p99", "p999", "max"):
            assert token in text

    def test_summary_metrics_tail_keys(self):
        events = [_recv(1.0 + 1e-4 * i, "n0", "n1", 1.0) for i in range(1, 50)]
        out = summary_metrics(analyze_events(events))
        prefix = "edge/n0->n1"
        assert out[f"{prefix}/crossings"] == 49.0
        assert (
            out[f"{prefix}/latency_p50_us"]
            <= out[f"{prefix}/latency_p99_us"]
            <= out[f"{prefix}/latency_p999_us"]
            <= out[f"{prefix}/latency_max_us"]
        )
        # Values are in microseconds (latencies were 100us..4.9ms).
        assert out[f"{prefix}/latency_p50_us"] == pytest.approx(2500.0)
        assert out[f"{prefix}/latency_max_us"] == pytest.approx(4900.0)


class TestSparkline:
    def test_scales_to_width(self):
        assert len(_sparkline(list(range(1000)), width=40)) == 40
        assert len(_sparkline([1.0, 2.0], width=40)) == 2

    def test_flat_zero_renders_floor(self):
        assert _sparkline([0.0, 0.0]) == "▁▁"

    def test_empty(self):
        assert _sparkline([]) == ""


class TestEndToEnd:
    def test_analyze_file_from_scenario(self, tmp_path):
        scenario = {
            "name": "analyze-e2e",
            "cluster": {"n_nodes": 2, "strategy": "search"},
            "workloads": [
                {"app": "stream", "src": "n0", "dst": "n1", "size": 512, "count": 30}
            ],
            "observability": {"sample_interval": 1e-5},
        }
        _, cluster, _ = run_scenario(scenario)
        for suffix in ("json", "jsonl"):
            path = tmp_path / f"t.{suffix}"
            cluster.obs.write_trace(path)
            analysis = analyze_file(path)
            assert analysis.decides > 0
            assert analysis.backlog.values
            text = render(analysis)
            assert "dispatches with decide records" in text
