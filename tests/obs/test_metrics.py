"""Tests for the metrics registry and its Prometheus rendering."""

import math
import re

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
)
from repro.util.errors import ConfigurationError


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        c = Counter("c")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_set_total_is_monotonic(self):
        c = Counter("c")
        c.set_total(10)
        with pytest.raises(ConfigurationError):
            c.set_total(9)
        c.set_total(10)  # equal is fine (idempotent snapshot)
        assert c.value == 10


class TestGauge:
    def test_moves_both_ways(self):
        g = Gauge("g")
        g.set(5)
        g.dec(7)
        g.inc(1)
        assert g.value == -1


class TestHistogram:
    def test_bounds_grow_geometrically(self):
        h = Histogram("h", base=1.0, growth=2.0, n_buckets=4)
        assert h.bounds == (1.0, 2.0, 4.0, 8.0)

    def test_cumulative_ends_at_inf(self):
        h = Histogram("h", base=1.0, growth=2.0, n_buckets=3)
        for v in (0.5, 2.0, 100.0):
            h.observe(v)
        cum = h.cumulative()
        assert cum[-1] == (float("inf"), 3)
        # cumulative counts never decrease
        counts = [n for _, n in cum]
        assert counts == sorted(counts)

    def test_mean(self):
        h = Histogram("h")
        h.observe(2)
        h.observe(4)
        assert h.mean == 3.0

    def test_validation(self):
        for kwargs in ({"base": 0}, {"growth": 1.0}, {"n_buckets": 0}):
            with pytest.raises(ConfigurationError):
                Histogram("h", **kwargs)

    @given(st.lists(st.floats(min_value=0, max_value=1e9), max_size=50))
    def test_every_observation_lands_in_exactly_one_bucket(self, values):
        h = Histogram("h", base=1.0, growth=2.0, n_buckets=8)
        for v in values:
            h.observe(v)
        assert sum(h.counts) + h.inf_count == len(values)
        assert h.cumulative()[-1][1] == len(values)


class TestHistogramQuantile:
    def test_validation(self):
        h = Histogram("h")
        with pytest.raises(ConfigurationError):
            h.quantile(-0.1)
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)
        assert h.quantile(0.5) == 0.0  # empty

    @given(
        st.lists(
            st.floats(min_value=1e-6, max_value=1e5, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        st.sampled_from([0.5, 0.9, 0.99]),
    )
    def test_within_one_bucket_of_exact(self, values, q):
        """The bucket-interpolated answer must land within the bucket
        that contains the exact quantile — i.e. off by at most one
        bucket's relative width (growth factor)."""
        h = Histogram("h", base=1e-6, growth=2.0, n_buckets=40)
        for v in values:
            h.observe(v)
        exact = sorted(values)[max(math.ceil(q * len(values)) - 1, 0)]
        answer = h.quantile(q)
        # exact lies in bucket (lower, upper]; answer must be within
        # one growth factor either side of it.
        assert exact / 2.0 <= answer <= exact * 2.0 + 1e-12

    def test_interpolates_within_bucket(self):
        h = Histogram("h", base=1.0, growth=2.0, n_buckets=4)
        for _ in range(100):
            h.observe(1.5)  # all mass in the (1, 2] bucket
        assert 1.0 <= h.quantile(0.01) <= h.quantile(0.99) <= 2.0
        assert h.quantile(0.99) > h.quantile(0.01)  # strictly interpolated

    def test_overflow_bucket_returns_last_bound(self):
        h = Histogram("h", base=1.0, growth=2.0, n_buckets=3)
        h.observe(1e9)  # lands in +Inf
        assert h.quantile(0.99) == h.bounds[-1]


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x", {"node": "n0"})
        b = reg.counter("repro_x", {"node": "n0"})
        c = reg.counter("repro_x", {"node": "n1"})
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.gauge("repro_g", {"a": 1, "b": 2})
        b = reg.gauge("repro_g", {"b": 2, "a": 1})
        assert a is b

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x")
        with pytest.raises(ConfigurationError):
            reg.gauge("repro_x")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("")


# One sample line: name, optional {labels}, numeric value.
_SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? '
    r"(([-+]?[0-9.eE+-]+)|\+Inf|-Inf|NaN)$"
)


def _parse_prometheus(text: str) -> dict[str, float]:
    """Minimal parser of the text exposition format; returns series → value."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            if line.startswith("#"):
                assert line.startswith("# HELP ") or line.startswith("# TYPE "), line
            continue
        m = _SAMPLE_RE.match(line)
        assert m is not None, f"unparseable sample line: {line!r}"
        series = m.group(1) + (m.group(2) or "")
        assert series not in samples, f"duplicate series: {series}"
        samples[series] = float(m.group(4))
    return samples


class TestPrometheusExport:
    def test_full_export_parses(self):
        reg = MetricsRegistry()
        reg.counter("repro_sends_total", {"nic": "n0.mx00"}, help="Sends").inc(7)
        reg.gauge("repro_depth", {"node": "n0", "channel": "0"}).set(3)
        h = reg.histogram("repro_lat", help="Latency", n_buckets=4)
        h.observe(1.5)
        h.observe(100.0)
        samples = _parse_prometheus(reg.to_prometheus())
        assert samples['repro_sends_total{nic="n0.mx00"}'] == 7
        assert samples['repro_depth{channel="0",node="n0"}'] == 3
        assert samples['repro_lat_bucket{le="+Inf"}'] == 2
        assert samples["repro_lat_count"] == 2
        assert math.isclose(samples["repro_lat_sum"], 101.5)

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_h", n_buckets=4)
        for v in (1, 2, 4, 8, 1000):
            h.observe(v)
        samples = _parse_prometheus(reg.to_prometheus())
        buckets = [
            v for k, v in samples.items() if k.startswith("repro_h_bucket")
        ]
        assert buckets == sorted(buckets)
        assert samples['repro_h_bucket{le="+Inf"}'] == samples["repro_h_count"]

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestSketchInstrument:
    def test_get_or_create_and_kind(self):
        reg = MetricsRegistry()
        a = reg.sketch("repro_s_us", {"src": "n0"})
        b = reg.sketch("repro_s_us", {"src": "n0"})
        assert a is b
        assert isinstance(a, QuantileSketch)
        with pytest.raises(ConfigurationError):
            reg.counter("repro_s_us")  # kind conflict

    def test_sketches_listing(self):
        reg = MetricsRegistry()
        reg.counter("repro_c")
        reg.sketch("repro_s_us", {"x": "1"})
        reg.sketch("repro_s_us", {"x": "0"})
        names = [(s.name, dict(s.labels)["x"]) for s in reg.sketches()]
        assert names == [("repro_s_us", "0"), ("repro_s_us", "1")]

    def test_prometheus_summary_exposition(self):
        reg = MetricsRegistry()
        s = reg.sketch("repro_s_us", {"src": "n0"}, help="edge tails")
        for i in range(100):
            s.observe(float(i))
        text = reg.to_prometheus()
        assert "# TYPE repro_s_us summary" in text
        samples = _parse_prometheus(text)
        assert samples['repro_s_us{src="n0",quantile="0.5"}'] == s.quantile(0.5)
        assert samples['repro_s_us{src="n0",quantile="0.99"}'] == s.quantile(0.99)
        assert samples['repro_s_us_count{src="n0"}'] == 100
        assert math.isclose(
            samples['repro_s_us_sum{src="n0"}'], sum(range(100))
        )

    def test_snapshot_round_trip_through_registry(self):
        reg = MetricsRegistry()
        s = reg.sketch("repro_s_us", {"src": "n0"}, k=16)
        for i in range(1000):
            s.observe(float(i % 97))
        restored = MetricsRegistry.from_snapshot(reg.to_snapshot())
        r = restored.get("repro_s_us", {"src": "n0"})
        assert isinstance(r, QuantileSketch)
        assert r.k == 16
        assert r.count == s.count
        assert r.levels == s.levels
        for q in (0.5, 0.99, 0.999):
            assert r.quantile(q) == s.quantile(q)
