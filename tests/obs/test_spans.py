"""Span reconstruction: stitching trace events into message chains."""

from __future__ import annotations

import pytest

import repro.obs.spans as spans_mod
from repro.obs.spans import (
    SpanCollector,
    interval_overlap,
    merge_intervals,
    subtract_intervals,
    total_length,
)
from repro.util.tracing import TraceEvent


def _e(t, source, kind, **detail):
    return TraceEvent(t, source, kind, detail)


def _basic_stream(src="n0", dst="n1", mid=7, pid=42, size=1024):
    """One eager message: submit -> dispatch -> send -> deliver -> complete."""
    return [
        _e(1.0, f"engine:{src}", "collect.enqueue",
           message=mid, flow="f.stream", dst=dst, bytes=size, fragments=1),
        _e(2.0, f"engine:{src}", "engine.dispatch",
           packet=pid, dst=dst, packet_kind="eager", bytes=size,
           messages=[[mid, 0, size]]),
        _e(3.0, f"nic:{src}.mx00", "nic.send",
           packet=pid, occupancy=0.5),
        _e(5.0, f"rx:{dst}", "rx.deliver",
           packet=pid, src=src, corr=None, bytes=size),
        _e(6.0, f"reasm:{dst}", "message.complete",
           message=mid, flow="f.stream", src=src, bytes=size),
    ]


class TestIntervalHelpers:
    def test_merge_unions_overlaps(self):
        assert merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_merge_drops_empty(self):
        assert merge_intervals([(2, 2), (3, 1)]) == []

    def test_overlap_clips(self):
        assert interval_overlap([(0, 10)], 2, 4) == [(2, 4)]
        assert interval_overlap([(0, 1)], 2, 4) == []

    def test_subtract_punches_holes(self):
        out = subtract_intervals([(0.0, 10.0)], [(2.0, 3.0), (5.0, 7.0)])
        assert out == [(0.0, 2.0), (3.0, 5.0), (7.0, 10.0)]
        assert total_length(out) == pytest.approx(7.0)


class TestChainReconstruction:
    def test_basic_chain(self):
        collector = SpanCollector()
        collector.ingest_all(_basic_stream())
        chains = list(collector.drain_completed())
        assert len(chains) == 1
        chain = chains[0]
        assert chain.key == "n0#m7"
        assert chain.submit_t == 1.0
        assert chain.complete_t == 6.0
        assert chain.covered
        assert len(chain.legs) == 1
        leg = chain.legs[0]
        assert leg.key == "n0#42"
        assert (leg.dispatch_t, leg.send_t, leg.deliver_t) == (2.0, 3.0, 5.0)
        assert leg.occupancy == 0.5
        assert leg.nic == "n0.mx00"
        assert collector.incomplete == 0

    def test_duplicate_deliver_counts_bytes_once(self):
        events = _basic_stream()
        events.insert(4, _e(5.5, "rx:n1", "rx.deliver",
                            packet=42, src="n0", corr=None, bytes=1024))
        collector = SpanCollector()
        collector.ingest_all(events)
        (chain,) = collector.drain_completed()
        assert chain.delivered_bytes == 1024
        assert chain.legs[0].deliver_t == 5.0  # first delivery wins

    def test_multi_leg_chain(self):
        events = [
            _e(1.0, "engine:n0", "collect.enqueue",
               message=1, flow="f", dst="n1", bytes=200, fragments=2),
            _e(2.0, "engine:n0", "engine.dispatch",
               packet=10, dst="n1", packet_kind="eager", bytes=100,
               messages=[[1, 0, 100]]),
            _e(2.1, "engine:n0", "engine.dispatch",
               packet=11, dst="n1", packet_kind="eager", bytes=100,
               messages=[[1, 1, 100]]),
            _e(3.0, "rx:n1", "rx.deliver", packet=10, src="n0", corr=None),
            _e(4.0, "rx:n1", "rx.deliver", packet=11, src="n0", corr=None),
            _e(4.5, "reasm:n1", "message.complete",
               message=1, flow="f", src="n0"),
        ]
        collector = SpanCollector()
        collector.ingest_all(events)
        (chain,) = collector.drain_completed()
        assert len(chain.legs) == 2
        assert chain.delivered_bytes == 200

    def test_hold_windows_open_and_close(self):
        collector = SpanCollector()
        collector.ingest(_e(1.0, "engine:n0", "hold.arm", wake_at=1.5, backlog=3))
        collector.ingest(_e(1.2, "engine:n0", "hold.arm", wake_at=1.5, backlog=4))
        collector.ingest(_e(1.5, "engine:n0", "hold.fire"))
        collector.ingest(_e(2.0, "engine:n0", "hold.arm", wake_at=2.4, backlog=1))
        assert collector.hold_windows["n0"] == [(1.0, 1.5), (2.0, None)]

    def test_rdv_window_closed_by_ready(self):
        collector = SpanCollector()
        collector.ingest(_e(1.0, "engine:n0", "collect.enqueue",
                            message=3, flow="f", dst="n1", bytes=10, fragments=1))
        collector.ingest(_e(1.1, "engine:n0", "rdv.park", message=3))
        collector.ingest(_e(1.9, "engine:n0", "rdv.ready", message=3))
        chain = collector.chains[("n0", 3)]
        assert chain.rdv_windows == [(1.1, 1.9)]

    def test_reorder_spans_attach_to_leg(self):
        collector = SpanCollector()
        collector.ingest(_e(3.0, "rel:n1", "reorder.enter",
                            packet=9, src="n0", seq=2, expected=1))
        collector.ingest(_e(3.7, "rel:n1", "reorder.release", packet=9, src="n0"))
        leg = collector.legs["n0#9"]
        assert (leg.reorder_enter_t, leg.reorder_release_t) == (3.0, 3.7)
        assert leg.arrival_t == 3.0

    def test_retransmits_and_drops_recorded(self):
        collector = SpanCollector()
        collector.ingest(_e(2.0, "rel:n0.mx00", "rel.drop", packet=5, attempt=0))
        collector.ingest(_e(2.5, "rel:n0.mx00", "rel.retransmit", packet=5, attempt=1))
        leg = collector.legs["n0#5"]
        assert leg.drops == 1
        assert leg.retransmits == [2.5]

    def test_live_mirror_completion_joined_by_flow_order(self):
        """A live receiver's message.complete carries a peer-local id;
        the oldest fully-covered chain of the same flow is completed."""
        events = _basic_stream()[:-1]  # drop the matching complete
        events.append(_e(6.0, "reasm:n1", "message.complete",
                         message=-3, flow="f.stream", src="n0"))
        collector = SpanCollector()
        collector.ingest_all(events)
        (chain,) = collector.drain_completed()
        assert chain.message_id == 7
        assert chain.complete_t == 6.0

    def test_finish_closes_covered_chains(self):
        events = _basic_stream()[:-1]  # no message.complete at all
        collector = SpanCollector()
        collector.ingest_all(events)
        assert collector.incomplete == 1
        collector.finish()
        (chain,) = collector.drain_completed()
        assert chain.complete_t == 5.0  # last delivery stands in
        assert collector.incomplete == 0

    def test_uncovered_chain_stays_incomplete(self):
        collector = SpanCollector()
        collector.ingest(_e(1.0, "engine:n0", "collect.enqueue",
                            message=1, flow="f", dst="n1", bytes=100, fragments=1))
        collector.finish()
        assert collector.incomplete == 1
        assert list(collector.drain_completed()) == []

    def test_truncation_marker_ingested(self):
        collector = SpanCollector()
        collector.ingest(_e(9.0, "obs:recorder", "obs.truncated",
                            seen=1000, dropped=900, capacity=100))
        assert collector.trace_dropped == 900
        assert collector.trace_seen == 1000

    def test_pending_cap_evicts_fifo(self, monkeypatch):
        monkeypatch.setattr(spans_mod, "_PENDING_CAP", 2)
        collector = SpanCollector()
        for mid in range(3):
            collector.ingest(_e(float(mid), "engine:n0", "collect.enqueue",
                                message=mid, flow="f", dst="n1",
                                bytes=10, fragments=1))
        assert collector.evicted_chains == 1
        assert ("n0", 0) not in collector.chains
        assert ("n0", 2) in collector.chains
