"""Exporter round-trips: Chrome trace schema and JSONL."""

import json

import pytest

from repro.obs.export import (
    load_events,
    to_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.util.errors import ConfigurationError
from repro.util.tracing import TraceEvent


def _sample_stream() -> list[TraceEvent]:
    return [
        TraceEvent(0.0, "engine:n0", "optimizer.activate", {"trigger": "submit"}),
        TraceEvent(1e-6, "nic:n0.mx00", "nic.send", {"packet_kind": "eager", "bytes": 256}),
        TraceEvent(2e-6, "engine:n0", "rdv.park", {"token": 7, "bytes": 65536}),
        TraceEvent(3e-6, "nic:n0.mx00", "nic.idle", {}),
        TraceEvent(
            4e-6,
            "obs:sampler",
            "obs.sample",
            {
                "queues": {"n0/0": [3, 768]},
                "nic_busy": {"n0.mx00": 0.5},
                "backlog": 3,
                "retransmits_in_flight": 0,
                "rendezvous_in_flight": 1,
                "holds_armed": 0,
            },
        ),
        TraceEvent(5e-6, "engine:n1", "rdv.ready", {"token": 7}),
    ]


class TestChromeTrace:
    def test_valid_schema(self):
        doc = to_chrome_trace(_sample_stream())
        assert isinstance(doc["traceEvents"], list)
        json.dumps(doc)  # everything must be JSON-serializable
        for entry in doc["traceEvents"]:
            assert entry["ph"] in ("B", "E", "b", "e", "C", "i", "M")
            assert isinstance(entry["pid"], int)
            if entry["ph"] != "M":
                assert isinstance(entry["ts"], (int, float))

    def test_timestamps_are_microseconds(self):
        doc = to_chrome_trace(_sample_stream())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        activate = next(e for e in instants if e["name"] == "optimizer.activate")
        assert activate["ts"] == 0.0
        sample = next(e for e in instants if e["name"] == "obs.sample")
        assert sample["ts"] == pytest.approx(4.0)

    def test_nic_span_is_balanced(self):
        doc = to_chrome_trace(_sample_stream())
        begins = [e for e in doc["traceEvents"] if e["ph"] == "B"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "E"]
        assert len(begins) == len(ends) == 1
        assert begins[0]["ts"] <= ends[0]["ts"]
        assert (begins[0]["pid"], begins[0]["tid"]) == (ends[0]["pid"], ends[0]["tid"])

    def test_rdv_async_span_keyed_by_token(self):
        doc = to_chrome_trace(_sample_stream())
        b = next(e for e in doc["traceEvents"] if e["ph"] == "b")
        e = next(e for e in doc["traceEvents"] if e["ph"] == "e")
        assert b["id"] == e["id"] == 7
        assert b["cat"] == e["cat"] == "rdv"
        assert e["args"]["outcome"] == "ready"

    def test_unmatched_spans_are_closed(self):
        events = [
            TraceEvent(0.0, "nic:n0.mx00", "nic.send", {"packet_kind": "eager"}),
            TraceEvent(1e-6, "engine:n0", "rdv.park", {"token": 1}),
        ]
        doc = to_chrome_trace(events)
        phases = [e["ph"] for e in doc["traceEvents"] if e["ph"] in "BEbe"]
        assert sorted(phases) == ["B", "E", "b", "e"]
        closer = next(e for e in doc["traceEvents"] if e["ph"] == "e")
        assert closer["args"]["outcome"] == "unresolved"

    def test_nodes_become_processes_with_metadata(self):
        doc = to_chrome_trace(_sample_stream())
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"cluster", "node n0", "node n1"} <= names
        threads = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "optimizer" in threads
        assert any("mx00" in t for t in threads)

    def test_sample_becomes_counter_tracks(self):
        doc = to_chrome_trace(_sample_stream())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert "queue depth" in names
        assert "busy n0.mx00" in names
        assert "backlog" in names
        for entry in counters:
            assert all(
                isinstance(v, (int, float)) for v in entry["args"].values()
            )


class TestRoundTrip:
    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        events = _sample_stream()
        path = tmp_path / "t.jsonl"
        assert write_trace(path, events) == "jsonl"
        loaded = load_events(path)
        assert loaded == events

    def test_chrome_round_trip_preserves_instants(self, tmp_path):
        events = _sample_stream()
        path = tmp_path / "t.json"
        assert write_trace(path, events) == "chrome"
        loaded = load_events(path)
        by_kind = {e.kind: e for e in loaded}
        # span-projected events (nic.send/idle, rdv.*) don't come back;
        # instants do, with time/source/detail intact.
        sample = by_kind["obs.sample"]
        assert sample.time == pytest.approx(4e-6)
        assert sample.source == "obs:sampler"
        assert sample.detail["backlog"] == 3
        assert by_kind["optimizer.activate"].detail == {"trigger": "submit"}

    def test_single_line_jsonl_detected(self, tmp_path):
        path = tmp_path / "one.jsonl"
        write_jsonl(path, [_sample_stream()[0]])
        loaded = load_events(path)
        assert len(loaded) == 1
        assert loaded[0].kind == "optimizer.activate"

    def test_empty_file_loads_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_events(path) == []

    def test_bad_lines_are_named(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 1.0, "source": "a", "kind": "k"}\nnot json\n')
        with pytest.raises(ConfigurationError, match="bad.jsonl:2"):
            load_events(path)

    def test_json_without_trace_events_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"foo": 1}')
        with pytest.raises(ConfigurationError, match="traceEvents"):
            load_events(path)
