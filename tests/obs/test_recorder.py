"""Tests for the trace sinks, especially flight-recorder bounds."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.recorder import ListSink, RingBufferSink
from repro.util.errors import ConfigurationError
from repro.util.tracing import TraceEvent, Tracer


def _event(i: int) -> TraceEvent:
    return TraceEvent(float(i), "test:src", "test.kind", {"i": i})


class TestListSink:
    def test_keeps_everything_in_order(self):
        sink = ListSink()
        for i in range(5):
            sink(_event(i))
        assert [e.detail["i"] for e in sink] == [0, 1, 2, 3, 4]
        assert sink.seen == 5
        assert sink.dropped == 0

    def test_to_jsonl(self):
        sink = ListSink()
        sink(_event(3))
        record = json.loads(sink.to_jsonl())
        assert record == {
            "time": 3.0,
            "source": "test:src",
            "kind": "test.kind",
            "detail": {"i": 3},
        }


class TestRingBufferSink:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            RingBufferSink(0)

    def test_keeps_newest_window(self):
        sink = RingBufferSink(3)
        for i in range(10):
            sink(_event(i))
        assert [e.detail["i"] for e in sink.events] == [7, 8, 9]
        assert sink.seen == 10
        assert sink.dropped == 7

    @given(st.integers(1, 50), st.integers(0, 200))
    def test_eviction_bounds(self, capacity, n_events):
        sink = RingBufferSink(capacity)
        for i in range(n_events):
            sink(_event(i))
        assert len(sink) <= capacity
        assert len(sink) == min(capacity, n_events)
        assert sink.seen == n_events
        assert sink.dropped == n_events - len(sink)
        # the window is the most recent events, oldest first
        kept = [e.detail["i"] for e in sink.events]
        assert kept == list(range(max(0, n_events - capacity), n_events))

    def test_subscribing_enables_tracer(self):
        tracer = Tracer()
        assert not tracer.enabled
        sink = RingBufferSink(8)
        tracer.subscribe(sink)
        assert tracer.enabled
        tracer.emit(1.0, "a", "k", x=1)
        assert sink.seen == 1
