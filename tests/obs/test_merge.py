"""Property tests for the cross-peer merge operations.

The merge layer (:mod:`repro.obs.merge`) is pure data-plumbing with
algebraic contracts, so it gets algebraic tests:

* histogram bucket-wise merge must equal observing the union of the raw
  samples into one histogram;
* counter aggregation must be associative and commutative;
* clock-offset alignment must preserve each peer's internal event order
  no matter the offsets;
* offset estimation must recover an exact skew from noise-free probes.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.merge import (
    OffsetSample,
    aggregate_registries,
    align_events,
    correct_edge_sketches,
    estimate_offsets,
    extract_crossings,
    merge_histograms,
    merge_registries,
)
from repro.obs.metrics import MetricsRegistry
from repro.util.errors import ConfigurationError
from repro.util.tracing import TraceEvent

# Values that land in finite buckets and keep float sums exactly
# comparable; the merge itself is pure integer bucket arithmetic.
_observations = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
    max_size=40,
)


def _hist_registry(samples, *, name="repro_m", n_buckets=8):
    reg = MetricsRegistry()
    hist = reg.histogram(name, {"node": "n0"}, base=1e-6, growth=4.0,
                         n_buckets=n_buckets)
    for value in samples:
        hist.observe(value)
    return reg, hist


class TestHistogramMerge:
    @given(a=_observations, b=_observations)
    @settings(max_examples=60, deadline=None)
    def test_bucketwise_merge_equals_union_of_observations(self, a, b):
        _, ha = _hist_registry(a)
        _, hb = _hist_registry(b)
        _, hu = _hist_registry(a + b)
        merge_histograms(ha, hb)
        assert ha.counts == hu.counts
        assert ha.inf_count == hu.inf_count
        assert ha.count == hu.count
        assert math.isclose(ha.total, hu.total, rel_tol=1e-9, abs_tol=1e-12)

    def test_mismatched_bounds_rejected(self):
        _, ha = _hist_registry([1.0])
        reg = MetricsRegistry()
        hb = reg.histogram("repro_m", {"node": "n0"}, base=1e-6, growth=4.0,
                           n_buckets=12)
        with pytest.raises(ConfigurationError):
            merge_histograms(ha, hb)


def _counter_registry(values: dict[str, int]) -> MetricsRegistry:
    reg = MetricsRegistry()
    for node, value in values.items():
        reg.counter("repro_x_total", {"node": node}).inc(value)
    return reg


_counter_values = st.dictionaries(
    st.sampled_from(["n0", "n1", "n2"]),
    st.integers(min_value=0, max_value=10**9),
    max_size=3,
)


def _totals(reg: MetricsRegistry) -> dict:
    return {
        (e["name"], tuple(sorted(map(tuple, e["labels"])))): e["value"]
        for e in reg.to_snapshot()["metrics"]
    }


class TestCounterAggregation:
    @given(a=_counter_values, b=_counter_values)
    @settings(max_examples=60, deadline=None)
    def test_commutative(self, a, b):
        ab = aggregate_registries([_counter_registry(a), _counter_registry(b)])
        ba = aggregate_registries([_counter_registry(b), _counter_registry(a)])
        assert _totals(ab) == _totals(ba)

    @given(a=_counter_values, b=_counter_values, c=_counter_values)
    @settings(max_examples=60, deadline=None)
    def test_associative(self, a, b, c):
        regs = [_counter_registry(v) for v in (a, b, c)]
        left = aggregate_registries(
            [aggregate_registries(regs[:2]), regs[2]]
        )
        flat = aggregate_registries(regs)
        assert _totals(left) == _totals(flat)

    def test_sums_values(self):
        out = aggregate_registries(
            [_counter_registry({"n0": 3}), _counter_registry({"n0": 4})]
        )
        assert out.get("repro_x_total", {"node": "n0"}).value == 7


class TestRelabelMerge:
    def test_peer_label_disambiguates_identical_series(self):
        per_peer = {
            "n0": _counter_registry({"n0": 5}),
            "n1": _counter_registry({"n0": 7}),
        }
        cluster = merge_registries(per_peer)
        assert cluster.get("repro_x_total", {"node": "n0", "peer": "n0"}).value == 5
        assert cluster.get("repro_x_total", {"node": "n0", "peer": "n1"}).value == 7

    def test_accepts_snapshots(self):
        cluster = merge_registries({"n0": _counter_registry({"n0": 2}).to_snapshot()})
        assert cluster.get("repro_x_total", {"node": "n0", "peer": "n0"}).value == 2

    def test_reserved_peer_label_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", {"peer": "oops"}).inc()
        with pytest.raises(ConfigurationError):
            merge_registries({"n0": reg})


def _sketch_registry(samples, *, labels=None):
    from repro.obs.tails import EDGE_METRIC

    reg = MetricsRegistry()
    sketch = reg.sketch(
        EDGE_METRIC, labels or {"src": "n0", "dst": "n1"}, k=32
    )
    for value in samples:
        sketch.observe(value)
    return reg


class TestSketchAggregation:
    @given(a=_observations, b=_observations)
    @settings(max_examples=40, deadline=None)
    def test_levelwise_merge_equals_pooled_stream(self, a, b):
        from repro.obs.tails import EDGE_METRIC

        out = aggregate_registries(
            [_sketch_registry(a), _sketch_registry(b).to_snapshot()]
        )
        merged = out.get(EDGE_METRIC, {"src": "n0", "dst": "n1"})
        assert merged.count == len(a) + len(b)
        pooled = sorted(a + b)
        if pooled:
            bound = merged.rank_error_bound() + 1.0 / len(pooled)
            answer = merged.quantile(0.5)
            rank = sum(1 for v in pooled if v <= answer) / len(pooled)
            rank_lo = sum(1 for v in pooled if v < answer) / len(pooled)
            assert rank_lo - bound <= 0.5 <= rank + bound

    def test_kind_collision_rejected(self):
        from repro.obs.tails import EDGE_METRIC

        hist_reg = MetricsRegistry()
        hist_reg.histogram(EDGE_METRIC, {"src": "n0", "dst": "n1"})
        with pytest.raises(ConfigurationError):
            aggregate_registries([_sketch_registry([1.0]), hist_reg])


class TestOffsetCorrection:
    def test_shifts_each_edge_by_its_offset_delta(self):
        from repro.obs.tails import EDGE_METRIC

        reg = _sketch_registry([100.0, 200.0, 300.0])
        # n0's clock runs 50us ahead of the timeline, n1 10us: true
        # latency adds (off_src - off_dst) = +40us to every raw sample.
        corrected = correct_edge_sketches(reg, {"n0": 50e-6, "n1": 10e-6})
        assert corrected == 1
        sketch = reg.get(EDGE_METRIC, {"src": "n0", "dst": "n1"})
        assert sketch.minimum == pytest.approx(140.0)
        assert sketch.maximum == pytest.approx(340.0)
        assert sketch.total == pytest.approx(100 + 200 + 300 + 3 * 40)

    def test_negative_correction_clamps_at_zero(self):
        from repro.obs.tails import EDGE_METRIC

        reg = _sketch_registry([5.0, 100.0])
        correct_edge_sketches(reg, {"n0": -50e-6, "n1": 0.0})
        sketch = reg.get(EDGE_METRIC, {"src": "n0", "dst": "n1"})
        assert sketch.minimum == 0.0  # 5 - 50 clamps
        assert sketch.maximum == pytest.approx(50.0)

    def test_non_edge_sketches_untouched(self):
        from repro.obs.tails import RAIL_METRIC

        reg = MetricsRegistry()
        rail = reg.sketch(RAIL_METRIC, {"nic": "n0.mx"})
        rail.observe(10.0)
        assert correct_edge_sketches(reg, {"n0": 1.0}) == 0
        assert rail.minimum == 10.0

    def test_unknown_peers_default_to_zero(self):
        reg = _sketch_registry([10.0])
        assert correct_edge_sketches(reg, {}) == 1
        from repro.obs.tails import EDGE_METRIC

        assert reg.get(
            EDGE_METRIC, {"src": "n0", "dst": "n1"}
        ).minimum == 10.0


_per_peer_times = st.dictionaries(
    st.sampled_from(["n0", "n1", "n2"]),
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        max_size=25,
    ),
    max_size=3,
)
_offsets = st.dictionaries(
    st.sampled_from(["n0", "n1", "n2"]),
    st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    max_size=3,
)


class TestAlignment:
    @given(times=_per_peer_times, offsets=_offsets)
    @settings(max_examples=80, deadline=None)
    def test_per_peer_order_preserved(self, times, offsets):
        events_by_peer = {
            peer: [
                TraceEvent(t, f"src:{peer}", "tick", {"seq": i})
                for i, t in enumerate(sorted(ts))
            ]
            for peer, ts in times.items()
        }
        merged = align_events(events_by_peer, offsets)
        assert len(merged.events) == sum(len(v) for v in events_by_peer.values())
        for peer in events_by_peer:
            seqs = [
                e.detail["seq"]
                for e in merged.events
                if e.source == f"src:{peer}"
            ]
            assert seqs == sorted(seqs)
        assert merged.events == sorted(merged.events, key=lambda e: e.time)

    def test_recv_send_time_rewritten_and_clamped(self):
        events = {
            "n1": [
                TraceEvent(10.0, "peer:n1", "live.recv",
                           {"corr": "n0#1", "src": "n0", "sent_at": 9.0}),
                TraceEvent(11.0, "peer:n1", "live.recv",
                           {"corr": "n0#2", "src": "n0", "sent_at": 50.0}),
            ]
        }
        merged = align_events(events, {"n0": 0.0, "n1": 0.0})
        ok, clamped = merged.events
        assert ok.detail["send_time"] == 9.0
        assert clamped.detail["send_time"] == clamped.time  # clamped down
        assert merged.crossings_clamped == 1


class TestOffsetEstimation:
    @given(
        skew=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        rtt=st.floats(min_value=1e-6, max_value=0.01, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_recovers_exact_skew_from_symmetric_probes(self, skew, rtt):
        # Peer clock = true time + skew; probe replies land mid-RTT.
        samples = [
            OffsetSample(peer="n1", t0=t, t1=t + rtt,
                         peer_now=t + rtt / 2 + skew)
            for t in (0.0, 1.0, 2.0)
        ]
        offsets = estimate_offsets(samples, peers=["n0", "n1"])
        assert offsets["n0"] == 0.0
        assert math.isclose(offsets["n1"], skew, rel_tol=0, abs_tol=1e-9)

    def test_negative_rtt_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_offsets([OffsetSample("n1", 1.0, 0.5, 1.0)])

    def test_crossing_refinement_reduces_latency_asymmetry(self):
        # n1 runs 10 ms ahead; probes are asymmetric (reply path slower)
        # so the midpoint estimate alone is biased.
        skew = 0.010
        samples = [
            OffsetSample("n1", t0=t, t1=t + 0.004, peer_now=t + 0.003 + skew)
            for t in (0.0, 0.5)
        ]
        biased = estimate_offsets(samples, peers=["n0", "n1"])["n1"]
        # True one-way latency 1 ms each direction.
        events = {
            "n0": [
                TraceEvent(t + 0.001, "peer:n0", "live.recv",
                           {"corr": f"n1#{i}", "src": "n1",
                            "sent_at": t + skew})
                for i, t in enumerate((1.0, 1.1))
            ],
            "n1": [
                TraceEvent(t + 0.001 + skew, "peer:n1", "live.recv",
                           {"corr": f"n0#{i}", "src": "n0", "sent_at": t})
                for i, t in enumerate((1.2, 1.3))
            ],
        }
        crossings = extract_crossings(events)
        refined = estimate_offsets(samples, crossings, peers=["n0", "n1"])["n1"]
        assert abs(refined - skew) < abs(biased - skew)


class TestDegenerateMerges:
    """Single peers, missing offsets, and skew signs that could go wrong."""

    def test_single_peer_merge_passes_events_through(self):
        events = {
            "n0": [
                TraceEvent(float(i), "peer:n0", "tick", {"seq": i})
                for i in range(5)
            ]
        }
        merged = align_events(events, estimate_offsets([], peers=["n0"]))
        assert [e.time for e in merged.events] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert merged.events_by_peer == {"n0": 5}
        assert merged.crossings_clamped == 0

    def test_peer_without_offset_estimate_defaults_to_zero(self):
        # n1 sent no probes and produced no crossings: its events must
        # still merge, at face value, rather than being dropped.
        offsets = estimate_offsets(
            [OffsetSample("n2", 0.0, 0.002, 0.001)], peers=["n0", "n1", "n2"]
        )
        assert offsets["n1"] == 0.0
        events = {
            "n1": [TraceEvent(3.5, "peer:n1", "tick", {})],
            "n2": [TraceEvent(4.0, "peer:n2", "tick", {})],
        }
        merged = align_events(events, offsets)
        times = {e.source: e.time for e in merged.events}
        assert times["peer:n1"] == 3.5
        assert times["peer:n2"] == pytest.approx(4.0 - offsets["n2"])

    @given(offset=st.floats(min_value=-5.0, max_value=-1e-9, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_negative_offset_never_yields_negative_durations(self, offset):
        # A peer whose clock runs *behind* the coordinator gets a
        # negative offset; the correction shifts its events forward.
        # No aligned wire crossing may end before it started.
        events = {
            "n1": [
                TraceEvent(10.0, "peer:n1", "live.recv",
                           {"corr": "n0#1", "src": "n0", "sent_at": 9.9}),
                TraceEvent(10.5, "peer:n1", "live.recv",
                           {"corr": "n0#2", "src": "n0", "sent_at": 10.4}),
            ]
        }
        merged = align_events(events, {"n0": 0.0, "n1": offset})
        assert len(merged.events) == 2
        for event in merged.events:
            duration = event.time - event.detail["send_time"]
            assert duration >= 0.0
        # per-peer spacing is offset-invariant
        a, b = merged.events
        assert b.time - a.time == pytest.approx(0.5)
