"""Sampler correctness: what it records must equal a direct recount."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import ObservabilitySampler
from repro.runtime.cluster import Cluster


def _drive(cluster: Cluster, sizes, dst="n1"):
    api = cluster.api("n0")
    flow = api.open_flow(dst)
    return [api.send(flow, size) for size in sizes]


class TestAgainstRecount:
    @settings(max_examples=20, deadline=None)
    @given(
        sizes=st.lists(st.integers(16, 2048), min_size=1, max_size=12),
        interval_us=st.floats(5.0, 50.0),
    )
    def test_sampled_backlog_matches_live_totals(self, sizes, interval_us):
        """Every sample's backlog equals the engines' own O(1) counters,
        and the queues breakdown sums to the backlog."""
        cluster = Cluster(seed=1)
        checked = []

        class CheckingSampler(ObservabilitySampler):
            def _snapshot(self, now):
                sample = super()._snapshot(now)
                live_entries = sum(
                    e.waiting.total_pending for e in cluster.engines.values()
                )
                live_bytes = sum(
                    e.waiting.total_pending_bytes for e in cluster.engines.values()
                )
                checked.append(
                    (
                        sample.backlog == live_entries,
                        sample.backlog_bytes == live_bytes,
                        sum(d for d, _ in sample.queues.values()) == sample.backlog,
                        sum(b for _, b in sample.queues.values())
                        == sample.backlog_bytes,
                    )
                )
                return sample

        sampler = CheckingSampler(cluster, interval_us * 1e-6)
        messages = _drive(cluster, sizes)
        cluster.run_until_idle()
        assert all(m.completion.done for m in messages)
        assert checked, "the sampler never ticked"
        assert all(all(row) for row in checked)
        assert len(sampler.samples) == len(checked)

    def test_final_sample_sees_drained_cluster(self):
        cluster = Cluster(seed=1)
        sampler = ObservabilitySampler(cluster, 1e-5)
        _drive(cluster, [256] * 4)
        cluster.run_until_idle()
        assert sampler.samples[-1].backlog == 0
        assert sampler.samples[-1].messages_completed == 4

    def test_busy_fraction_bounded_and_nonzero_under_load(self):
        cluster = Cluster(seed=1)
        sampler = ObservabilitySampler(cluster, 1e-5)
        _drive(cluster, [4096] * 16)
        cluster.run_until_idle()
        fractions = [
            f for s in sampler.samples for f in s.nic_busy.values()
        ]
        assert all(0.0 <= f <= 1.0 for f in fractions)
        assert max(fractions) > 0.0

    def test_series_accessor(self):
        cluster = Cluster(seed=1)
        sampler = ObservabilitySampler(cluster, 1e-5)
        _drive(cluster, [256])
        cluster.run_until_idle()
        assert sampler.series("backlog") == [s.backlog for s in sampler.samples]
        assert sampler.times == [s.time for s in sampler.samples]


class TestRegistryUpdates:
    def test_gauges_hold_last_sample(self):
        registry = MetricsRegistry()
        cluster = Cluster(seed=1)
        ObservabilitySampler(cluster, 1e-5, registry=registry)
        _drive(cluster, [256] * 4)
        cluster.run_until_idle()
        backlog = registry.get("repro_backlog_entries")
        assert backlog is not None and backlog.value == 0
        samples = registry.get("repro_samples_total")
        assert samples is not None and samples.value >= 1
        hist = registry.get("repro_queue_depth_hist")
        assert hist is not None and hist.count > 0

    def test_termination_under_run_until_idle(self):
        """The sampler must not keep an otherwise-drained sim alive."""
        cluster = Cluster(seed=1)
        ObservabilitySampler(cluster, 1e-5)
        _drive(cluster, [256])
        end = cluster.run_until_idle()
        assert end < 1.0  # finite: the sampler stopped rescheduling
