"""Tests for ``repro obs diff``: direction rules, gating, file loading."""

from __future__ import annotations

import argparse
import json

import pytest

from repro.obs.diff import (
    DEFAULT_THRESHOLD,
    compare,
    direction_of,
    load_comparable,
    main,
)
from repro.util.errors import ConfigurationError


class TestDirection:
    @pytest.mark.parametrize(
        "key",
        [
            "pingpong/rtt_mean_us",
            "edge/n0->n1/latency_p90_us",
            "retransmit/storms",
            "crossings/clamped",
            "decide/miss_fraction",
            "hold/starved_samples",
        ],
    )
    def test_higher_is_worse(self, key):
        assert direction_of(key) == "higher-is-worse"

    @pytest.mark.parametrize(
        "key",
        [
            "aggregation/ratio",
            "aggregation/throughput_MBps",
            "pingpong/bytes_verified",
            "traced/flow_crossings",
        ],
    )
    def test_lower_is_worse(self, key):
        assert direction_of(key) == "lower-is-worse"

    def test_unclassifiable_is_neutral(self):
        assert direction_of("backlog/peak") == "neutral"


class TestCompare:
    def test_no_change_no_regressions(self):
        base = {"a/latency_us": 10.0, "b/ratio": 2.0}
        assert not any(e.regressed for e in compare(base, dict(base)))

    def test_latency_regression_beyond_threshold(self):
        entries = compare({"a/latency_us": 10.0}, {"a/latency_us": 13.0})
        assert entries[0].regressed  # +30% > default 20%

    def test_latency_within_threshold_passes(self):
        entries = compare({"a/latency_us": 10.0}, {"a/latency_us": 11.0})
        assert not entries[0].regressed

    def test_throughput_drop_regresses(self):
        entries = compare({"x/throughput": 100.0}, {"x/throughput": 50.0})
        assert entries[0].regressed

    def test_throughput_gain_passes(self):
        entries = compare({"x/throughput": 100.0}, {"x/throughput": 200.0})
        assert not entries[0].regressed

    def test_neutral_keys_never_gate(self):
        entries = compare({"backlog/peak": 1.0}, {"backlog/peak": 1000.0})
        assert not entries[0].regressed

    def test_zero_baseline_higher_worse_any_positive_fails(self):
        entries = compare({"r/corrupt_slices": 0.0}, {"r/corrupt_slices": 1.0})
        assert entries[0].regressed
        assert entries[0].note == "was zero"

    def test_missing_key_is_structural_regression(self):
        entries = compare({"a/latency_us": 1.0, "backlog/peak": 2.0}, {"backlog/peak": 2.0})
        missing = [e for e in entries if e.key == "a/latency_us"]
        assert missing[0].regressed
        assert missing[0].note == "missing from candidate"

    def test_new_key_is_not_a_regression(self):
        entries = compare({}, {"a/latency_us": 5.0})
        assert not entries[0].regressed

    def test_ignore_globs(self):
        entries = compare(
            {"a/latency_us": 10.0, "b/ratio": 2.0},
            {"a/latency_us": 99.0, "b/ratio": 2.0},
            ignore=("*_us",),
        )
        assert [e.key for e in entries] == ["b/ratio"]

    def test_regressions_sort_first(self):
        entries = compare(
            {"a/latency_us": 10.0, "z/ratio": 2.0},
            {"a/latency_us": 10.0, "z/ratio": 0.5},
        )
        assert entries[0].key == "z/ratio"
        assert entries[0].regressed

    def test_threshold_default(self):
        assert DEFAULT_THRESHOLD == 0.2


def _bench_file(tmp_path, name, metrics):
    path = tmp_path / name
    path.write_text(
        json.dumps({"schema": 1, "suite": "live", "quick": True,
                    "transport": "uds", "metrics": metrics})
    )
    return path


class TestLoadComparable:
    def test_bench_json(self, tmp_path):
        path = _bench_file(tmp_path, "BENCH_live.json", {"a/ratio": 2.0})
        kind, metrics = load_comparable(path)
        assert kind == "bench"
        assert metrics == {"a/ratio": 2.0}

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_comparable(tmp_path / "nope.json")

    def test_trace_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"time": 0.0, "source": "s", "kind": "tick", "detail": {}})
            + "\n"
        )
        kind, metrics = load_comparable(path)
        assert kind == "trace"
        assert metrics["trace/events"] == 1.0


def _args(baseline, candidate, *, check=False, threshold=None, ignore=()):
    return argparse.Namespace(
        baseline=str(baseline), candidate=str(candidate), check=check,
        threshold=threshold, ignore=list(ignore),
    )


class TestMain:
    def test_injected_regression_fails_check(self, tmp_path, capsys):
        base = _bench_file(
            tmp_path, "base.json",
            {"pingpong/rtt_mean_us": 100.0, "aggregation/ratio": 3.0},
        )
        cand = _bench_file(
            tmp_path, "cand.json",
            {"pingpong/rtt_mean_us": 100.0, "aggregation/ratio": 1.1},
        )
        assert main(_args(base, cand, check=True)) == 1
        out = capsys.readouterr().out
        assert "aggregation/ratio" in out
        assert "1 regression(s)" in out

    def test_clean_diff_passes_check(self, tmp_path):
        base = _bench_file(tmp_path, "base.json", {"aggregation/ratio": 3.0})
        cand = _bench_file(tmp_path, "cand.json", {"aggregation/ratio": 3.1})
        assert main(_args(base, cand, check=True)) == 0

    def test_regression_without_check_reports_but_passes(self, tmp_path):
        base = _bench_file(tmp_path, "base.json", {"aggregation/ratio": 3.0})
        cand = _bench_file(tmp_path, "cand.json", {"aggregation/ratio": 0.5})
        assert main(_args(base, cand, check=False)) == 0

    def test_ignored_regression_passes(self, tmp_path):
        base = _bench_file(tmp_path, "base.json", {"pingpong/rtt_mean_us": 10.0})
        cand = _bench_file(tmp_path, "cand.json", {"pingpong/rtt_mean_us": 50.0})
        assert main(_args(base, cand, check=True, ignore=["*_us"])) == 0

    def test_load_error_exits_2(self, tmp_path):
        base = _bench_file(tmp_path, "base.json", {})
        assert main(_args(base, tmp_path / "missing.json", check=True)) == 2

    def test_custom_threshold(self, tmp_path):
        base = _bench_file(tmp_path, "base.json", {"a/latency_us": 100.0})
        cand = _bench_file(tmp_path, "cand.json", {"a/latency_us": 130.0})
        assert main(_args(base, cand, check=True, threshold=0.5)) == 0
        assert main(_args(base, cand, check=True, threshold=0.1)) == 1
