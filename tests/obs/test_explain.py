"""Decision explainability: the ``optimizer.decide`` record."""

import pytest

from repro.bench.kernel import build_loaded_cluster
from repro.core.config import EngineConfig
from repro.core.strategies.search import BoundedSearchStrategy
from repro.obs.recorder import ListSink
from repro.runtime.cluster import Cluster


def _traced_loaded_cluster(depth, *, budget=64, traced=True):
    cluster = build_loaded_cluster(
        depth,
        strategy=lambda: BoundedSearchStrategy(budget=budget),
        config=EngineConfig(lookahead_window=16),
    )
    sink = ListSink()
    if traced:
        cluster.sim.tracer.subscribe(sink)
    return cluster, sink


def _drain(cluster):
    engine = cluster.engine("n0")
    engine._kick("test")
    cluster.run_until_idle()
    assert engine.waiting.total_pending == 0


class TestDecideRecords:
    def test_one_record_per_dispatch(self):
        cluster, sink = _traced_loaded_cluster(32)
        _drain(cluster)
        decides = [e for e in sink.events if e.kind == "optimizer.decide"]
        dispatches = [e for e in sink.events if e.kind == "engine.dispatch"]
        n0_dispatches = [e for e in dispatches if e.source == "engine:n0"]
        n0_decides = [e for e in decides if e.source == "engine:n0"]
        assert len(n0_decides) == len(n0_dispatches) > 0

    def test_record_fields(self):
        cluster, sink = _traced_loaded_cluster(32)
        _drain(cluster)
        record = next(e for e in sink.events if e.kind == "optimizer.decide")
        d = record.detail
        assert d["strategy"] == "search"
        assert d["items"] >= 1
        assert d["nic"].startswith("n0.")
        assert d["dst"] == "n1"
        # cost-model breakdown, term by term
        score = d["score"]
        for key in (
            "wire_bytes",
            "payload_bytes",
            "occupancy_s",
            "density",
            "staleness_boost",
            "score",
        ):
            assert key in score
        assert score["score"] == pytest.approx(
            score["density"] * score["staleness_boost"]
        )
        # search explainability rides along
        assert d["candidates"] >= 1
        assert d["budget"] == 64
        assert d["truncation"] in ("budget", "exhausted")
        assert d["widest_items"] >= d["items"]

    def test_truncation_reason_budget(self):
        cluster, sink = _traced_loaded_cluster(64, budget=2)
        engine = cluster.engine("n0")
        engine.strategy.make_plan(engine, engine.drivers[0])
        explain = engine.strategy.explain_last()
        assert explain["truncation"] == "budget"
        assert explain["candidates"] == 2

    def test_truncation_reason_exhausted(self):
        cluster, sink = _traced_loaded_cluster(4, budget=10_000)
        engine = cluster.engine("n0")
        engine.strategy.make_plan(engine, engine.drivers[0])
        explain = engine.strategy.explain_last()
        assert explain["truncation"] == "exhausted"
        assert explain["candidates"] < 10_000

    def test_no_explain_collected_without_tracing(self):
        cluster, _ = _traced_loaded_cluster(16, traced=False)
        engine = cluster.engine("n0")
        engine.strategy.make_plan(engine, engine.drivers[0])
        assert engine.strategy.explain_last() is None


class TestTracingDoesNotChangeDecisions:
    def test_dispatch_sequence_identical_traced_vs_untraced(self):
        """Tracing must observe the optimizer, never steer it."""

        def dispatch_log(traced):
            cluster, sink = _traced_loaded_cluster(48, traced=traced)
            probe = []
            engine = cluster.engine("n0")
            original = engine._dispatch

            def recording_dispatch(plan):
                probe.append(
                    (
                        plan.kind.value,
                        plan.channel_id,
                        plan.dst,
                        len(plan.items),
                        plan.payload_bytes,
                        plan.driver.name,
                    )
                )
                return original(plan)

            engine._dispatch = recording_dispatch
            _drain(cluster)
            return probe

        assert dispatch_log(traced=False) == dispatch_log(traced=True)

    def test_budget_accounting_identical_traced_vs_untraced(self):
        def evaluated(traced):
            cluster, _ = _traced_loaded_cluster(48, traced=traced)
            engine = cluster.engine("n0")
            engine.strategy.make_plan(engine, engine.drivers[0])
            return engine.strategy.last_evaluated

        assert evaluated(traced=False) == evaluated(traced=True)


class TestOtherStrategies:
    def test_auto_strategy_reports_regime(self):
        cluster = Cluster(seed=0, strategy="auto")
        sink = ListSink()
        cluster.sim.tracer.subscribe(sink)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        for _ in range(20):
            api.send(flow, 256)
        cluster.run_until_idle()
        decides = [e for e in sink.events if e.kind == "optimizer.decide"]
        assert decides
        assert all(e.detail["regime"] in ("deep", "sparse") for e in decides)

    def test_default_strategy_still_emits_decides(self):
        """Strategies without explain hooks still get the cost breakdown."""
        cluster = Cluster(seed=0)
        sink = ListSink()
        cluster.sim.tracer.subscribe(sink)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        for _ in range(5):
            api.send(flow, 256)
        cluster.run_until_idle()
        decides = [e for e in sink.events if e.kind == "optimizer.decide"]
        assert decides
        assert all("score" in e.detail for e in decides)
        assert all("widest_items" not in e.detail for e in decides)
