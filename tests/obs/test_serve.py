"""Tests for the minimal /metrics-/status HTTP endpoint."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.serve import ObsHTTPServer, parse_serve_address
from repro.util.errors import ConfigurationError


class TestParseServeAddress:
    def test_bare_port(self):
        assert parse_serve_address("9464") == ("127.0.0.1", 9464)

    def test_colon_port(self):
        assert parse_serve_address(":9464") == ("127.0.0.1", 9464)

    def test_host_and_port(self):
        assert parse_serve_address("0.0.0.0:8080") == ("0.0.0.0", 8080)

    @pytest.mark.parametrize("bad", ["", ":", "host:", "host:nan", "x:-1", "x:70000"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ConfigurationError):
            parse_serve_address(bad)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, dict(resp.headers), resp.read()


class TestObsHTTPServer:
    @pytest.fixture()
    def server(self):
        srv = ObsHTTPServer(
            lambda: "repro_up 1\n",
            lambda: {"phase": "running", "peers": 2},
            port=0,
        )
        srv.start()
        yield srv
        srv.stop()

    def test_metrics_endpoint(self, server):
        status, headers, body = _get(f"{server.address}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        assert body == b"repro_up 1\n"

    def test_status_endpoint(self, server):
        status, headers, body = _get(f"{server.address}/status")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        assert json.loads(body) == {"phase": "running", "peers": 2}

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{server.address}/nope")
        assert err.value.code == 404

    def test_tails_404_without_callback(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{server.address}/tails")
        assert err.value.code == 404

    def test_tails_endpoint(self):
        payload = {"edges": {"n0->n1": {"p99_us": 123.0}}, "rails": {}}
        srv = ObsHTTPServer(
            lambda: "", lambda: {}, None, lambda: payload, port=0
        ).start()
        try:
            status, headers, body = _get(f"{srv.address}/tails")
            assert status == 200
            assert headers["Content-Type"].startswith("application/json")
            assert json.loads(body) == payload
        finally:
            srv.stop()

    def test_why_404_without_callback(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{server.address}/why")
        assert err.value.code == 404

    def test_why_endpoint(self):
        payload = {
            "messages": 3,
            "incomplete": 0,
            "edges": {"n0->n1": {"wire": 0.9, "unattributed": 0.1}},
            "slowest": [],
        }
        srv = ObsHTTPServer(
            lambda: "", lambda: {}, None, None, None, lambda: payload, port=0
        ).start()
        try:
            status, headers, body = _get(f"{srv.address}/why")
            assert status == 200
            assert headers["Content-Type"].startswith("application/json")
            assert json.loads(body) == payload
        finally:
            srv.stop()

    def test_callback_exception_is_500(self):
        def boom() -> str:
            raise RuntimeError("registry on fire")

        srv = ObsHTTPServer(boom, lambda: {}, port=0).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{srv.address}/metrics")
            assert err.value.code == 500
        finally:
            srv.stop()

    def test_serves_many_requests(self, server):
        for _ in range(5):
            status, _, _ = _get(f"{server.address}/status")
            assert status == 200
        assert server.requests_served >= 5

    def test_stop_is_idempotent(self, server):
        server.stop()
        server.stop()

    def test_port_zero_resolves(self, server):
        assert server.port > 0

    def test_bind_conflict_raises(self, server):
        clash = ObsHTTPServer(lambda: "", lambda: {}, port=server.port)
        with pytest.raises(OSError):
            clash.start()
