"""Tests for the benchmark harness: tables, persistence, figures, CLI."""

import pytest

from repro.bench.harness import ExperimentResult, format_table, persist_result


def sample_result():
    result = ExperimentResult("EX", "sample", ["x", "y"])
    result.add_row(x=1, y=10.0)
    result.add_row(x=2, y=20.5)
    result.note("a note")
    return result


class TestExperimentResult:
    def test_add_row_validates_columns(self):
        result = ExperimentResult("EX", "t", ["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(a=1)

    def test_column_view(self):
        assert sample_result().column("x") == [1, 2]

    def test_render_contains_everything(self):
        rendered = sample_result().render()
        assert "EX" in rendered and "sample" in rendered
        assert "20.50" in rendered
        assert "a note" in rendered


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["col"], [{"col": 5}, {"col": 123}])
        lines = table.splitlines()
        assert lines[0].endswith("col")
        assert lines[2].endswith("  5")
        assert lines[3].endswith("123")

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table

    def test_float_formats(self):
        table = format_table(["v"], [{"v": 0.001}, {"v": 12345.6}, {"v": 0.0}])
        assert "0.001" in table
        assert "1.23e+04" in table


class TestPersistence:
    def test_writes_file(self, tmp_path):
        path = persist_result(sample_result(), directory=str(tmp_path))
        assert path.name == "EX.txt"
        assert "sample" in path.read_text()

    def test_env_var_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "alt"))
        path = persist_result(sample_result())
        assert str(tmp_path / "alt") in str(path)


class TestFigures:
    def test_render_series_basic(self):
        from repro.bench.figures import render_series

        chart = render_series(
            [1, 2, 4, 8], {"tput": [10, 20, 30, 40]}, x_label="flows", log_x=True
        )
        assert "o=tput" in chart
        assert "(log x)" in chart
        assert chart.count("o") >= 4

    def test_render_series_multi(self):
        from repro.bench.figures import render_series

        chart = render_series(
            [1, 2, 3],
            {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
        )
        assert "o=a" in chart and "x=b" in chart

    def test_length_mismatch_rejected(self):
        from repro.bench.figures import render_series
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            render_series([1, 2], {"a": [1.0]})

    def test_log_x_needs_positive(self):
        from repro.bench.figures import render_series
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            render_series([0, 1], {"a": [1.0, 2.0]}, log_x=True)

    def test_flat_series_ok(self):
        from repro.bench.figures import render_series

        chart = render_series([1, 2], {"a": [5.0, 5.0]})
        assert "o" in chart

    def test_result_figure(self):
        from repro.bench.figures import render_result_figure

        result = sample_result()
        result.figure = ("x", ["y"], False)
        chart = render_result_figure(result)
        assert chart is not None and "figure: EX" in chart

    def test_result_without_figure(self):
        from repro.bench.figures import render_result_figure

        assert render_result_figure(sample_result()) is None


class TestCli:
    def test_runs_selected_quick(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro.bench.__main__ import main

        assert main(["E1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "three-layer" in out

    def test_unknown_id_errors(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["EZZZ"])

    def test_chart_flag(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro.bench.__main__ import main

        assert main(["E8", "--quick", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "figure: E8" in out

    def test_markdown_export(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro.bench.__main__ import main

        target = tmp_path / "results.md"
        assert main(["E8", "--quick", "--markdown", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("# Experiment results")
        assert "## E8" in text and "```" in text
