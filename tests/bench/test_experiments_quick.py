"""Every experiment must run in quick mode and keep its declared shape.

(The full-axis runs live in ``benchmarks/``; this keeps the experiment
code itself under ordinary test coverage.)
"""

import pytest

from repro.bench.experiments import ALL_EXPERIMENTS


@pytest.mark.parametrize("experiment_id", list(ALL_EXPERIMENTS))
def test_quick_mode_runs(experiment_id, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    result = ALL_EXPERIMENTS[experiment_id](quick=True)
    assert result.experiment_id == experiment_id
    assert result.rows, "every experiment must produce rows"
    assert set(result.rows[0]) == set(result.columns)
    rendered = result.render()
    assert experiment_id in rendered


def test_registry_complete():
    assert list(ALL_EXPERIMENTS) == [f"E{i}" for i in range(1, 12)]
