"""Tests for repro.util.stats, including Welford-vs-numpy property tests."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import OnlineStats, Percentiles, summarize

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.count == 0
        assert math.isnan(s.mean)
        assert math.isnan(s.variance)

    def test_single_sample(self):
        s = OnlineStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.minimum == s.maximum == 5.0
        assert math.isnan(s.variance)

    def test_known_values(self):
        s = OnlineStats()
        s.extend([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert s.total == pytest.approx(10.0)

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_matches_numpy(self, values):
        s = OnlineStats()
        s.extend(values)
        arr = np.asarray(values)
        assert s.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)
        assert s.stddev == pytest.approx(arr.std(ddof=1), rel=1e-6, abs=1e-6)
        assert s.minimum == arr.min()
        assert s.maximum == arr.max()

    @given(
        st.lists(finite_floats, min_size=1, max_size=50),
        st.lists(finite_floats, min_size=1, max_size=50),
    )
    def test_merge_equivalent_to_concat(self, xs, ys):
        merged = OnlineStats()
        merged.extend(xs)
        other = OnlineStats()
        other.extend(ys)
        merged.merge(other)

        concat = OnlineStats()
        concat.extend(xs + ys)
        assert merged.count == concat.count
        assert merged.mean == pytest.approx(concat.mean, rel=1e-9, abs=1e-6)
        if merged.count > 1:
            assert merged.variance == pytest.approx(concat.variance, rel=1e-6, abs=1e-6)

    def test_merge_with_empty(self):
        s = OnlineStats()
        s.extend([1.0, 2.0])
        s.merge(OnlineStats())
        assert s.count == 2

        empty = OnlineStats()
        empty.merge(s)
        assert empty.count == 2
        assert empty.mean == pytest.approx(1.5)


class TestPercentiles:
    def test_of_uniform_ramp(self):
        p = Percentiles.of(list(range(101)))
        assert p.p50 == pytest.approx(50.0)
        assert p.p90 == pytest.approx(90.0)
        assert p.p99 == pytest.approx(99.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Percentiles.of([])


class TestAsciiHistogram:
    def test_renders_bars(self):
        from repro.util.stats import ascii_histogram

        out = ascii_histogram([1.0] * 10 + [5.0] * 2, bins=4, width=20)
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].count("#") == 20  # fullest bin at full width
        assert "10" in lines[0]

    def test_empty_rejected(self):
        from repro.util.stats import ascii_histogram

        with pytest.raises(ValueError):
            ascii_histogram([])

    def test_parameter_validation(self):
        from repro.util.stats import ascii_histogram

        with pytest.raises(ValueError):
            ascii_histogram([1.0], bins=0)
        with pytest.raises(ValueError):
            ascii_histogram([1.0], width=0)

    def test_single_value(self):
        from repro.util.stats import ascii_histogram

        out = ascii_histogram([3.0], bins=3)
        assert "#" in out


class TestSummarize:
    def test_summary_fields(self):
        s = summarize([2.0, 4.0, 6.0])
        assert s.count == 3
        assert s.mean == pytest.approx(4.0)
        assert s.minimum == 2.0
        assert s.maximum == 6.0
        assert s.total == pytest.approx(12.0)

    def test_single_sample_stddev_zero(self):
        assert summarize([3.0]).stddev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
