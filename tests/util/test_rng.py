"""Tests for repro.util.rng: determinism and stream independence."""

import numpy as np
import pytest

from repro.util.rng import RngStream, SeedSequenceRegistry


class TestSeedSequenceRegistry:
    def test_same_seed_same_draws(self):
        a = SeedSequenceRegistry(seed=42).stream("arrivals")
        b = SeedSequenceRegistry(seed=42).stream("arrivals")
        assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SeedSequenceRegistry(seed=1).stream("arrivals")
        b = SeedSequenceRegistry(seed=2).stream("arrivals")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_streams_keyed_by_name_not_order(self):
        """Creating extra streams must not perturb an existing stream."""
        reg1 = SeedSequenceRegistry(seed=7)
        s1 = reg1.stream("sizes")
        draws_alone = [s1.uniform() for _ in range(5)]

        reg2 = SeedSequenceRegistry(seed=7)
        reg2.stream("something-else")  # created first this time
        s2 = reg2.stream("sizes")
        assert draws_alone == [s2.uniform() for _ in range(5)]

    def test_stream_identity_cached(self):
        reg = SeedSequenceRegistry(seed=0)
        assert reg.stream("x") is reg.stream("x")

    def test_contains_and_len(self):
        reg = SeedSequenceRegistry(seed=0)
        assert "x" not in reg
        reg.stream("x")
        assert "x" in reg
        assert len(reg) == 1

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            SeedSequenceRegistry(seed=-1)


class TestRngStream:
    @pytest.fixture
    def stream(self):
        return SeedSequenceRegistry(seed=123).stream("test")

    def test_uniform_range(self, stream):
        for _ in range(100):
            v = stream.uniform(2.0, 3.0)
            assert 2.0 <= v < 3.0

    def test_exponential_positive(self, stream):
        assert all(stream.exponential(1e-6) > 0 for _ in range(100))

    def test_exponential_mean_validation(self, stream):
        with pytest.raises(ValueError):
            stream.exponential(0.0)

    def test_exponential_mean_approx(self, stream):
        draws = [stream.exponential(5.0) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(5.0, rel=0.1)

    def test_integers_inclusive(self, stream):
        values = {stream.integers(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_integers_empty_range(self, stream):
        with pytest.raises(ValueError):
            stream.integers(5, 4)

    def test_choice(self, stream):
        assert stream.choice(["a"]) == "a"
        assert stream.choice(("x", "y")) in {"x", "y"}

    def test_choice_empty(self, stream):
        with pytest.raises(ValueError):
            stream.choice([])

    def test_lognormal_size_clamped(self, stream):
        for _ in range(200):
            v = stream.lognormal_size(median=1024, sigma=2.0, lo=64, hi=4096)
            assert 64 <= v <= 4096
            assert isinstance(v, int)

    def test_lognormal_size_validation(self, stream):
        with pytest.raises(ValueError):
            stream.lognormal_size(median=0, sigma=1.0, lo=1, hi=2)
        with pytest.raises(ValueError):
            stream.lognormal_size(median=10, sigma=1.0, lo=5, hi=4)

    def test_shuffle_permutes(self, stream):
        items = list(range(50))
        shuffled = items.copy()
        stream.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_generator_exposed(self, stream):
        assert isinstance(stream.generator, np.random.Generator)
