"""Tests for timeline reconstruction and Gantt rendering."""

import pytest

from repro.runtime import Cluster
from repro.util.errors import ConfigurationError
from repro.util.timeline import Interval, Timeline
from repro.util.tracing import TraceRecorder


class TestInterval:
    def test_duration(self):
        assert Interval(1.0, 3.0, "x").duration == 2.0

    def test_backwards_rejected(self):
        with pytest.raises(ConfigurationError):
            Interval(3.0, 1.0, "x")


class TestTimelineConstruction:
    def test_add_and_query(self):
        t = Timeline()
        t.add("nic0", Interval(0.0, 1.0, "eager"))
        t.add("nic0", Interval(2.0, 3.0, "rdv"))
        assert len(t.intervals("nic0")) == 2
        assert t.intervals("missing") == []
        assert t.span == (0.0, 3.0)

    def test_overlap_rejected(self):
        t = Timeline()
        t.add("nic0", Interval(0.0, 2.0, "a"))
        with pytest.raises(ConfigurationError):
            t.add("nic0", Interval(1.0, 3.0, "b"))

    def test_busy_fraction(self):
        t = Timeline()
        t.add("a", Interval(0.0, 1.0, "x"))
        t.add("b", Interval(0.0, 4.0, "y"))
        assert t.busy_fraction("a") == pytest.approx(0.25)
        assert t.busy_fraction("b") == pytest.approx(1.0)
        assert t.busy_fraction("missing") == 0.0

    def test_empty_span(self):
        assert Timeline().span == (0.0, 0.0)
        assert Timeline().busy_fraction("x") == 0.0


class TestFromTrace:
    def make_trace(self):
        tracer = TraceRecorder()
        cluster = Cluster(tracer=tracer, seed=1)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        for _ in range(5):
            api.send(flow, 2048)
        cluster.run_until_idle()
        return tracer

    def test_nic_intervals_reconstructed(self):
        timeline = Timeline.from_trace(self.make_trace())
        lanes = timeline.lanes
        assert any("nic" in lane for lane in lanes)
        nic_lane = lanes[0]
        intervals = timeline.intervals(nic_lane)
        assert intervals
        for interval in intervals:
            assert interval.duration > 0
            assert interval.label == "eager"

    def test_busy_fraction_positive(self):
        timeline = Timeline.from_trace(self.make_trace())
        assert timeline.busy_fraction(timeline.lanes[0]) > 0

    def test_empty_trace(self):
        timeline = Timeline.from_trace(TraceRecorder())
        assert timeline.lanes == []


class TestRendering:
    def test_render_contains_lanes_and_marks(self):
        t = Timeline()
        t.add("nic0", Interval(0.0, 1.0, "x"))
        t.add("nic1", Interval(1.0, 2.0, "y"))
        rendered = t.render(width=40)
        assert "nic0" in rendered and "nic1" in rendered
        assert "#" in rendered

    def test_render_empty(self):
        assert Timeline().render() == "(empty timeline)"

    def test_width_validation(self):
        t = Timeline()
        t.add("a", Interval(0.0, 1.0, "x"))
        with pytest.raises(ConfigurationError):
            t.render(width=3)

    def test_render_real_cluster(self):
        tracer = TraceRecorder()
        cluster = Cluster(networks=[("mx", 2)], tracer=tracer, seed=2)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        for _ in range(10):
            api.send(flow, 4096)
        cluster.run_until_idle()
        rendered = Timeline.from_trace(tracer).render()
        assert rendered.count("|") >= 4  # at least two lanes
