"""Tests for repro.util.tracing."""

from repro.util.tracing import NullTracer, TraceRecorder, Tracer


class TestTraceRecorder:
    def test_records_events_in_order(self):
        t = TraceRecorder()
        t.emit(0.0, "nic:0", "nic.start", size=10)
        t.emit(1.0, "nic:0", "nic.idle")
        assert [e.kind for e in t.events] == ["nic.start", "nic.idle"]
        assert t.events[0].detail == {"size": 10}
        assert t.events[1].time == 1.0

    def test_of_kind_filters(self):
        t = TraceRecorder()
        t.emit(0.0, "a", "x")
        t.emit(0.0, "a", "y")
        t.emit(0.0, "b", "x")
        assert len(t.of_kind("x")) == 2
        assert len(t.of_kind("z")) == 0

    def test_kinds_iterator(self):
        t = TraceRecorder()
        t.emit(0.0, "a", "x")
        t.emit(0.0, "a", "x")
        assert list(t.kinds()) == ["x", "x"]

    def test_clear_and_len(self):
        t = TraceRecorder()
        t.emit(0.0, "a", "x")
        assert len(t) == 1
        t.clear()
        assert len(t) == 0

    def test_always_enabled(self):
        assert TraceRecorder().enabled


class TestNullTracer:
    def test_discards(self):
        t = NullTracer()
        t.emit(0.0, "a", "x")
        assert not t.enabled

    def test_subscriber_still_fires(self):
        t = NullTracer()
        seen = []
        t.subscribe(seen.append)
        assert t.enabled
        t.emit(0.5, "a", "x", k=1)
        assert len(seen) == 1
        assert seen[0].detail == {"k": 1}


class TestJsonExport:
    def test_to_jsonl_roundtrip(self):
        import json

        t = TraceRecorder()
        t.emit(1.5, "nic:0", "nic.send", bytes=128, dst="n1")
        t.emit(2.0, "nic:0", "nic.idle")
        lines = t.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "time": 1.5,
            "source": "nic:0",
            "kind": "nic.send",
            "detail": {"bytes": 128, "dst": "n1"},
        }

    def test_envelope_keys_never_clobbered(self):
        import json

        from repro.util.tracing import TraceEvent

        t = TraceRecorder()
        t.record(TraceEvent(1.0, "a", "k", {"time": "bogus", "source": "x", "kind": "y"}))
        parsed = json.loads(t.to_jsonl())
        assert parsed["time"] == 1.0
        assert parsed["source"] == "a"
        assert parsed["kind"] == "k"
        assert parsed["detail"] == {"time": "bogus", "source": "x", "kind": "y"}

    def test_nested_json_values_preserved(self):
        import json

        t = TraceRecorder()
        t.emit(0.0, "a", "k", obj={"nested": 1}, seq=[1, (2, 3)])
        parsed = json.loads(t.to_jsonl())
        assert parsed["detail"]["obj"] == {"nested": 1}
        assert parsed["detail"]["seq"] == [1, [2, 3]]

    def test_non_json_values_coerced(self):
        import json

        t = TraceRecorder()
        t.emit(0.0, "a", "k", obj=object())
        parsed = json.loads(t.to_jsonl())
        assert isinstance(parsed["detail"]["obj"], str)

    def test_empty(self):
        assert TraceRecorder().to_jsonl() == ""


class TestTracerFanOut:
    def test_multiple_subscribers(self):
        t = Tracer()
        a, b = [], []
        t.subscribe(a.append)
        t.subscribe(b.append)
        t.emit(0.0, "s", "k")
        assert len(a) == len(b) == 1
