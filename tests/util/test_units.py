"""Tests for repro.util.units."""

import pytest

from repro.util import units


class TestConstants:
    def test_binary_sizes(self):
        assert units.KiB == 1024
        assert units.MiB == 1024**2
        assert units.GiB == 1024**3

    def test_time_units(self):
        assert units.us == pytest.approx(1e-6)
        assert units.ms == pytest.approx(1e-3)
        assert units.ns == pytest.approx(1e-9)

    def test_rate_units(self):
        # 1 Gbit/s == 125 MB/s
        assert units.gbit_per_s == pytest.approx(125 * units.mb_per_s)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0),
            ("512", 512),
            ("4KiB", 4096),
            ("4k", 4096),
            ("4 KB", 4096),
            ("1MiB", 1024**2),
            ("2m", 2 * 1024**2),
            ("1GiB", 1024**3),
            ("3gb", 3 * 1024**3),
        ],
    )
    def test_valid(self, text, expected):
        assert units.parse_size(text) == expected

    def test_int_passthrough(self):
        assert units.parse_size(12345) == 12345

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            units.parse_size(-1)

    @pytest.mark.parametrize("text", ["", "KiB", "12qux", "x12"])
    def test_malformed(self, text):
        with pytest.raises(ValueError):
            units.parse_size(text)


class TestFormatting:
    def test_format_size_bytes(self):
        assert units.format_size(17) == "17 B"

    def test_format_size_kib(self):
        assert units.format_size(4096) == "4.0 KiB"

    def test_format_size_mib(self):
        assert units.format_size(3 * units.MiB) == "3.0 MiB"

    def test_format_size_gib(self):
        assert units.format_size(2 * units.GiB) == "2.0 GiB"

    def test_format_time_scales(self):
        assert units.format_time(2.0) == "2.000 s"
        assert units.format_time(1.5e-3) == "1.500 ms"
        assert units.format_time(3.0e-6) == "3.000 us"
        assert units.format_time(50e-9) == "50.0 ns"

    def test_format_rate(self):
        assert units.format_rate(250e6) == "250.00 MB/s"
