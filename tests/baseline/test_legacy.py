"""Tests for the deterministic Madeleine-3 baseline engine."""

import pytest

from repro.baseline.legacy import LegacyEngine
from repro.runtime.cluster import Cluster
from repro.util.units import KiB


def legacy_cluster(**kwargs):
    kwargs.setdefault("n_nodes", 2)
    kwargs["engine"] = "legacy"
    return Cluster(**kwargs)


class TestBasicOperation:
    def test_messages_delivered(self):
        c = legacy_cluster()
        api = c.api("n0")
        flow = api.open_flow("n1")
        msgs = [api.send(flow, 128) for _ in range(10)]
        c.run_until_idle()
        assert all(m.completion.done for m in msgs)

    def test_engine_type(self):
        c = legacy_cluster()
        assert isinstance(c.engine("n0"), LegacyEngine)

    def test_rendezvous_completes(self):
        c = legacy_cluster()
        api = c.api("n0")
        flow = api.open_flow("n1")
        big = api.send(flow, 512 * KiB)
        c.run_until_idle()
        assert big.completion.done
        assert c.engine("n0").stats.rdv_parked == 1


class TestDeterministicLimitations:
    def test_no_cross_flow_aggregation(self):
        """Fragments of different flows never share a packet."""
        c = legacy_cluster()
        api = c.api("n0")
        flows = [api.open_flow("n1") for _ in range(6)]
        for f in flows:
            for _ in range(10):
                api.send(f, 64, header_size=16)
        c.run_until_idle()
        # Each message = header + payload of the SAME message: ratio <= 2.
        assert c.engine("n0").stats.aggregation_ratio <= 2.0 + 1e-9

    def test_within_message_aggregation_works(self):
        """The mad3 behaviour: one flush's fragments ride one packet."""
        c = legacy_cluster()
        api = c.api("n0")
        flow = api.open_flow("n1")
        session = api.begin(flow)
        for _ in range(4):
            session.pack(64)
        m = session.flush()
        c.run_until_idle()
        assert m.completion.done
        stats = c.engine("n0").stats
        assert stats.data_packets == 1
        assert stats.data_segments == 4

    def test_rendezvous_blocks_its_channel(self):
        """HOL blocking: traffic on the same flow waits for the rdv."""
        c = legacy_cluster()
        api = c.api("n0")
        flow = api.open_flow("n1")
        big = api.send(flow, 512 * KiB, header_size=0)
        small = api.send(flow, 64, header_size=0)
        c.run_until_idle()
        assert small.completion.value > big.completion.value * 0.9

    def test_optimizer_does_not_block(self):
        """Contrast: the optimizing engine lets the small message pass."""
        c = Cluster(engine="optimizing")
        api = c.api("n0")
        flow = api.open_flow("n1")
        big = api.send(flow, 512 * KiB, header_size=0)
        small = api.send(flow, 64, header_size=0)
        c.run_until_idle()
        assert small.completion.value < big.completion.value / 2

    def test_one_to_one_channels(self):
        c = legacy_cluster()
        api = c.api("n0")
        f1, f2 = api.open_flow("n1"), api.open_flow("n1")
        api.send(f1, 64)
        api.send(f2, 64)
        c.run_until_idle()
        node = c.fabric.node("n0")
        assert len(node.channels) >= 2  # one channel per flow

    def test_static_rail_binding_default(self):
        c = legacy_cluster()
        assert c.engine("n0").config.rail_binding == "static"
        assert c.engine("n0").config.stripe_chunk is None


class TestStalledChannelLiveness:
    def test_protocol_entries_beyond_window_still_flow(self):
        """Regression: a stalled legacy channel with more than
        ``lookahead_window`` data entries queued ahead of the protocol
        traffic must still complete its rendezvous (the protocol-only
        scan ignores the window)."""
        from repro.core.config import EngineConfig

        c = legacy_cluster(
            config=EngineConfig(
                lookahead_window=4, rail_binding="static", stripe_chunk=None
            )
        )
        api0, api1 = c.api("n0"), c.api("n1")
        flow = api0.open_flow("n1")
        back = api1.open_flow("n0")
        big = api0.send(flow, 512 * KiB, header_size=0)  # stalls the channel
        # Bury the reverse direction's protocol traffic behind data:
        # n1's ACK shares channel 0 with n1's own data flow.
        backlog = [api1.send(back, 1 * KiB) for _ in range(30)]
        c.run_until_idle()
        assert big.completion.done
        assert all(m.completion.done for m in backlog)
        assert c.engine("n0").rendezvous_in_flight == 0


class TestHeadToHead:
    """The qualitative comparison the paper's §4 claims rest on."""

    @staticmethod
    def run_multiflow(engine):
        c = Cluster(engine=engine, seed=7)
        api = c.api("n0")
        flows = [api.open_flow("n1") for _ in range(8)]
        for f in flows:
            for _ in range(20):
                api.send(f, 256)
        c.run_until_idle()
        return c.report()

    def test_optimizer_beats_legacy_on_transactions(self):
        legacy = self.run_multiflow("legacy")
        optimized = self.run_multiflow("optimizing")
        assert optimized.network_transactions < legacy.network_transactions / 2

    def test_optimizer_beats_legacy_on_throughput(self):
        legacy = self.run_multiflow("legacy")
        optimized = self.run_multiflow("optimizing")
        assert optimized.throughput > 1.2 * legacy.throughput
