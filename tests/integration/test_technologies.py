"""End-to-end tests per network technology and exotic topologies."""

import pytest

from repro.drivers.registry import make_driver
from repro.core.engine import OptimizingEngine
from repro.madeleine.api import MadAPI
from repro.madeleine.rx import MessageReassembler
from repro.network.fabric import Fabric
from repro.network.technologies import TECHNOLOGIES
from repro.runtime import Cluster
from repro.sim import Simulator
from repro.util.units import KiB, MiB


class TestEachTechnology:
    @pytest.mark.parametrize("tech", sorted(TECHNOLOGIES))
    def test_small_and_large_messages(self, tech):
        cluster = Cluster(networks=[(tech, 1)], seed=1)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        small = [api.send(flow, 256) for _ in range(10)]
        big = api.send(flow, 1 * MiB, header_size=0)
        cluster.run_until_idle()
        assert all(m.completion.done for m in small)
        assert big.completion.done

    def test_tcp_has_no_rendezvous(self):
        """TCP chunks oversized messages instead of negotiating."""
        cluster = Cluster(networks=[("tcp", 1)], seed=1)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        big = api.send(flow, 1 * MiB, header_size=0)
        cluster.run_until_idle()
        assert big.completion.done
        stats = cluster.engine("n0").stats
        assert stats.rdv_parked == 0
        # Chunked into max_aggregate_size pieces.
        assert stats.data_packets >= (1 * MiB) // (64 * KiB)

    def test_ib_uses_rendezvous_earlier_than_mx(self):
        def rdv_count(tech, size):
            cluster = Cluster(networks=[(tech, 1)], seed=1)
            api = cluster.api("n0")
            api.send(api.open_flow("n1"), size, header_size=0)
            cluster.run_until_idle()
            return cluster.engine("n0").stats.rdv_parked

        size = 20 * KiB  # above IB's 16 KiB threshold, below MX's 32 KiB
        assert rdv_count("ib", size) == 1
        assert rdv_count("mx", size) == 0


class TestPartialConnectivity:
    """A node pair reachable only through one of several networks."""

    def build(self):
        sim = Simulator()
        fabric = Fabric(sim)
        mx = fabric.add_network("mx0", TECHNOLOGIES["mx"]())
        elan = fabric.add_network("elan0", TECHNOLOGIES["elan"]())
        hub = fabric.add_node("hub")
        mx_leaf = fabric.add_node("mxleaf")
        elan_leaf = fabric.add_node("elanleaf")
        mx.attach(hub)
        mx.attach(mx_leaf)
        elan.attach(hub)
        elan.attach(elan_leaf)

        engines = {}
        apis = {}
        for node in fabric.nodes:
            drivers = [make_driver(nic) for nic in node.nics]
            engine = OptimizingEngine(sim, node, drivers)
            reassembler = MessageReassembler(sim, node.name)
            node.receiver.register_default_sink(reassembler.sink)
            engines[node.name] = engine
            apis[node.name] = MadAPI(node.name, engine, reassembler)
        return sim, apis, engines

    def test_routes_respect_reachability(self):
        sim, apis, engines = self.build()
        hub = apis["hub"]
        to_mx = hub.open_flow("mxleaf")
        to_elan = hub.open_flow("elanleaf")
        m1 = hub.send(to_mx, 4 * KiB)
        m2 = hub.send(to_elan, 4 * KiB)
        sim.run_until_idle()
        assert m1.completion.done and m2.completion.done
        # Each leaf is only reachable over its own technology.
        hub_node_engines = engines["hub"]
        mx_nic, elan_nic = (
            hub_node_engines.drivers[0].nic,
            hub_node_engines.drivers[1].nic,
        )
        assert mx_nic.link.name == "mx" and elan_nic.link.name == "elan"
        assert mx_nic.stats.requests > 0
        assert elan_nic.stats.requests > 0

    def test_large_transfers_not_striped_across_disjoint_networks(self):
        sim, apis, engines = self.build()
        hub = apis["hub"]
        flow = hub.open_flow("mxleaf")
        big = hub.send(flow, 512 * KiB, header_size=0)
        sim.run_until_idle()
        assert big.completion.done
        elan_nic = engines["hub"].drivers[1].nic
        assert elan_nic.stats.kind_counts.get("rdv_data", 0) == 0


class TestFlowOrderingProperty:
    def test_single_rail_eager_fifo_per_flow(self):
        """On one NIC, eager messages of a flow complete in submit order."""
        cluster = Cluster(seed=7)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        messages = [api.send(flow, 64 + 32 * i) for i in range(30)]
        cluster.run_until_idle()
        completions = [m.completion.value for m in messages]
        assert completions == sorted(completions)

    def test_fifo_holds_under_cross_flow_mixing(self):
        cluster = Cluster(seed=8)
        api = cluster.api("n0")
        flows = [api.open_flow("n1") for _ in range(4)]
        per_flow = {f.flow_id: [] for f in flows}
        for i in range(40):
            flow = flows[i % 4]
            per_flow[flow.flow_id].append(api.send(flow, 128))
        cluster.run_until_idle()
        for messages in per_flow.values():
            completions = [m.completion.value for m in messages]
            assert completions == sorted(completions)
