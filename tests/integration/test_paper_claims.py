"""The paper's claims, one executable test per quoted sentence.

These tests are the reproduction contract in miniature: if one fails,
the corresponding row of EXPERIMENTS.md no longer holds.
"""

import pytest

from repro.core.config import EngineConfig
from repro.middleware import ControlPlaneApp, StreamApp, uniform_small_flows
from repro.network.virtual import TrafficClass
from repro.runtime import Cluster, run_session
from repro.util.tracing import TraceRecorder
from repro.util.units import KiB, us


class TestAbstractClaims:
    def test_optimizations_parameterized_by_driver_capabilities(self):
        """'Optimizations are parameterized by the capabilities of the
        underlying network drivers.'"""
        import dataclasses

        from repro.drivers.mx import MX_CAPABILITIES

        def agg_ratio(caps):
            cluster = Cluster(seed=1, driver_caps={"mx": caps} if caps else None)
            apps = uniform_small_flows(8, size=2 * KiB, count=40, interval=1 * us)
            return run_session(cluster, [a.install for a in apps]).aggregation_ratio

        # Same strategy, different capability envelope, different outcome.
        narrow = dataclasses.replace(MX_CAPABILITIES, max_aggregate_size=4 * KiB)
        assert agg_ratio(narrow) < agg_ratio(None)

    def test_triggered_when_network_cards_become_idle(self):
        """'…are triggered by the network cards when they become idle.'"""
        tracer = TraceRecorder()
        cluster = Cluster(tracer=tracer, seed=1)
        apps = uniform_small_flows(4, size=512, count=30, interval=1 * us)
        run_session(cluster, [a.install for a in apps])
        activations = tracer.of_kind("optimizer.activate")
        idle_triggered = sum(1 for e in activations if e.detail["trigger"] == "idle")
        assert idle_triggered > len(activations) / 2

    def test_strategy_database_easily_extended(self):
        """'The database of predefined strategies can be easily extended.'"""
        from repro.core.strategies import (
            STRATEGY_TYPES,
            AggregationStrategy,
            register_strategy,
        )

        @register_strategy("claim-test")
        class ClaimStrategy(AggregationStrategy):
            pass

        try:
            cluster = Cluster(strategy="claim-test", seed=1)
            message = cluster.api("n0").send(cluster.api("n0").open_flow("n1"), 128)
            cluster.run_until_idle()
            assert message.completion.done
        finally:
            del STRATEGY_TYPES["claim-test"]


class TestSection2Claims:
    def test_one_to_one_mapping_is_a_mere_fallback(self):
        """'…the one-to-one mapping is now only one mere scheduling
        policy … among many other possible ones' — and the pooled
        policies beat it where it matters."""
        from repro.core.channels import OneToOneChannels, PooledChannels

        def control_p99(policy):
            cluster = Cluster(policy=policy, seed=2)
            apps = [
                StreamApp(size=24 * KiB, count=30, interval=2 * us,
                          traffic_class=TrafficClass.BULK, name=f"b{i}")
                for i in range(3)
            ] + [ControlPlaneApp(count=60, interval=4 * us, name="c")]
            report = run_session(cluster, [a.install for a in apps])
            return report.latency_by_class[TrafficClass.CONTROL].p99

        assert control_p99(lambda: PooledChannels(by_class=True)) < control_p99(
            OneToOneChannels
        )

    def test_load_balancing_on_nics_of_multiple_technologies(self):
        """'…dynamic load balancing on multiple resources, multiple
        NICs, or even NICs from multiple technologies.'"""
        cluster = Cluster(
            networks=[("mx", 1), ("elan", 1)],
            seed=2,
            config=EngineConfig(stripe_chunk=32 * KiB),
        )
        api = cluster.api("n0")
        flow = api.open_flow("n1", traffic_class=TrafficClass.BULK)
        big = api.send(flow, 1024 * KiB, header_size=0)
        cluster.run_until_idle()
        assert big.completion.done
        per_rail = [nic.stats.payload_bytes for nic in cluster.fabric.node("n0").nics]
        assert all(b > 0 for b in per_rail), "both technologies must carry bulk"


class TestSection3Claims:
    def test_backlog_accumulates_while_nic_busy(self):
        """'While the NIC is busy sending a packet, the scheduler simply
        accumulates a backlog of packets.'"""
        cluster = Cluster(seed=3)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        api.send(flow, 8 * KiB)  # occupies the NIC
        engine = cluster.engine("n0")
        before = engine.backlog
        for _ in range(5):
            api.send(flow, 128)
        assert engine.backlog == before + 10  # header+payload each
        cluster.run_until_idle()

    def test_wrong_decision_example_avoided(self):
        """§3's example of a wrong decision: 'to send a small packet just
        before another small packet becomes available … incurring two
        network transactions where an aggregated one would have been
        better.'  With a Nagle hold, the two packets merge."""
        from repro.core.strategies import NagleStrategy
        from repro.sim import Process

        cluster = Cluster(
            strategy=lambda: NagleStrategy(),
            config=EngineConfig(nagle_delay=5 * us, nagle_min_bytes=1 * KiB),
            seed=3,
        )
        api = cluster.api("n0")
        flow = api.open_flow("n1")

        def two_sends():
            api.send(flow, 128, header_size=0)
            yield 2 * us  # the second becomes available shortly after
            api.send(flow, 128, header_size=0)

        Process(cluster.sim, two_sends())
        cluster.run_until_idle()
        stats = cluster.engine("n0").stats
        assert stats.data_packets == 1, "the two small packets must merge"

    def test_structured_message_constraints_respected(self):
        """'These message internal dependencies … are taken into account
        as limiting factors — or constraints — by the scheduler.'"""
        from repro.madeleine.message import PackMode

        cluster = Cluster(seed=3)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        session = api.begin(flow)
        session.pack(16, express=True)
        session.pack(512, mode=PackMode.SAFER)
        session.pack(512)
        message = session.flush()
        cluster.run_until_idle()
        assert message.completion.done
        # The SAFER fragment forced its own packet.
        assert cluster.engine("n0").stats.data_packets >= 2


class TestSection4Claims:
    def test_headline_aggregation_gain(self):
        """'the aggregation of eager segments collected from several
        independent communication flows brings huge performance gains.'"""

        def throughput(engine):
            cluster = Cluster(engine=engine, seed=4)
            apps = uniform_small_flows(8, size=256, count=50, interval=1 * us)
            return run_session(cluster, [a.install for a in apps]).throughput

        assert throughput("optimizing") > 2 * throughput("legacy")

    def test_improvements_in_many_cases_never_regression(self):
        """'already exhibits significant improvements over the previous
        software in many cases' — and no regression in the single-flow
        base case."""
        from repro.middleware import PingPongApp

        def rtt(engine):
            cluster = Cluster(engine=engine, seed=4)
            app = PingPongApp(count=20, size=512)
            run_session(cluster, [app.install])
            return sum(app.rtts) / len(app.rtts)

        assert rtt("optimizing") <= rtt("legacy") * 1.05
