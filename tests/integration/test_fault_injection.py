"""Fault-injection tests: corrupted or misrouted wire traffic must be
rejected loudly, never silently absorbed."""

import pytest

from repro.madeleine.message import Flow, Message
from repro.network.wire import PacketKind, WirePacket, WireSegment
from repro.runtime import Cluster
from repro.util.errors import ProtocolError
from repro.util.units import KiB


@pytest.fixture
def cluster():
    return Cluster(seed=9)


def fragment_for(src="n0", dst="n1"):
    flow = Flow("evil", src, dst)
    message = Message(flow)
    fragment = message.add_fragment(1024)
    message.mark_flushed(0.0)
    return fragment


class TestWireFaults:
    def test_replayed_packet_rejected(self, cluster):
        """Delivering the same slice twice is a protocol violation."""
        fragment = fragment_for()
        packet = WirePacket(
            PacketKind.EAGER, "n0", "n1", 0, (WireSegment(fragment, 0, 1024),)
        )
        receiver = cluster.fabric.node("n1").receiver
        receiver.deliver(packet)
        with pytest.raises(ProtocolError, match="replayed|duplicate"):
            receiver.deliver(packet)

    def test_overlapping_slices_rejected(self, cluster):
        fragment = fragment_for()
        receiver = cluster.fabric.node("n1").receiver
        receiver.deliver(
            WirePacket(
                PacketKind.EAGER, "n0", "n1", 0, (WireSegment(fragment, 0, 600),)
            )
        )
        with pytest.raises(ProtocolError):
            receiver.deliver(
                WirePacket(
                    PacketKind.EAGER, "n0", "n1", 0, (WireSegment(fragment, 500, 200),)
                )
            )

    def test_slice_beyond_fragment_rejected(self, cluster):
        fragment = fragment_for()
        receiver = cluster.fabric.node("n1").receiver
        with pytest.raises(ProtocolError):
            receiver.deliver(
                WirePacket(
                    PacketKind.EAGER, "n0", "n1", 0, (WireSegment(fragment, 512, 1024),)
                )
            )

    def test_misrouted_fragment_rejected(self, cluster):
        """A fragment whose flow terminates elsewhere must not be
        absorbed by this node's reassembler."""
        fragment = fragment_for(src="n1", dst="n0")  # terminates at n0, not n1
        receiver = cluster.fabric.node("n1").receiver
        with pytest.raises(ProtocolError):
            receiver.deliver(
                WirePacket(
                    PacketKind.EAGER, "n0", "n1", 0, (WireSegment(fragment, 0, 1024),)
                )
            )

    def test_forged_rdv_ack_rejected(self, cluster):
        receiver = cluster.fabric.node("n0").receiver
        with pytest.raises(ProtocolError, match="unmatched"):
            receiver.deliver(
                WirePacket(PacketKind.RDV_ACK, "n1", "n0", 0, meta={"token": 10**9})
            )

    def test_garbage_payload_rejected(self, cluster):
        receiver = cluster.fabric.node("n1").receiver
        with pytest.raises(ProtocolError, match="non-fragment"):
            receiver.deliver(
                WirePacket(
                    PacketKind.EAGER, "n0", "n1", 0, (WireSegment(b"junk", 0, 4),)
                )
            )


class TestFaultsDoNotCorruptState:
    def test_traffic_continues_after_rejected_packet(self, cluster):
        """A rejected forged packet must not poison subsequent traffic."""
        receiver = cluster.fabric.node("n1").receiver
        fragment = fragment_for()
        packet = WirePacket(
            PacketKind.EAGER, "n0", "n1", 0, (WireSegment(fragment, 0, 1024),)
        )
        receiver.deliver(packet)
        with pytest.raises(ProtocolError):
            receiver.deliver(packet)
        # Legitimate traffic still flows end to end.
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        messages = [api.send(flow, 2 * KiB) for _ in range(5)]
        cluster.run_until_idle()
        assert all(m.completion.done for m in messages)
