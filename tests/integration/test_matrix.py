"""Liveness matrix: every strategy × channel policy × engine feature
combination must deliver a mixed workload (eager + rendezvous + control)
completely."""

import pytest

from repro.core.adaptive import AdaptiveChannels
from repro.core.channels import OneToOneChannels, PooledChannels, WeightedChannels
from repro.core.config import EngineConfig
from repro.network.virtual import TrafficClass
from repro.runtime import Cluster
from repro.util.units import KiB, us

STRATEGIES = ["eager", "aggregate", "search", "nagle", "auto"]
POLICIES = {
    "pooled": lambda: PooledChannels(by_class=True),
    "shared": lambda: PooledChannels(by_class=False),
    "one-to-one": OneToOneChannels,
    "weighted": WeightedChannels,
    "adaptive": AdaptiveChannels,
}


def mixed_workload(cluster):
    api = cluster.api("n0")
    messages = []
    control = api.open_flow("n1", traffic_class=TrafficClass.CONTROL)
    bulk = api.open_flow("n1", traffic_class=TrafficClass.BULK)
    default_flows = [api.open_flow("n1") for _ in range(3)]
    for _ in range(10):
        messages.append(api.send(control, 32, header_size=0))
        for flow in default_flows:
            messages.append(api.send(flow, 512))
    messages.append(api.send(bulk, 128 * KiB, header_size=0))  # rendezvous
    return messages


class TestStrategyPolicyMatrix:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_combination_delivers_everything(self, strategy, policy_name):
        config = EngineConfig(nagle_delay=4 * us, nagle_min_bytes=1 * KiB)
        cluster = Cluster(
            strategy=strategy,
            policy=POLICIES[policy_name],
            config=config,
            seed=13,
        )
        messages = mixed_workload(cluster)
        cluster.run_until_idle()
        missing = [m.message_id for m in messages if not m.completion.done]
        assert missing == [], f"{strategy}/{policy_name} lost {len(missing)} messages"
        assert cluster.engine("n0").backlog == 0
        assert cluster.engine("n0").rendezvous_in_flight == 0

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_strategies_on_multirail(self, strategy):
        cluster = Cluster(
            networks=[("mx", 2)],
            strategy=strategy,
            config=EngineConfig(stripe_chunk=32 * KiB),
            seed=13,
        )
        messages = mixed_workload(cluster)
        cluster.run_until_idle()
        assert all(m.completion.done for m in messages)

    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_policies_on_legacy_engine(self, policy_name):
        cluster = Cluster(
            engine="legacy", policy=POLICIES[policy_name], seed=13
        )
        messages = mixed_workload(cluster)
        cluster.run_until_idle()
        assert all(m.completion.done for m in messages)
