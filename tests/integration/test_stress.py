"""Moderate-scale stress: conservation and stability at 10k+ messages."""

import pytest

from repro.middleware import uniform_small_flows
from repro.network.virtual import TrafficClass
from repro.runtime import Cluster, run_session
from repro.util.units import KiB, us


class TestStress:
    def test_ten_thousand_messages_conserved(self):
        cluster = Cluster(seed=99)
        apps = uniform_small_flows(16, size=200, count=625, interval=1 * us)
        report = run_session(cluster, [a.install for a in apps])
        assert report.messages == 16 * 625
        # 200 B payload + 16 B express header per message.
        assert report.total_bytes == 16 * 625 * 216
        assert cluster.engine("n0").backlog == 0
        assert cluster.reassemblers["n1"].incomplete_messages == 0

    def test_sustained_mixed_load_with_rendezvous(self):
        cluster = Cluster(n_nodes=3, seed=99)
        api = cluster.api("n0")
        messages = []
        flows = {
            "n1": api.open_flow("n1"),
            "n2": api.open_flow("n2"),
        }
        bulk = api.open_flow("n1", traffic_class=TrafficClass.BULK)
        for i in range(2000):
            messages.append(api.send(flows["n1" if i % 2 else "n2"], 300))
            if i % 100 == 0:
                messages.append(api.send(bulk, 256 * KiB, header_size=0))
        cluster.run_until_idle()
        assert all(m.completion.done for m in messages)
        stats = cluster.engine("n0").stats
        assert stats.rdv_parked == 20
        assert stats.rdv_ready == 20

    def test_event_count_scales_roughly_linearly(self):
        """Events per message stay bounded (no quadratic blow-up)."""

        def events_per_message(n_messages):
            cluster = Cluster(seed=1)
            api = cluster.api("n0")
            flow = api.open_flow("n1")
            for _ in range(n_messages):
                api.send(flow, 256, header_size=0)
            cluster.run_until_idle()
            return cluster.sim.events_processed / n_messages

        small = events_per_message(200)
        large = events_per_message(2000)
        assert large < small * 2.0
