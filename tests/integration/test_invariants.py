"""System-level property tests.

These are the invariants the whole library rests on, checked under
randomly generated workloads and configurations:

1. **Liveness** — every submitted message eventually completes, on any
   engine/strategy/policy combination.
2. **Byte conservation** — exactly the submitted payload bytes arrive,
   never more (the reassembler separately rejects duplicates).
3. **Completion timestamps** are never before submission and never after
   the drain time.
4. **Determinism** — a seed fully determines the outcome.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import EngineConfig
from repro.madeleine.message import PackMode
from repro.network.virtual import TrafficClass
from repro.runtime.cluster import Cluster
from repro.util.units import KiB, us

ENGINES = ["optimizing", "legacy"]
STRATEGIES = ["aggregate", "eager", "search", "nagle"]


@st.composite
def workload(draw):
    """A random multi-flow workload description."""
    n_flows = draw(st.integers(min_value=1, max_value=5))
    flows = []
    for i in range(n_flows):
        n_messages = draw(st.integers(min_value=1, max_value=6))
        messages = []
        for _ in range(n_messages):
            n_fragments = draw(st.integers(min_value=1, max_value=3))
            fragments = [
                (
                    draw(st.integers(min_value=1, max_value=64 * KiB)),
                    draw(st.sampled_from(list(PackMode))),
                    draw(st.booleans()),
                )
                for _ in range(n_fragments)
            ]
            messages.append(fragments)
        traffic_class = draw(st.sampled_from(list(TrafficClass)))
        flows.append((traffic_class, messages))
    return flows


def submit_workload(cluster, flows):
    api = cluster.api("n0")
    submitted = []
    total_bytes = 0
    for traffic_class, messages in flows:
        flow = api.open_flow("n1", traffic_class=traffic_class)
        for fragments in messages:
            session = api.begin(flow)
            for size, mode, express in fragments:
                session.pack(size, mode=mode, express=express)
                total_bytes += size
            submitted.append(session.flush())
    return submitted, total_bytes


class TestLivenessAndConservation:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        flows=workload(),
        engine=st.sampled_from(ENGINES),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_every_message_completes_exactly_once(self, flows, engine, seed):
        cluster = Cluster(engine=engine, seed=seed)
        submitted, total_bytes = submit_workload(cluster, flows)
        cluster.run_until_idle()

        assert all(m.completion.done for m in submitted)
        report = cluster.report()
        assert report.messages == len(submitted)
        assert report.total_bytes == total_bytes
        # Receiver-side accounting agrees.
        assert cluster.reassemblers["n1"].messages_completed == len(submitted)
        assert cluster.reassemblers["n1"].incomplete_messages == 0
        # Engine waiting lists fully drained, no rdv leaks.
        assert cluster.engine("n0").backlog == 0
        assert cluster.engine("n0").rendezvous_in_flight == 0

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(flows=workload(), strategy=st.sampled_from(STRATEGIES))
    def test_all_strategies_are_live(self, flows, strategy):
        config = EngineConfig(nagle_delay=5 * us, nagle_min_bytes=1 * KiB)
        cluster = Cluster(strategy=strategy, config=config)
        submitted, _ = submit_workload(cluster, flows)
        cluster.run_until_idle()
        assert all(m.completion.done for m in submitted)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(flows=workload())
    def test_multirail_heterogeneous_live(self, flows):
        cluster = Cluster(networks=[("mx", 1), ("elan", 1)])
        submitted, total = submit_workload(cluster, flows)
        cluster.run_until_idle()
        assert all(m.completion.done for m in submitted)
        assert cluster.report().total_bytes == total

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(flows=workload(), engine=st.sampled_from(ENGINES))
    def test_timestamps_sane(self, flows, engine):
        cluster = Cluster(engine=engine)
        submitted, _ = submit_workload(cluster, flows)
        end = cluster.run_until_idle()
        for m in submitted:
            assert m.submit_time is not None
            assert m.submit_time <= m.completion.value <= end

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(flows=workload(), seed=st.integers(min_value=0, max_value=100))
    def test_determinism(self, flows, seed):
        def run():
            cluster = Cluster(seed=seed)
            submitted, _ = submit_workload(cluster, flows)
            cluster.run_until_idle()
            return [m.completion.value for m in submitted]

        assert run() == run()


class TestWindowSweepLiveness:
    @pytest.mark.parametrize("window", [1, 2, 8, 64])
    def test_any_window_is_live(self, window):
        cluster = Cluster(config=EngineConfig(lookahead_window=window))
        api = cluster.api("n0")
        flows = [api.open_flow("n1") for _ in range(4)]
        messages = [api.send(f, 256) for f in flows for _ in range(10)]
        cluster.run_until_idle()
        assert all(m.completion.done for m in messages)


class TestManyNodes:
    def test_all_to_all(self):
        cluster = Cluster(n_nodes=4)
        messages = []
        for src in cluster.node_names:
            api = cluster.api(src)
            for dst in cluster.node_names:
                if src == dst:
                    continue
                flow = api.open_flow(dst)
                messages.extend(api.send(flow, 512) for _ in range(3))
        cluster.run_until_idle()
        assert all(m.completion.done for m in messages)
        assert cluster.report().messages == len(messages)
