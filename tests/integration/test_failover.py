"""End-to-end robustness: lossy runs complete via retransmission, rail
outages trigger failover, same-seed fault counters reproduce, and
rendezvous handshakes degrade to eager chunking on timeout."""

import pytest

from repro.core.config import EngineConfig
from repro.network.virtual import TrafficClass
from repro.runtime import Cluster
from repro.util.units import KiB

FAULTS = {
    "drop": 0.05,
    "seed": 13,
    "outages": [{"nic": "n0.mx00", "at": 2e-5, "recover": 4e-4}],
    "reliability": {"max_retries": 16},
}


def drive(cluster, n_messages=40, size=4 * KiB):
    """Deterministic hand-driven workload: n0 -> n1 bulk sends at t=0."""
    api = cluster.api("n0")
    flow = api.open_flow("n1", traffic_class=TrafficClass.BULK)
    messages = [api.send(flow, size) for _ in range(n_messages)]
    cluster.run_until_idle()
    return messages


class TestLossyRun:
    def test_completes_with_retransmits_and_failover(self):
        cluster = Cluster(networks=[("mx", 2)], seed=3, faults=FAULTS)
        messages = drive(cluster)
        assert all(m.completion.done for m in messages)
        report = cluster.report()
        assert report.messages == len(messages)
        assert report.packets_dropped > 0
        assert report.retransmits > 0
        assert report.failovers > 0

    def test_same_seed_reproduces_fault_counters(self):
        def counters():
            cluster = Cluster(networks=[("mx", 2)], seed=3, faults=FAULTS)
            drive(cluster)
            report = cluster.report()
            return (
                report.messages,
                report.packets_dropped,
                report.packets_duplicated,
                report.retransmits,
                report.failovers,
            )

        assert counters() == counters()

    def test_single_rail_outage_recovers_without_failover_target(self):
        """With one rail, traffic stalls through the outage and resumes
        after recovery — no surviving NIC to fail over to."""
        faults = {
            "seed": 5,
            "outages": [{"nic": "n0.mx00", "at": 2e-5, "recover": 3e-4}],
            "reliability": {"max_retries": 16, "rto": 1e-4},
        }
        cluster = Cluster(networks=[("mx", 1)], seed=3, faults=faults)
        messages = drive(cluster, n_messages=10)
        assert all(m.completion.done for m in messages)

    def test_duplicate_storm_delivers_each_message_once(self):
        cluster = Cluster(
            networks=[("mx", 1)], seed=7, faults={"duplicate": 0.5, "seed": 7}
        )
        api = cluster.api("n0")
        flow = api.open_flow("n1", traffic_class=TrafficClass.CONTROL)
        messages = []
        for i in range(40):  # spaced so aggregation cannot merge them all
            cluster.sim.at(i * 2e-6, lambda: messages.append(api.send(flow, 256)))
        cluster.run_until_idle()
        assert all(m.completion.done for m in messages)
        report = cluster.report()
        assert report.messages == 40
        assert report.packets_duplicated > 0
        assert cluster.transport.stats.dups_discarded > 0


class TestLosslessUnchanged:
    def test_no_faults_block_means_no_transport(self):
        cluster = Cluster(seed=3)
        assert cluster.fault_plane is None and cluster.transport is None
        drive(cluster, n_messages=5)
        report = cluster.report()
        assert report.retransmits == 0
        assert report.packets_dropped == 0
        assert report.failovers == 0
        assert report.rdv_timeouts == 0

    def test_report_row_keys_stable(self):
        cluster = Cluster(seed=3)
        drive(cluster, n_messages=3)
        row = cluster.report().row()
        # Fault counters ride along in every row (zero on lossless runs)
        # so cross-scenario tables keep a fixed schema.
        assert row["retransmits"] == 0
        assert row["failovers"] == 0
        assert row["dropped"] == 0


class TestRendezvousTimeout:
    @pytest.mark.parametrize("engine", ["optimizing", "legacy"])
    def test_times_out_and_falls_back_to_eager(self, engine):
        cluster = Cluster(
            engine=engine,
            seed=3,
            config=EngineConfig(rdv_timeout=1e-9),
        )
        api = cluster.api("n0")
        flow = api.open_flow("n1", traffic_class=TrafficClass.BULK)
        message = api.send(flow, 256 * KiB)
        cluster.run_until_idle()
        assert message.completion.done
        assert cluster.engine("n0").stats.rdv_timeouts >= 1
        assert cluster.report().rdv_timeouts >= 1

    def test_generous_timeout_never_fires(self):
        cluster = Cluster(seed=3, config=EngineConfig(rdv_timeout=1.0))
        api = cluster.api("n0")
        flow = api.open_flow("n1", traffic_class=TrafficClass.BULK)
        message = api.send(flow, 256 * KiB)
        cluster.run_until_idle()
        assert message.completion.done
        assert cluster.engine("n0").stats.rdv_timeouts == 0
        assert cluster.engine("n0").stats.rdv_parked >= 1
