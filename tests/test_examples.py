"""Smoke tests: every shipped example must run clean.

The examples are a deliverable; running them in-process (monkeypatched
``__main__``-style) keeps them from rotting as the API evolves.
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLE_SCRIPTS}
        assert {"quickstart.py", "middleware_mix.py", "heterogeneous_rails.py"} <= names
        assert len(EXAMPLE_SCRIPTS) >= 3

    @pytest.mark.parametrize(
        "script", EXAMPLE_SCRIPTS, ids=[p.stem for p in EXAMPLE_SCRIPTS]
    )
    def test_example_runs(self, script, capsys):
        runpy.run_path(str(script), run_name="__main__")
        out = capsys.readouterr().out
        assert out.strip(), f"{script.name} produced no output"

    def test_scenario_file_valid(self):
        from repro.runtime.scenario import build_scenario, load_scenario_file

        scenario = load_scenario_file(EXAMPLES_DIR / "scenario_mixed.json")
        cluster, apps = build_scenario(scenario)
        assert len(apps) >= 5

    def test_quickstart_via_subprocess(self):
        """One example through a real interpreter (import paths, shebang)."""
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "aggregation ratio" in result.stdout
