"""End-to-end tests: real peer processes over a loopback socket mesh.

These spawn OS processes (the same path ``python -m repro live run``
takes), so counts are small and every run carries a hard wall-clock
timeout — a hung mesh fails the test rather than the suite.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.live import run_live_scenario
from repro.runtime.metrics import SessionReport
from repro.util.errors import ConfigurationError

_TIMEOUT = 30.0


def _scenario(workloads):
    return {
        "name": "live-test",
        "cluster": {
            "n_nodes": 2,
            "networks": [["mx", 1]],
            "engine": "optimizing",
            "strategy": "aggregate",
            "seed": 0,
        },
        "workloads": workloads,
    }


class TestValidation:
    def test_bad_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            run_live_scenario(_scenario([]), transport="carrier-pigeon")

    def test_single_node_rejected(self):
        scenario = _scenario([])
        scenario["cluster"]["n_nodes"] = 1
        with pytest.raises(ConfigurationError):
            run_live_scenario(scenario)

    def test_bad_faults_block_rejected(self):
        # Live runs accept "faults" (chaos), but the block is parsed
        # before any peer is spawned: sim-only and unknown keys fail
        # fast at the coordinator.
        scenario = _scenario([])
        scenario["faults"] = {"per_nic": {"n0.mx00": {"drop": 0.1}}}
        with pytest.raises(ConfigurationError):
            run_live_scenario(scenario)
        scenario["faults"] = {"dropp": 0.1}
        with pytest.raises(ConfigurationError):
            run_live_scenario(scenario)

    def test_die_rank_out_of_range_rejected(self):
        scenario = _scenario([])
        scenario["faults"] = {"die": {"rank": 9, "after": 0.1}}
        with pytest.raises(ConfigurationError):
            run_live_scenario(scenario)


class TestPingPong:
    def test_uds_roundtrips_byte_identical(self):
        result = run_live_scenario(
            _scenario(
                [{"app": "pingpong", "src": "n0", "dst": "n1", "size": 64, "count": 5}]
            ),
            timeout=_TIMEOUT,
        )
        report = result.report
        assert isinstance(report, SessionReport)
        assert report.messages == 10  # 5 pings + 5 pongs
        # Each app message is payload + a 16-byte express header.
        assert report.total_bytes == 10 * (64 + 16)
        assert result.bytes_verified == report.total_bytes
        assert result.corrupt_slices == 0
        assert len(result.rtts) == 5
        assert all(rtt > 0 for rtt in result.rtts)
        # Receiver-side records: pings complete at n1, pongs at n0.
        assert {r.dst for r in result.records} == {"n0", "n1"}
        assert all(r.complete_time >= r.submit_time for r in result.records)

    def test_tcp_transport(self):
        result = run_live_scenario(
            _scenario(
                [{"app": "pingpong", "src": "n0", "dst": "n1", "size": 32, "count": 3}]
            ),
            transport="tcp",
            timeout=_TIMEOUT,
        )
        assert result.report.messages == 6
        assert result.corrupt_slices == 0
        assert result.bytes_verified == result.report.total_bytes


class TestAggregation:
    def test_multiflow_coalesces(self):
        result = run_live_scenario(
            _scenario(
                [
                    {"app": "stream", "src": "n0", "dst": "n1", "size": size,
                     "count": 10, "interval": 0.0}
                    for size in (512, 256, 128)
                ]
            ),
            timeout=_TIMEOUT,
        )
        report = result.report
        assert report.messages == 30
        # payload + 16-byte express header per message
        assert report.total_bytes == 10 * (512 + 256 + 128 + 3 * 16)
        assert result.bytes_verified == report.total_bytes
        assert result.corrupt_slices == 0
        # The point of the whole exercise: backlog accumulated while the
        # socket drained, and the unmodified engine coalesced it.
        assert report.aggregation_ratio > 1.0
        assert report.data_packets < 30

    def test_trace_carries_decisions(self):
        result = run_live_scenario(
            _scenario(
                [{"app": "stream", "src": "n0", "dst": "n1", "size": 256,
                  "count": 5, "interval": 0.0}]
            ),
            trace=True,
            timeout=_TIMEOUT,
        )
        kinds = {e["kind"] for e in result.trace_events}
        assert "nic.send" in kinds
        assert "nic.idle" in kinds
        times = [e["time"] for e in result.trace_events]
        assert times == sorted(times)


class TestCli:
    def test_live_run_json(self, tmp_path):
        scenario_path = tmp_path / "s.json"
        scenario_path.write_text(
            json.dumps(
                _scenario(
                    [{"app": "pingpong", "src": "n0", "dst": "n1",
                      "size": 64, "count": 3}]
                )
            )
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "live", "run", str(scenario_path),
             "--json", "--timeout", "30"],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        payload = json.loads(proc.stdout)
        assert payload["scenario"] == "live-test"
        assert payload["report"]["messages"] == 6
        assert payload["bytes_verified"] == payload["report"]["total_bytes"]
        assert payload["corrupt_slices"] == 0
        assert payload["rtt_samples"] == 3
        # Tail telemetry rides the payload; no tracing means the tail
        # families exist but stay empty.
        assert payload["tails"]["edges"] == {}
        assert payload["tails"]["rails"] == {}
        assert payload["report"]["latency_p99_us"] is None
