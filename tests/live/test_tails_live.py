"""Live-plane tail telemetry: corrected edge sketches, /tails, hints.

One traced 2-peer UDS run (with an SLO block) is shared across the
assertions; a second run polls the in-flight ``/tails`` endpoint.
"""

from __future__ import annotations

import json
import math
import threading
import time
import urllib.request

import pytest

from repro.live import run_live_scenario
from repro.obs.analyze import analyze_events

_TIMEOUT = 30.0


def _scenario(count=12):
    return {
        "name": "tails-live",
        "cluster": {
            "n_nodes": 2,
            "networks": [["mx", 1]],
            "engine": "optimizing",
            "strategy": "aggregate",
            "seed": 0,
        },
        "workloads": [
            {"app": "pingpong", "src": "n0", "dst": "n1", "size": 64,
             "count": count},
        ],
    }


_OBS = {
    "trace": True,
    "slo": [
        {"name": "wire-fast", "edge": "*", "threshold_us": 1e6,
         "target": 0.99, "windows": [0.5, 2.0]},
    ],
}


@pytest.fixture(scope="module")
def traced_run():
    return run_live_scenario(_scenario(), timeout=_TIMEOUT, observability=_OBS)


class TestPostRunTails:
    def test_every_edge_has_nonzero_p99(self, traced_run):
        edges = traced_run.tails["edges"]
        # Ping-pong traffic flows both ways; each direction is an edge.
        assert set(edges) == {"n0->n1", "n1->n0"}
        for stats in edges.values():
            assert stats["count"] > 0
            assert stats["p999_us"] >= stats["p99_us"] >= stats["p50_us"] > 0

    def test_edges_were_offset_corrected(self, traced_run):
        assert traced_run.tails["edges_offset_corrected"] == 2
        # Post-run snapshots are corrected; only mid-run ones carry the
        # raw-clock disclaimer.
        assert "note" not in traced_run.tails

    def test_rails_and_messages_present(self, traced_run):
        assert traced_run.tails["rails"]
        assert set(traced_run.tails["messages"]) == {"n0", "n1"}

    def test_slo_verdicts_attached(self, traced_run):
        statuses = traced_run.tails["slo"]
        # One verdict per matching edge for the single "*" objective.
        assert {s["edge"] for s in statuses} == {"n0->n1", "n1->n0"}
        for status in statuses:
            assert status["objective"] == "wire-fast"
            assert "cumulative" in status["burn"]
            # Loopback one-way latency is far below the 1s threshold.
            assert status["violated"] is False

    def test_report_tail_columns_fed_from_sketches(self, traced_run):
        report = traced_run.report
        assert not math.isnan(report.latency_p99_us)
        assert report.latency_p999_us >= report.latency_p99_us > 0

    def test_sketch_p99_matches_exact_within_rank_error(self, traced_run):
        """The corrected sketch and the offline analysis see the *same*
        crossing samples (same offsets, same clamp), so the sketch's p99
        must land within its documented rank-error window of the exact
        sorted-list quantile."""
        analysis = analyze_events(traced_run.aligned_events)
        for edge_name, stats in traced_run.tails["edges"].items():
            exact = analysis.edges[edge_name]
            assert exact.count == stats["count"]
            ordered = sorted(v * 1e6 for v in exact.latencies)
            n = len(ordered)
            for q, key in ((0.5, "p50_us"), (0.99, "p99_us")):
                # Sketches with n <= k are exact up to rank 1/n; allow
                # one extra rank of slack for interpolation differences.
                bound = 2.0 / n + 1.0 / 64.0
                lo = ordered[max(math.ceil((q - bound) * n) - 1, 0)]
                hi = ordered[min(math.ceil((q + bound) * n), n) - 1]
                assert lo - 1e-3 <= stats[key] <= hi + 1e-3, (
                    f"{edge_name} {key}: {stats[key]} outside "
                    f"[{lo}, {hi}] (n={n})"
                )

    def test_decides_carry_rail_tail_hints(self, traced_run):
        decides = [
            e for e in traced_run.trace_events
            if e["kind"] == "optimizer.decide"
        ]
        assert decides
        hints = [
            e["detail"]["tail_hint"] for e in decides
            if "tail_hint" in e["detail"]
        ]
        # Edge sketches live at the *receiver*, so a sender's hint is
        # rail-only on the live plane — but it must be there.
        assert hints
        assert all("rail_p99_us" in h and h["rail_n"] >= 1 for h in hints)


class TestLiveTailsEndpoint:
    def test_tails_served_during_run(self):
        port = 19632
        grabbed: dict[str, object] = {}

        def poll():
            deadline = time.time() + _TIMEOUT
            while time.time() < deadline and "tails" not in grabbed:
                try:
                    with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/tails", timeout=1
                    ) as resp:
                        payload = json.loads(resp.read())
                    edges = payload.get("edges") or {}
                    if edges and all(e["p99_us"] > 0 for e in edges.values()):
                        grabbed["tails"] = payload
                except OSError:
                    time.sleep(0.005)

        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
        result = run_live_scenario(
            _scenario(count=40), timeout=_TIMEOUT,
            observability=_OBS, serve=f"127.0.0.1:{port}",
        )
        poller.join(timeout=5)
        assert result.report.messages == 80
        assert "tails" in grabbed, "/tails never answered with edge data"
        payload = grabbed["tails"]
        assert payload["note"].startswith("mid-run")
        assert payload["slo"][0]["objective"] == "wire-fast"
