"""Fault-tolerance integration: real peer processes under chaos.

The two acceptance scenarios of the live failure model:

* a peer SIGKILLed mid-run yields a clean ``degraded`` report within
  the deadline, with the survivors' flows fully delivered;
* seeded wire loss + periodic hard disconnects still complete
  byte-identical, with the retransmit layer visibly doing the work.
"""

import pytest

from repro.live import run_live_scenario

_TIMEOUT = 45.0


def _scenario(n_nodes, workloads, faults):
    return {
        "name": "chaos-test",
        "cluster": {
            "n_nodes": n_nodes,
            "networks": [["mx", 1]],
            "engine": "optimizing",
            "strategy": "aggregate",
            "seed": 0,
        },
        "workloads": workloads,
        "faults": faults,
    }


class TestPeerDeath:
    def test_sigkill_mid_run_degrades_cleanly(self):
        # n0 streams to both peers; rank 2 kills itself mid-stream.
        # The run must still end (within the deadline, enforced by
        # run_live_scenario itself) with the n0->n1 flow complete.
        count = 60
        result = run_live_scenario(
            _scenario(
                3,
                [
                    {"app": "stream", "src": "n0", "dst": "n1", "size": 128,
                     "count": count, "interval": 0.01, "jitter": False},
                    {"app": "stream", "src": "n0", "dst": "n2", "size": 128,
                     "count": count, "interval": 0.01, "jitter": False},
                ],
                {"die": {"rank": 2, "after": 0.2},
                 "heartbeat": {"interval": 0.1, "misses": 4}},
            ),
            timeout=_TIMEOUT,
        )
        report = result.report
        assert report.degraded
        assert len(result.dead_peers) == 1
        dead = result.dead_peers[0]
        assert dead.rank == 2 and dead.node == "n2"
        assert dead.reason in ("exit", "control", "heartbeat")
        assert dead.time_to_detect >= 0.0
        # The surviving flow delivered everything; n2's receiver-side
        # records died with it, so the merge sees exactly n1's view.
        assert report.messages == count
        assert result.corrupt_slices == 0
        # Survivors abandoned the in-flight messages to the dead peer.
        assert report.lost_messages > 0
        n0 = next(p for p in result.peer_reports if p["node"] == "n0")
        assert n0["transport"]["abandoned"] == report.lost_messages
        assert "n2" in n0["transport"]["dead"]

    def test_dead_peer_metrics_reach_cluster_registry(self):
        result = run_live_scenario(
            _scenario(
                2,
                [{"app": "stream", "src": "n0", "dst": "n1", "size": 64,
                  "count": 40, "interval": 0.01, "jitter": False}],
                {"die": {"rank": 1, "after": 0.15},
                 "heartbeat": {"interval": 0.1, "misses": 4}},
            ),
            timeout=_TIMEOUT,
        )
        assert result.report.degraded
        assert result.cluster_registry is not None
        text = result.cluster_registry.to_prometheus()
        assert "repro_peer_deaths_total" in text
        assert 'peer="coordinator"' in text


class TestWireChaos:
    def test_drop_and_disconnect_complete_byte_identical(self):
        # 5% seeded drop + a hard disconnect every 40 records: the
        # reliability envelope retransmits through it all and every
        # delivered byte still matches the deterministic pattern.
        count = 30
        result = run_live_scenario(
            _scenario(
                2,
                [{"app": "pingpong", "src": "n0", "dst": "n1", "size": 64,
                  "count": count}],
                {"drop": 0.05, "disconnect": {"every": 40}, "seed": 7,
                 "reliability": {"max_retries": 12, "rto": 0.05,
                                 "backoff": 1.5}},
            ),
            timeout=_TIMEOUT,
        )
        report = result.report
        assert not report.degraded
        assert report.lost_messages == 0
        assert report.messages == 2 * count  # pings + pongs
        assert report.total_bytes == 2 * count * (64 + 16)
        assert result.bytes_verified == report.total_bytes
        assert result.corrupt_slices == 0
        assert len(result.rtts) == count
        # Chaos visibly happened and was visibly recovered from.
        retransmits = sum(
            p["transport"]["retransmits"] for p in result.peer_reports
        )
        assert retransmits > 0
        assert report.retransmits == retransmits
        assert report.packets_dropped > 0
        exhausted = sum(p["transport"]["exhausted"] for p in result.peer_reports)
        assert exhausted == 0

    def test_corruption_detected_and_retransmitted(self):
        count = 20
        result = run_live_scenario(
            _scenario(
                2,
                [{"app": "pingpong", "src": "n0", "dst": "n1", "size": 64,
                  "count": count}],
                {"corrupt": 0.05, "seed": 11,
                 "reliability": {"max_retries": 12, "rto": 0.05}},
            ),
            timeout=_TIMEOUT,
        )
        report = result.report
        assert report.messages == 2 * count
        assert result.bytes_verified == report.total_bytes
        # Wire-level flips never reach the payload: the CRC catches
        # them at the framing layer.
        assert result.corrupt_slices == 0
        corrupt_frames = sum(
            p["transport"]["corrupt_frames"] for p in result.peer_reports
        )
        assert corrupt_frames > 0
        assert report.packets_corrupted > 0

    def test_chaos_decisions_are_seed_deterministic(self):
        # Same scenario, same seed: the *injected fault counts* agree
        # run-to-run even though socket timing differs.
        scenario = _scenario(
            2,
            [{"app": "pingpong", "src": "n0", "dst": "n1", "size": 64,
              "count": 10}],
            {"drop": 0.1, "seed": 23,
             "reliability": {"max_retries": 12, "rto": 0.05}},
        )
        runs = [run_live_scenario(scenario, timeout=_TIMEOUT) for _ in range(2)]
        chaos = [
            {p["node"]: p["chaos"]["judged"] for p in r.peer_reports}
            for r in runs
        ]
        # Retransmissions re-enter the lottery, so judged counts can
        # differ; the verdict *sequence* per link is identical, which
        # shows up as identical drop decisions for identical draws.
        for r in runs:
            assert r.report.messages == 20
            assert r.bytes_verified == r.report.total_bytes
        assert chaos[0].keys() == chaos[1].keys()
