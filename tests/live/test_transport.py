"""Unit tests for the live plane's framing, payloads, clock and mirror."""

import asyncio
import time

import pytest

from repro.live.loop import LiveClock
from repro.live.transport import (
    MAX_FRAME_BYTES,
    MirrorReceiver,
    StreamDecoder,
    done_frame,
    encode_live_packet,
    fragment_seed,
    hello_frame,
    live_ctrl_kind,
    payload_bytes,
    wrap_frame,
)
from repro.madeleine.message import Flow, Message
from repro.network.wire import PacketKind, WirePacket, WireSegment, encode_frame
from repro.util.errors import ProtocolError, SimulationError, WireError


def _ctrl_frame(meta=None):
    return encode_frame(PacketKind.CTRL, "n0", "n1", 0, meta or {})


class TestStreamFraming:
    def test_roundtrip_one_frame(self):
        decoder = StreamDecoder()
        frames = decoder.feed(wrap_frame(_ctrl_frame({"k": 1})))
        assert len(frames) == 1
        assert frames[0].meta == {"k": 1}
        assert decoder.buffered == 0

    def test_partial_reads_any_boundary(self):
        wire = wrap_frame(_ctrl_frame({"a": 1})) + wrap_frame(_ctrl_frame({"a": 2}))
        # Feed one byte at a time: no boundary assumption may survive this.
        decoder = StreamDecoder()
        out = []
        for i in range(len(wire)):
            out.extend(decoder.feed(wire[i : i + 1]))
        assert [f.meta["a"] for f in out] == [1, 2]
        assert decoder.buffered == 0

    def test_split_inside_length_prefix(self):
        wire = wrap_frame(_ctrl_frame())
        decoder = StreamDecoder()
        assert decoder.feed(wire[:2]) == []
        assert decoder.buffered == 2
        frames = decoder.feed(wire[2:])
        assert len(frames) == 1

    def test_many_frames_one_chunk(self):
        wire = b"".join(wrap_frame(_ctrl_frame({"i": i})) for i in range(5))
        frames = StreamDecoder().feed(wire)
        assert [f.meta["i"] for f in frames] == [0, 1, 2, 3, 4]

    def test_oversized_declared_length_rejected(self):
        import struct

        decoder = StreamDecoder()
        with pytest.raises(WireError):
            decoder.feed(struct.pack("!I", MAX_FRAME_BYTES + 1))

    def test_oversized_frame_rejected_on_wrap(self):
        with pytest.raises(WireError):
            wrap_frame(b"\0" * (MAX_FRAME_BYTES + 1))

    def test_corrupt_payload_raises_from_codec(self):
        wire = bytearray(wrap_frame(_ctrl_frame({"k": 1})))
        wire[-1] ^= 0xFF  # flip a bit inside the codec frame
        with pytest.raises(WireError):
            StreamDecoder().feed(bytes(wire))


class TestPayloadPattern:
    def test_deterministic(self):
        seed = fragment_seed("n0", 7, 0)
        assert payload_bytes(seed, 0, 64) == payload_bytes(seed, 0, 64)

    def test_distinct_fragments_distinct_bytes(self):
        a = payload_bytes(fragment_seed("n0", 7, 0), 0, 64)
        b = payload_bytes(fragment_seed("n0", 8, 0), 0, 64)
        assert a != b

    def test_slices_are_absolute(self):
        seed = fragment_seed("n0", 1, 2)
        whole = payload_bytes(seed, 0, 1000)
        assert payload_bytes(seed, 300, 200) == whole[300:500]
        assert payload_bytes(seed, 999, 1) == whole[999:]

    def test_zero_length(self):
        assert payload_bytes(123, 10, 0) == b""

    def test_negative_slice_rejected(self):
        with pytest.raises(WireError):
            payload_bytes(123, -1, 4)
        with pytest.raises(WireError):
            payload_bytes(123, 0, -4)

    def test_seed_zero_still_patterns(self):
        data = payload_bytes(0, 0, 256)
        assert len(set(data)) > 1  # not a constant fill


class TestControlFrames:
    def test_hello_identifies_peer(self):
        frames = StreamDecoder().feed(hello_frame("n2", 2))
        assert live_ctrl_kind(frames[0]) == "hello"
        assert frames[0].meta["node"] == "n2"
        assert frames[0].meta["rank"] == 2

    def test_done_carries_items(self):
        frames = StreamDecoder().feed(done_frame("n1", "n0", [(5, 1.25)]))
        assert live_ctrl_kind(frames[0]) == "done"
        assert frames[0].meta["items"] == [[5, 1.25]]

    def test_engine_traffic_is_not_ctrl(self):
        frames = StreamDecoder().feed(wrap_frame(_ctrl_frame({"other": 1})))
        assert live_ctrl_kind(frames[0]) is None


def _sent_packet(flow, size=128):
    """One eager packet exactly as the engine would dispatch it."""
    message = Message(flow)
    fragment = message.add_fragment(size)
    message.mark_flushed(0.5)
    packet = WirePacket(
        kind=PacketKind.EAGER,
        src=flow.src,
        dst=flow.dst,
        channel_id=0,
        segments=(WireSegment(fragment, 0, size),),
    )
    return message, packet


class TestMirrorReceiver:
    def _pair(self, flow):
        """A receiver wired to resolve exactly ``flow``."""
        return MirrorReceiver(flow.dst, lambda fid: flow if fid == flow.flow_id else None)

    def test_roundtrip_rebuilds_packet(self):
        flow = Flow("t-mirror", "n0", "n1")
        message, packet = _sent_packet(flow)
        frames = StreamDecoder().feed(encode_live_packet(packet))
        mirror = self._pair(flow)
        rebuilt = mirror.packet_from_frame(frames[0])
        assert rebuilt.kind is PacketKind.EAGER
        assert rebuilt.src == "n0" and rebuilt.dst == "n1"
        seg = rebuilt.segments[0]
        assert seg.length == 128 and seg.offset == 0
        assert seg.payload.message.flow is flow
        assert seg.payload.message.submit_time == 0.5
        assert mirror.bytes_verified == 128
        assert mirror.corrupt_slices == 0

    def test_mirror_ids_negative_and_tracked(self):
        flow = Flow("t-ids", "n0", "n1")
        message, packet = _sent_packet(flow)
        mirror = self._pair(flow)
        rebuilt = mirror.packet_from_frame(
            StreamDecoder().feed(encode_live_packet(packet))[0]
        )
        mirrored = rebuilt.segments[0].payload.message
        assert mirrored.message_id < 0
        assert mirror.origin_of(mirrored) == ("n0", message.message_id)
        assert mirror.open_mirrors == 1
        mirror.forget(mirrored)
        assert mirror.open_mirrors == 0
        assert mirror.origin_of(mirrored) is None

    def test_same_message_reuses_mirror(self):
        flow = Flow("t-reuse", "n0", "n1")
        message = Message(flow)
        f0 = message.add_fragment(100)
        f1 = message.add_fragment(50)
        message.mark_flushed(0.0)
        packets = [
            WirePacket(
                kind=PacketKind.EAGER,
                src="n0",
                dst="n1",
                channel_id=0,
                segments=(WireSegment(f, 0, f.size),),
            )
            for f in (f0, f1)
        ]
        mirror = self._pair(flow)
        rebuilt = [
            mirror.packet_from_frame(
                StreamDecoder().feed(encode_live_packet(p))[0]
            )
            for p in packets
        ]
        m0 = rebuilt[0].segments[0].payload.message
        m1 = rebuilt[1].segments[0].payload.message
        assert m0 is m1
        assert [f.size for f in m0.fragments] == [100, 50]
        assert mirror.open_mirrors == 1

    def test_corrupted_bytes_detected(self):
        flow = Flow("t-corrupt", "n0", "n1")
        _, packet = _sent_packet(flow)
        # The codec CRC catches wire flips, so model corruption *past*
        # the codec: same frame, segment data replaced by zeros.
        frame = StreamDecoder().feed(encode_live_packet(packet))[0]

        class _Seg:
            descriptor = frame.segments[0].descriptor
            offset = frame.segments[0].offset
            length = frame.segments[0].length
            data = bytes(frame.segments[0].length)  # zeros != pattern

        class _Frame:
            kind = frame.kind
            src = frame.src
            dst = frame.dst
            channel_id = frame.channel_id
            meta = frame.meta
            segments = [_Seg]

        mirror = self._pair(flow)
        with pytest.raises(WireError):
            mirror.packet_from_frame(_Frame)
        assert mirror.corrupt_slices == 1

    def test_unknown_flow_rejected(self):
        flow = Flow("t-unknown", "n0", "n1")
        _, packet = _sent_packet(flow)
        frame = StreamDecoder().feed(encode_live_packet(packet))[0]
        mirror = MirrorReceiver("n1", lambda fid: None)
        with pytest.raises(ProtocolError):
            mirror.packet_from_frame(frame)

    def test_wrong_destination_rejected(self):
        flow = Flow("t-wrongdst", "n0", "n1")
        _, packet = _sent_packet(flow)
        frame = StreamDecoder().feed(encode_live_packet(packet))[0]
        mirror = MirrorReceiver("n2", lambda fid: flow)
        with pytest.raises(ProtocolError):
            mirror.packet_from_frame(frame)

    def test_non_fragment_payload_rejected(self):
        packet = WirePacket(
            kind=PacketKind.EAGER,
            src="n0",
            dst="n1",
            channel_id=0,
            segments=(WireSegment("not a fragment", 0, 4),),
        )
        with pytest.raises(ProtocolError):
            encode_live_packet(packet)


class TestLiveClock:
    def _clock(self, loop, **kw):
        return LiveClock(loop, epoch=time.time(), **kw)

    def test_now_is_sticky_until_refresh(self):
        loop = asyncio.new_event_loop()
        try:
            clock = self._clock(loop)
            before = clock.now
            time.sleep(0.01)
            assert clock.now == before  # frozen within the callback chain
            assert clock.refresh() > before
        finally:
            loop.close()

    def test_refresh_never_rewinds(self):
        loop = asyncio.new_event_loop()
        try:
            clock = self._clock(loop)
            clock._now = clock.now + 1e6  # simulate a wall-clock step back
            assert clock.refresh() >= 1e6
        finally:
            loop.close()

    def test_negative_delay_rejected(self):
        loop = asyncio.new_event_loop()
        try:
            clock = self._clock(loop)
            with pytest.raises(SimulationError):
                clock.schedule(-1.0, lambda: None)
            with pytest.raises(SimulationError):
                clock.at(clock.now - 1.0, lambda: None)
        finally:
            loop.close()

    def test_invalid_time_scale_rejected(self):
        loop = asyncio.new_event_loop()
        try:
            with pytest.raises(SimulationError):
                LiveClock(loop, epoch=time.time(), time_scale=0.0)
        finally:
            loop.close()

    def test_timer_fires_and_clamps_now(self):
        loop = asyncio.new_event_loop()
        try:
            clock = self._clock(loop)
            fired = []
            event = clock.schedule(0.005, lambda: fired.append(clock.now))
            assert clock.pending_timers == 1
            loop.run_until_complete(asyncio.sleep(0.05))
            assert fired and fired[0] >= event.time
            assert clock.pending_timers == 0
        finally:
            loop.close()

    def test_cancel_releases_pending(self):
        loop = asyncio.new_event_loop()
        try:
            clock = self._clock(loop)
            event = clock.schedule(10.0, lambda: None)
            assert clock.pending_timers == 1
            clock.cancel(event)
            assert clock.pending_timers == 0
            clock.cancel(event)  # idempotent
            assert clock.pending_timers == 0
        finally:
            loop.close()

    def test_time_scale_stretches_now(self):
        loop = asyncio.new_event_loop()
        try:
            clock = self._clock(loop, time_scale=100.0)
            assert clock.time_scale == 100.0
            time.sleep(0.02)
            # 20ms of wall time is only ~0.2ms of run time at 100x.
            assert clock.refresh() < 0.01
        finally:
            loop.close()
