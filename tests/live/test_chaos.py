"""Chaos layer: seeded determinism + reliability over the live framing.

Two families:

* determinism — the injected fault sequence is a pure function of
  ``(seed, link)``, so two injectors built alike agree verdict-for-
  verdict, and corruption never touches the stream header;
* properties (hypothesis) — an arbitrary lossy pipe between a
  :class:`~repro.network.reliable.SendWindow` and a
  :class:`~repro.network.reliable.ReceiveLedger`, speaking the real
  enveloped stream framing, still delivers every payload exactly once
  and in order.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.live.chaos import ChaosConfig, ChaosInjector
from repro.live.transport import (
    ENVELOPE_CRC_OFFSET,
    StreamDecoder,
    done_frame,
    wrap_envelope,
)
from repro.network.reliable import ReceiveLedger, SendWindow
from repro.util.errors import ConfigurationError


def _verdict_tuple(v):
    return (v.drop, v.corrupt, v.duplicate, v.delay, v.dup_delay)


class TestDeterminism:
    CONFIG = {"drop": 0.2, "corrupt": 0.1, "duplicate": 0.1, "jitter": 0.001,
              "seed": 42, "disconnect": {"every": 7}}

    def test_same_seed_same_link_same_sequence(self):
        a = ChaosInjector(ChaosConfig.from_spec(self.CONFIG), "n0->n1")
        b = ChaosInjector(ChaosConfig.from_spec(self.CONFIG), "n0->n1")
        seq_a = [(_verdict_tuple(a.judge()), a.should_disconnect(), a.judge_ack())
                 for _ in range(300)]
        seq_b = [(_verdict_tuple(b.judge()), b.should_disconnect(), b.judge_ack())
                 for _ in range(300)]
        assert seq_a == seq_b

    def test_links_draw_independent_sequences(self):
        config = ChaosConfig.from_spec(self.CONFIG)
        a = ChaosInjector(config, "n0->n1")
        b = ChaosInjector(config, "n1->n0")
        seq_a = [_verdict_tuple(a.judge()) for _ in range(300)]
        seq_b = [_verdict_tuple(b.judge()) for _ in range(300)]
        assert seq_a != seq_b

    def test_different_seed_different_sequence(self):
        spec = dict(self.CONFIG)
        a = ChaosInjector(ChaosConfig.from_spec(spec), "n0->n1")
        spec["seed"] = 43
        b = ChaosInjector(ChaosConfig.from_spec(spec), "n0->n1")
        seq_a = [_verdict_tuple(a.judge()) for _ in range(300)]
        seq_b = [_verdict_tuple(b.judge()) for _ in range(300)]
        assert seq_a != seq_b

    def test_disconnect_cadence(self):
        config = ChaosConfig.from_spec({"disconnect": {"every": 5}})
        injector = ChaosInjector(config, "n0->n1")
        pattern = [injector.should_disconnect() for _ in range(15)]
        assert pattern == [False] * 4 + [True] + [False] * 4 + [True] + [False] * 4 + [True]
        assert injector.stats.disconnects == 3


class TestCorruption:
    def test_corrupt_preserves_header_and_flips_one_payload_byte(self):
        config = ChaosConfig.from_spec({"corrupt": 1.0, "seed": 3})
        injector = ChaosInjector(config, "n0->n1")
        record = wrap_envelope(done_frame("n0", "n1", [(1, 0.0)], wrap=False), seq=9)
        mutated = injector.corrupt_record(record)
        assert len(mutated) == len(record)
        assert mutated[:ENVELOPE_CRC_OFFSET] == record[:ENVELOPE_CRC_OFFSET]
        diffs = [i for i in range(len(record)) if mutated[i] != record[i]]
        assert len(diffs) == 1 and diffs[0] >= ENVELOPE_CRC_OFFSET

    def test_corrupt_record_is_detected_not_fatal(self):
        config = ChaosConfig.from_spec({"corrupt": 1.0, "seed": 3})
        injector = ChaosInjector(config, "n0->n1")
        record = wrap_envelope(done_frame("n0", "n1", [(1, 0.0)], wrap=False), seq=9)
        decoder = StreamDecoder(envelope=True, tolerant=True)
        out = decoder.feed(injector.corrupt_record(record))
        assert out == []
        assert decoder.corrupt_frames == 1
        # The stream stays in sync: the next clean record decodes fine.
        (seq, frame), = decoder.feed(record)
        assert seq == 9

    def test_too_short_record_returned_unchanged(self):
        config = ChaosConfig.from_spec({"corrupt": 1.0})
        injector = ChaosInjector(config, "n0->n1")
        assert injector.corrupt_record(b"tiny") == b"tiny"


class TestConfigParsing:
    def test_sim_only_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig.from_spec({"per_nic": {"n0.mx00": {"drop": 0.1}}})
        with pytest.raises(ConfigurationError):
            ChaosConfig.from_spec({"per_network": {"mx": {"drop": 0.1}}})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig.from_spec({"dropp": 0.1})
        with pytest.raises(ConfigurationError):
            ChaosConfig.from_spec({"disconnect": {"evry": 3}})
        with pytest.raises(ConfigurationError):
            ChaosConfig.from_spec({"die": {"rank": 0, "afterr": 1}})
        with pytest.raises(ConfigurationError):
            ChaosConfig.from_spec({"heartbeat": {"intervall": 0.1}})

    def test_die_requires_rank(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig.from_spec({"die": {"after": 1.0}})

    def test_die_signal_names(self):
        config = ChaosConfig.from_spec({"die": {"rank": 1, "signal": "TERM"}})
        import signal
        assert config.die is not None and config.die.signal == int(signal.SIGTERM)
        with pytest.raises(ConfigurationError):
            ChaosConfig.from_spec({"die": {"rank": 1, "signal": "NOPE"}})

    def test_wire_active_only_for_wire_faults(self):
        assert not ChaosConfig.from_spec({"die": {"rank": 0}}).wire_active
        assert not ChaosConfig.from_spec(
            {"outages": [{"at": 0.1, "nic": "n0.mx00"}]}
        ).wire_active
        assert ChaosConfig.from_spec({"drop": 0.01}).wire_active
        assert ChaosConfig.from_spec({"disconnect": {"every": 10}}).wire_active

    def test_rto_backoff_monotonic(self):
        config = ChaosConfig.from_spec({"drop": 0.1})
        rtos = [config.rto_for(a) for a in range(5)]
        assert all(b >= a for a, b in zip(rtos, rtos[1:]))
        assert rtos[0] > 0

    def test_dead_after(self):
        config = ChaosConfig.from_spec(
            {"heartbeat": {"interval": 0.5, "misses": 4}}
        )
        assert config.dead_after == pytest.approx(2.0)


# ----------------------------------------------------------------------
# properties: retransmit + dedup over the real stream framing
# ----------------------------------------------------------------------

def _payload_id(frame) -> int:
    return int(frame.meta["items"][0][0])


@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(1, 30),
    drop=st.floats(0.0, 0.6),
    duplicate=st.floats(0.0, 0.5),
    reorder=st.floats(0.0, 1.0),
    chunk=st.integers(1, 48),
)
@settings(max_examples=60, deadline=None)
def test_exactly_once_in_order_over_live_framing(
    seed, n, drop, duplicate, reorder, chunk
):
    """Any drop/duplicate/reorder pattern on the wire, any read
    chunking: the (window, ledger) pair still releases every payload
    exactly once, in sequence order."""
    rng = random.Random(seed)
    window = SendWindow()
    ledger = ReceiveLedger()
    decoder = StreamDecoder(envelope=True, tolerant=True)
    for i in range(n):
        window.stamp(done_frame("n0", "n1", [(i, 0.0)], wrap=False))

    delivered = []
    rounds = 0
    while window.in_flight:
        rounds += 1
        assert rounds <= 10 * n + 50, "retransmit loop failed to converge"
        # One "RTO sweep": every pending record is (re)transmitted.
        wire: list[bytes] = []
        for seq, frame in window.pending():
            if rng.random() < drop:
                continue
            wire.append(wrap_envelope(frame, seq))
            if rng.random() < duplicate:
                wire.append(wrap_envelope(frame, seq))
        if rng.random() < reorder:
            rng.shuffle(wire)
        stream = b"".join(wire)
        acked: list[int] = []
        for start in range(0, len(stream), chunk):
            for seq, frame in decoder.feed(stream[start : start + chunk]):
                assert seq is not None
                released = ledger.admit(seq, frame)
                acked.append(seq)  # ACK duplicates too (lost-ACK case)
                if released:
                    delivered.extend(released)
        # ACKs may be lost as well; the sender just retransmits more.
        for seq in acked:
            if rng.random() < drop:
                continue
            window.ack(seq)

    assert [_payload_id(f) for f in delivered] == list(range(n))
    assert decoder.corrupt_frames == 0


@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(1, 20),
    corrupt=st.floats(0.0, 0.7),
)
@settings(max_examples=40, deadline=None)
def test_corruption_is_always_detected_never_delivered(seed, n, corrupt):
    """Injected byte flips are caught by the frame CRC: the tolerant
    decoder skips them, the retransmit path re-sends, and the delivered
    payloads are byte-identical originals."""
    config = ChaosConfig.from_spec({"corrupt": 1.0, "seed": seed % 2**31})
    injector = ChaosInjector(config, "n0->n1")
    rng = random.Random(seed)
    window = SendWindow()
    ledger = ReceiveLedger()
    decoder = StreamDecoder(envelope=True, tolerant=True)
    for i in range(n):
        window.stamp(done_frame("n0", "n1", [(i, 0.0)], wrap=False))

    delivered = []
    rounds = 0
    while window.in_flight:
        rounds += 1
        assert rounds <= 10 * n + 50
        for seq, frame in list(window.pending()):
            record = wrap_envelope(frame, seq)
            if rng.random() < corrupt:
                record = injector.corrupt_record(record)
            for got_seq, got in decoder.feed(record):
                released = ledger.admit(got_seq, got)
                window.ack(got_seq)
                if released:
                    delivered.extend(released)

    assert [_payload_id(f) for f in delivered] == list(range(n))
