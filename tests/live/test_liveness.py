"""Liveness units: backoff jitter, heartbeat ledgers, the watchdog."""

import pytest

from repro.live.liveness import Backoff, HeartbeatLedger, PeerWatchdog
from repro.util.errors import ConfigurationError


class TestBackoff:
    def test_grows_exponentially_and_clamps(self):
        backoff = Backoff(base=0.05, factor=2.0, maximum=0.4, jitter=0.0, seed=1)
        delays = [backoff.next() for _ in range(6)]
        assert delays[:4] == pytest.approx([0.05, 0.1, 0.2, 0.4])
        assert delays[4] == pytest.approx(0.4)  # clamped

    def test_reset_rearms(self):
        backoff = Backoff(base=0.05, jitter=0.0)
        backoff.next(), backoff.next()
        backoff.reset()
        assert backoff.next() == pytest.approx(0.05)

    def test_jitter_is_seeded_and_bounded(self):
        a = Backoff(jitter=0.25, seed=7)
        b = Backoff(jitter=0.25, seed=7)
        seq_a = [a.next() for _ in range(10)]
        seq_b = [b.next() for _ in range(10)]
        assert seq_a == seq_b  # same seed, same delays
        plain = Backoff(jitter=0.0)
        for got, nominal in zip(seq_a, [plain.next() for _ in range(10)]):
            assert nominal * 0.75 <= got <= nominal * 1.25

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            Backoff(base=0.0)
        with pytest.raises(ConfigurationError):
            Backoff(factor=0.5)
        with pytest.raises(ConfigurationError):
            Backoff(jitter=1.5)


class TestHeartbeatLedger:
    def test_any_traffic_counts_as_life(self):
        ledger = HeartbeatLedger(dead_after=1.0)
        ledger.record("n1", 10.0)
        assert ledger.age("n1", 10.4) == pytest.approx(0.4)
        assert not ledger.stale("n1", 10.9)
        assert ledger.stale("n1", 11.1)

    def test_never_heard_is_not_stale(self):
        ledger = HeartbeatLedger(dead_after=1.0)
        assert ledger.age("n9", 100.0) is None
        assert not ledger.stale("n9", 100.0)

    def test_ages_snapshot(self):
        ledger = HeartbeatLedger(dead_after=1.0)
        ledger.record("n1", 5.0)
        ledger.record("n2", 6.0)
        assert ledger.ages(7.0) == pytest.approx({"n1": 2.0, "n2": 1.0})


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestPeerWatchdog:
    def _watchdog(self, clock, **kwargs):
        kwargs.setdefault("dead_after", 2.0)
        return PeerWatchdog({0: "n0", 1: "n1", 2: "n2"}, clock=clock, **kwargs)

    def test_exit_declared_once(self):
        clock = _FakeClock()
        watchdog = self._watchdog(clock)
        watchdog.note_exit(2, -9)
        (dead,) = watchdog.check()
        assert (dead.rank, dead.node, dead.reason) == (2, "n2", "exit")
        assert watchdog.check() == []  # declared exactly once
        assert watchdog.alive() == [0, 1]

    def test_control_failures_need_budget(self):
        clock = _FakeClock()
        watchdog = self._watchdog(clock, control_failure_budget=2)
        watchdog.note_control_failure(1)
        assert watchdog.check() == []
        watchdog.note_control_failure(1)
        (dead,) = watchdog.check()
        assert dead.reason == "control"

    def test_beat_clears_control_failures(self):
        clock = _FakeClock()
        watchdog = self._watchdog(clock, control_failure_budget=2)
        watchdog.note_control_failure(1)
        watchdog.beat(1)
        watchdog.note_control_failure(1)
        assert watchdog.check() == []

    def test_heartbeat_gossip_needs_direct_contact_loss_too(self):
        clock = _FakeClock()
        watchdog = self._watchdog(clock)
        # Survivors gossip a long silence, but the coordinator still
        # reaches the peer (beat): a one-sided socket failure must not
        # kill a healthy process.
        watchdog.note_heartbeat_age(1, 5.0)
        watchdog.beat(1)
        assert watchdog.check() == []
        # Now the coordinator also loses contact for > dead_after.
        clock.now += 3.0
        watchdog.note_heartbeat_age(1, 8.0)
        (dead,) = watchdog.check()
        assert dead.reason == "heartbeat"
        assert dead.time_to_detect == pytest.approx(3.0)

    def test_summary_shape(self):
        clock = _FakeClock()
        watchdog = self._watchdog(clock)
        watchdog.note_exit(0, 1)
        watchdog.check()
        summary = watchdog.summary()
        assert summary["alive"] == [1, 2]
        assert summary["dead"][0]["node"] == "n0"
        assert summary["dead"][0]["reason"] == "exit"

    def test_bad_dead_after_rejected(self):
        with pytest.raises(ConfigurationError):
            PeerWatchdog({0: "n0"}, dead_after=0.0)
