"""Integration: the distributed observability plane over a real 2-peer run.

One traced UDS live run is shared across the assertions (spawning peer
processes is the expensive part); a second run exercises the in-flight
HTTP endpoint.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.live import run_live_scenario
from repro.obs.analyze import analyze_events, summary_metrics
from repro.obs.export import to_chrome_trace
from repro.obs.merge import KIND_WIRE_RECV

_TIMEOUT = 30.0


def _scenario(count=6):
    return {
        "name": "dist-obs",
        "cluster": {
            "n_nodes": 2,
            "networks": [["mx", 1]],
            "engine": "optimizing",
            "strategy": "aggregate",
            "seed": 0,
        },
        "workloads": [
            {"app": "pingpong", "src": "n0", "dst": "n1", "size": 64,
             "count": count},
        ],
    }


@pytest.fixture(scope="module")
def traced_run():
    return run_live_scenario(
        _scenario(), timeout=_TIMEOUT,
        observability={"trace": True, "sample_interval": 0.005},
    )


class TestMergedTrace:
    def test_crossing_per_delivered_message(self, traced_run):
        # Ping-pong never aggregates across messages, so every delivered
        # message is exactly one correlated wire crossing.
        assert traced_run.crossings_matched >= traced_run.report.messages

    def test_send_not_after_aligned_recv(self, traced_run):
        recvs = [
            e for e in traced_run.aligned_events if e.kind == KIND_WIRE_RECV
        ]
        assert recvs
        for event in recvs:
            assert event.detail["send_time"] <= event.time
        assert traced_run.crossings_clamped == 0

    def test_offsets_estimated_for_both_peers(self, traced_run):
        assert set(traced_run.offsets) == {"n0", "n1"}
        # Same-host peers: offsets are microseconds, not seconds.
        assert all(abs(v) < 0.1 for v in traced_run.offsets.values())

    def test_events_from_both_peers_on_one_timeline(self, traced_run):
        times = [e.time for e in traced_run.aligned_events]
        assert times == sorted(times)
        sources = {e.detail.get("dst") for e in traced_run.aligned_events
                   if e.kind == KIND_WIRE_RECV}
        assert sources == {"n0", "n1"}

    def test_trace_events_dicts_match_aligned(self, traced_run):
        assert len(traced_run.trace_events) == len(traced_run.aligned_events)
        assert all("kind" in e and "time" in e for e in traced_run.trace_events)

    def test_chrome_export_has_matched_flow_pairs(self, traced_run):
        trace = to_chrome_trace(traced_run.aligned_events)
        starts = [e for e in trace["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in trace["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == traced_run.crossings_matched
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}
        # Each peer renders as its own process in the merged view.
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] in "sf"}
        assert len(pids) >= 2
        json.dumps(trace)  # Perfetto-loadable means JSON-serializable

    def test_analyze_reports_per_edge_latency(self, traced_run):
        analysis = analyze_events(traced_run.aligned_events)
        metrics = summary_metrics(analysis)
        for edge in ("n0->n1", "n1->n0"):
            assert metrics[f"edge/{edge}/crossings"] > 0
            assert metrics[f"edge/{edge}/latency_p50_us"] > 0

    def test_sampler_produced_series(self, traced_run):
        samples = [
            e for e in traced_run.aligned_events if e.kind == "obs.sample"
        ]
        assert samples, "live sampler never ticked"


class TestReportAccounting:
    def test_no_truncation_and_streaming_flagged(self, traced_run):
        for payload in traced_run.peer_reports:
            assert payload["trace_dropped"] == 0
            assert payload["streamed"] is True
            assert payload["trace_seen"] >= 1

    def test_cluster_registry_aggregates_all_peers(self, traced_run):
        registry = traced_run.cluster_registry
        assert registry is not None
        text = registry.to_prometheus()
        assert 'peer="n0"' in text and 'peer="n1"' in text
        dispatches = [
            m.value for m in registry
            if m.name == "repro_dispatches_total"
        ]
        assert sum(dispatches) >= traced_run.report.messages


class TestLiveServe:
    def test_metrics_and_status_served_during_run(self):
        port = 19631
        grabbed: dict[str, object] = {}

        def poll():
            deadline = time.time() + _TIMEOUT
            while time.time() < deadline and "metrics" not in grabbed:
                try:
                    with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/metrics", timeout=1
                    ) as resp:
                        text = resp.read().decode()
                    if 'peer="n0"' in text and 'peer="n1"' in text:
                        grabbed["metrics"] = text
                        with urllib.request.urlopen(
                            f"http://127.0.0.1:{port}/status", timeout=1
                        ) as resp:
                            grabbed["status"] = json.loads(resp.read())
                except OSError:
                    time.sleep(0.005)

        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
        result = run_live_scenario(
            _scenario(count=20), timeout=_TIMEOUT,
            observability={"trace": True}, serve=f"127.0.0.1:{port}",
        )
        poller.join(timeout=5)
        assert result.report.messages == 40
        assert "metrics" in grabbed, "/metrics never answered during the run"
        text = grabbed["metrics"]
        # Parseable: every non-comment line is "name{labels} value".
        for line in str(text).splitlines():
            if line.startswith("#"):
                continue
            assert " " in line
            float(line.rsplit(" ", 1)[1])
        status = grabbed["status"]
        assert status["scenario"] == "dist-obs"
        assert status["phase"] in ("starting", "running", "stopping")
