"""Tests for the Simulator run loop."""

import pytest

from repro.sim import Simulator
from repro.util.errors import SimulationError


class TestClockAndScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_advances_clock(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5]
        assert sim.now == 1.5

    def test_at_absolute_time(self):
        sim = Simulator()
        hits = []
        sim.at(2.0, hits.append, "x")
        sim.run()
        assert hits == ["x"]
        assert sim.now == 2.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(0.5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            log.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]

    def test_zero_delay_fifo_after_current(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: (log.append("a"), sim.schedule(0.0, log.append, "c")))
        sim.schedule(1.0, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]


class TestRunLimits:
    def test_run_until_stops_clock_at_limit(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, 1)
        final = sim.run(until=2.0)
        assert final == 2.0
        assert fired == []
        # event still pending; continuing the run fires it
        sim.run()
        assert fired == [1]
        assert sim.now == 5.0

    def test_run_until_exact_boundary_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, 1)
        sim.run(until=2.0)
        assert fired == [1]

    def test_run_until_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)

    def test_run_until_advances_clock_when_queue_empty(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_pending_events(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        assert sim.pending_events == 1
        sim.cancel(ev)
        assert sim.pending_events == 0

    def test_cancel_twice_ok(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.cancel(ev)
        sim.cancel(ev)
        assert sim.pending_events == 0

    def test_run_not_reentrant(self):
        sim = Simulator()
        failure = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                failure.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(failure) == 1

    def test_run_until_idle(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run_until_idle() == 1.0

    def test_run_until_idle_raises_on_runaway(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=100)
