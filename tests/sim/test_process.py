"""Tests for generator-based processes and futures."""

import pytest

from repro.sim import Future, Process, Simulator, all_of
from repro.util.errors import SimulationError


class TestFuture:
    def test_resolve_and_value(self):
        f = Future()
        assert not f.done
        f.resolve(42)
        assert f.done
        assert f.value == 42

    def test_value_before_resolve_raises(self):
        with pytest.raises(SimulationError):
            Future().value

    def test_double_resolve_rejected(self):
        f = Future()
        f.resolve(1)
        with pytest.raises(SimulationError):
            f.resolve(2)

    def test_callback_after_resolve_runs_immediately(self):
        f = Future()
        f.resolve("x")
        seen = []
        f.add_callback(seen.append)
        assert seen == ["x"]

    def test_callbacks_fire_in_order(self):
        f = Future()
        seen = []
        f.add_callback(lambda v: seen.append(("a", v)))
        f.add_callback(lambda v: seen.append(("b", v)))
        f.resolve(1)
        assert seen == [("a", 1), ("b", 1)]


class TestAllOf:
    def test_empty_resolves_immediately(self):
        assert all_of([]).done

    def test_waits_for_all(self):
        f1, f2 = Future(), Future()
        combined = all_of([f1, f2])
        f1.resolve(None)
        assert not combined.done
        f2.resolve(None)
        assert combined.done

    def test_already_resolved_inputs(self):
        f1 = Future()
        f1.resolve(None)
        assert all_of([f1]).done


class TestProcess:
    def test_sleep_sequence(self):
        sim = Simulator()
        times = []

        def proc():
            times.append(sim.now)
            yield 1.0
            times.append(sim.now)
            yield 2.5
            times.append(sim.now)

        Process(sim, proc())
        sim.run()
        assert times == [0.0, 1.0, 3.5]

    def test_wait_on_future_gets_value(self):
        sim = Simulator()
        f = Future()
        got = []

        def proc():
            value = yield f
            got.append((sim.now, value))

        Process(sim, proc())
        sim.schedule(2.0, f.resolve, "payload")
        sim.run()
        assert got == [(2.0, "payload")]

    def test_finished_resolves_with_return_value(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return "done"

        p = Process(sim, proc())
        sim.run()
        assert p.finished.done
        assert p.finished.value == "done"

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def proc():
            yield -1.0

        Process(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_bad_yield_type_rejected(self):
        sim = Simulator()

        def proc():
            yield "nope"

        Process(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_exception_propagates(self):
        sim = Simulator()

        def proc():
            yield 1.0
            raise RuntimeError("boom")

        Process(sim, proc())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def proc(name, delay):
            for _ in range(3):
                yield delay
                log.append((name, sim.now))

        Process(sim, proc("fast", 1.0))
        Process(sim, proc("slow", 1.5))
        sim.run()
        # At t=3.0 both wake; slow's wake event was scheduled earlier
        # (at t=1.5 vs t=2.0), so FIFO tie-breaking fires it first.
        assert log == [
            ("fast", 1.0),
            ("slow", 1.5),
            ("fast", 2.0),
            ("slow", 3.0),
            ("fast", 3.0),
            ("slow", 4.5),
        ]

    def test_pingpong_via_futures(self):
        """Closed-loop request/response pattern used by workloads."""
        sim = Simulator()
        rtt = 2e-6
        completions = []

        def fake_send():
            f = Future()
            sim.schedule(rtt, f.resolve, None)
            return f

        def client():
            for _ in range(5):
                yield fake_send()
                completions.append(sim.now)

        Process(sim, client())
        sim.run()
        assert len(completions) == 5
        assert completions[-1] == pytest.approx(5 * rtt)


class TestResources:
    def test_resource_fifo(self):
        from repro.sim import Resource

        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def worker(name, hold):
            grant = res.acquire()
            yield grant
            order.append((name, sim.now))
            yield hold
            res.release()

        Process(sim, worker("a", 1.0))
        Process(sim, worker("b", 1.0))
        sim.run()
        assert order[0][0] == "a"
        assert order[1] == ("b", pytest.approx(1.0))

    def test_resource_capacity_validation(self):
        from repro.sim import Resource

        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_release_idle_rejected(self):
        from repro.sim import Resource

        res = Resource(Simulator(), capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_store_put_then_get(self):
        from repro.sim import Store

        sim = Simulator()
        store = Store(sim)
        store.put("x")
        assert len(store) == 1
        got = store.get()
        assert got.done and got.value == "x"
        assert len(store) == 0

    def test_store_get_then_put(self):
        from repro.sim import Store

        sim = Simulator()
        store = Store(sim)
        got = store.get()
        assert not got.done
        store.put("y")
        assert got.done and got.value == "y"
