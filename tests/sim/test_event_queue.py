"""Tests for the event queue: ordering, cancellation, determinism."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.event import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(3.0, fired.append, ("c",))
        q.push(1.0, fired.append, ("a",))
        q.push(2.0, fired.append, ("b",))
        while (e := q.pop()) is not None:
            e.fn(*e.args)
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        q = EventQueue()
        order = []
        for i in range(10):
            q.push(1.0, order.append, (i,))
        while (e := q.pop()) is not None:
            e.fn(*e.args)
        assert order == list(range(10))

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_pop_sequence_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while (e := q.pop()) is not None:
            popped.append(e.time)
        assert popped == sorted(times)
        assert len(popped) == len(times)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        fired = []
        ev = q.push(1.0, fired.append, (1,))
        q.push(2.0, fired.append, (2,))
        ev.cancel()
        q.note_cancelled()
        while (e := q.pop()) is not None:
            e.fn(*e.args)
        assert fired == [2]

    def test_len_tracks_live_events(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        ev.cancel()
        q.note_cancelled()
        assert len(q) == 1
        q.pop()
        assert len(q) == 0
        assert not q

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        ev.cancel()
        q.note_cancelled()
        assert q.peek_time() == 5.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty(self):
        assert EventQueue().pop() is None

    def test_cancel_idempotent(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        ev.cancel()
        ev.cancel()  # no error
        assert ev.cancelled
