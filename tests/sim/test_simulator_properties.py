"""Property tests for the simulation kernel under random schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


@st.composite
def schedule_ops(draw):
    """A random sequence of schedule/cancel operations."""
    n = draw(st.integers(min_value=1, max_value=60))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["schedule", "schedule", "schedule", "cancel"]))
        delay = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
        ops.append((kind, delay))
    return ops


class TestKernelProperties:
    @settings(max_examples=100, deadline=None)
    @given(ops=schedule_ops())
    def test_dispatch_times_monotone(self, ops):
        sim = Simulator()
        fired = []
        handles = []
        for kind, delay in ops:
            if kind == "schedule":
                handles.append(sim.schedule(delay, lambda: fired.append(sim.now)))
            elif handles:
                sim.cancel(handles.pop())
        sim.run()
        assert fired == sorted(fired)
        assert sim.pending_events == 0

    @settings(max_examples=60, deadline=None)
    @given(ops=schedule_ops())
    def test_cancelled_events_never_fire(self, ops):
        sim = Simulator()
        fired = []
        cancelled_ids = set()
        live = []
        for i, (kind, delay) in enumerate(ops):
            if kind == "schedule":
                live.append((i, sim.schedule(delay, lambda i=i: fired.append(i))))
            elif live:
                event_id, handle = live.pop()
                sim.cancel(handle)
                cancelled_ids.add(event_id)
        sim.run()
        assert not (set(fired) & cancelled_ids)
        assert sorted(fired) == sorted(i for i, _ in live)

    @settings(max_examples=60, deadline=None)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    def test_nested_scheduling_is_causal(self, delays):
        """Events scheduled from inside handlers never fire in the past."""
        sim = Simulator()
        observed = []
        remaining = list(delays)

        def handler():
            observed.append(sim.now)
            if remaining:
                sim.schedule(remaining.pop(), handler)

        sim.schedule(remaining.pop(), handler)
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)

    @settings(max_examples=40, deadline=None)
    @given(
        until=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        delays=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
    )
    def test_run_until_fires_exactly_the_due_events(self, until, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run(until=until)
        assert sorted(fired) == sorted(d for d in delays if d <= until)
        assert sim.now == until or (not fired and sim.now == until)
