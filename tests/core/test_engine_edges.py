"""Edge-case tests for the engine: hold timers, epoch retry, weighted
service end-to-end, and misc error paths."""

import pytest

from repro.core.config import EngineConfig
from repro.core.strategies import NagleStrategy
from repro.core.channels import WeightedChannels
from repro.network.virtual import TrafficClass
from repro.runtime import Cluster, run_session
from repro.sim import Process
from repro.util.errors import ProtocolError
from repro.util.units import KiB, us


class TestHoldTimer:
    def test_earlier_hold_not_replaced_by_later(self):
        """Arming a later wake when an earlier one is pending is a no-op."""
        config = EngineConfig(nagle_delay=20 * us, nagle_min_bytes=10 * KiB)
        cluster = Cluster(strategy=lambda: NagleStrategy(), config=config, seed=1)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        first = api.send(flow, 64, header_size=0)

        def second_sender():
            yield 5 * us
            api.send(flow, 64, header_size=0)

        Process(cluster.sim, second_sender())
        cluster.run_until_idle()
        # The first message's deadline governs: delivery right after
        # submit_time(first) + 20us, not 5us later.
        assert first.completion.value == pytest.approx(20 * us, rel=0.5)

    def test_hold_timer_counts_in_stats(self):
        config = EngineConfig(nagle_delay=15 * us, nagle_min_bytes=10 * KiB)
        cluster = Cluster(strategy=lambda: NagleStrategy(), config=config, seed=1)
        api = cluster.api("n0")
        api.send(api.open_flow("n1"), 64)
        cluster.run_until_idle()
        stats = cluster.engine("n0").stats
        assert stats.holds >= 1
        assert stats.activations.get("nagle", 0) >= 1


class TestEpochRetry:
    def test_rdv_only_backlog_still_dispatches(self):
        """A queue containing only an oversized entry: planning parks it
        (returns None) and the epoch-retry path must immediately re-plan
        and send the REQ — no stall until the next external event."""
        cluster = Cluster(seed=1)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        big = api.send(flow, 512 * KiB, header_size=0)
        # If the retry path were missing, nothing would ever be sent.
        cluster.run_until_idle()
        assert big.completion.done


class TestWeightedServiceEndToEnd:
    def test_control_unstarved_under_bulk(self):
        from repro.middleware import ControlPlaneApp, StreamApp

        def control_p99(policy):
            cluster = Cluster(policy=policy, seed=3)
            apps = [
                StreamApp(
                    size=24 * KiB,
                    count=40,
                    interval=2 * us,
                    traffic_class=TrafficClass.BULK,
                    name=f"b{i}",
                )
                for i in range(3)
            ] + [ControlPlaneApp(count=100, interval=4 * us, name="c")]
            report = run_session(cluster, [a.install for a in apps])
            return report.latency_by_class[TrafficClass.CONTROL].p99

        from repro.core.channels import PooledChannels

        weighted = control_p99(WeightedChannels)
        shared = control_p99(lambda: PooledChannels(by_class=False))
        assert weighted < shared / 2


class TestProtocolErrors:
    def test_unmatched_rdv_ack_raises(self):
        from repro.network.wire import PacketKind, WirePacket

        cluster = Cluster(seed=1)
        engine = cluster.engine("n0")
        bogus = WirePacket(
            PacketKind.RDV_ACK, "n1", "n0", 0, meta={"token": 424242}
        )
        with pytest.raises(ProtocolError, match="unmatched"):
            engine._handle_rdv_ack(bogus)

    def test_park_requires_waiting_state(self):
        from repro.madeleine.message import Flow

        from tests.core.helpers import data_entry

        cluster = Cluster(seed=1)
        engine = cluster.engine("n0")
        entry = data_entry(Flow("f", "n0", "n1"), 100_000)
        entry.consume(100_000)  # SENT
        with pytest.raises(ProtocolError):
            engine.park_for_rendezvous(entry, 0)


class TestStatsIntegrity:
    def test_packet_kind_accounting_consistent(self):
        cluster = Cluster(seed=5)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        for _ in range(10):
            api.send(flow, 1 * KiB)
        api.send(flow, 256 * KiB)
        cluster.run_until_idle()
        stats = cluster.engine("n0").stats
        assert sum(stats.packets_by_kind.values()) == stats.dispatches
        nic_requests = sum(
            nic.stats.requests for nic in cluster.fabric.node("n0").nics
        )
        assert nic_requests == stats.dispatches

    def test_entries_enqueued_counts_fragments(self):
        cluster = Cluster(seed=5)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        session = api.begin(flow)
        session.pack(8).pack(8).pack(8)
        session.flush()
        assert cluster.engine("n0").stats.entries_enqueued == 3
