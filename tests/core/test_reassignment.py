"""Tests for engine-level dynamic class reassignment and host accounting."""

import dataclasses

import pytest

from repro.drivers.mx import MX_CAPABILITIES
from repro.network.virtual import TrafficClass
from repro.runtime import Cluster, run_session
from repro.util.units import KiB


class TestReassignClass:
    def test_moves_pending_entries(self):
        c = Cluster(seed=0)
        api = c.api("n0")
        engine = c.engine("n0")
        bulk_flow = api.open_flow("n1", traffic_class=TrafficClass.BULK)
        # Occupy the NIC, then queue bulk entries.
        api.send(bulk_flow, 4 * KiB)
        pending_before = [api.send(bulk_flow, 1 * KiB) for _ in range(5)]
        assert engine.backlog > 0
        pool = c.fabric.node("n0").channels
        fresh = pool.create("migration-target")
        moved = engine.reassign_class(TrafficClass.BULK, fresh.channel_id)
        assert moved == 10  # 5 messages x (header + payload)
        assert len(engine.waiting.queue(fresh.channel_id)) == 10
        c.run_until_idle()
        assert all(m.completion.done for m in pending_before)

    def test_preserves_flow_order(self):
        c = Cluster(seed=0)
        api = c.api("n0")
        engine = c.engine("n0")
        flow = api.open_flow("n1", traffic_class=TrafficClass.BULK)
        api.send(flow, 4 * KiB)  # occupy NIC
        msgs = [api.send(flow, 512, header_size=0) for _ in range(6)]
        pool = c.fabric.node("n0").channels
        fresh = pool.create("target")
        engine.reassign_class(TrafficClass.BULK, fresh.channel_id)
        queued = engine.waiting.queue(fresh.channel_id).pending()
        ids = [e.message.message_id for e in queued]
        assert ids == sorted(ids)
        c.run_until_idle()
        completions = [m.completion.value for m in msgs]
        assert completions == sorted(completions)

    def test_noop_when_nothing_matches(self):
        c = Cluster(seed=0)
        engine = c.engine("n0")
        pool = c.fabric.node("n0").channels
        fresh = pool.create("target")
        assert engine.reassign_class(TrafficClass.PUTGET, fresh.channel_id) == 0


class TestHostAccounting:
    def test_pio_costs_more_host_time_than_dma(self):
        from repro.network.model import TransferMode
        from repro.network.technologies import myrinet_mx

        link = myrinet_mx()
        pio = link.host_occupancy(2048, TransferMode.PIO)
        dma = link.host_occupancy(2048, TransferMode.DMA)
        assert pio > 10 * dma

    def test_copy_adds_host_time(self):
        from repro.network.model import TransferMode
        from repro.network.technologies import myrinet_mx

        link = myrinet_mx()
        plain = link.host_occupancy(8192, TransferMode.DMA)
        copied = link.host_occupancy(8192, TransferMode.DMA, copied_bytes=8192)
        assert copied > plain

    def test_report_exposes_host_time(self):
        c = Cluster(seed=0)
        api = c.api("n0")
        flow = api.open_flow("n1")
        for _ in range(10):
            api.send(flow, 1 * KiB)
        c.run_until_idle()
        report = c.report()
        assert report.host_time > 0

    def test_gatherless_caps_cost_more_host_time(self):
        def host_ms(caps):
            c = Cluster(seed=1, driver_caps={"mx": caps} if caps else None)
            api = c.api("n0")
            flows = [api.open_flow("n1") for _ in range(4)]
            for f in flows:
                for _ in range(20):
                    api.send(f, 2 * KiB)
            c.run_until_idle()
            return c.report().host_time

        gatherless = dataclasses.replace(
            MX_CAPABILITIES, supports_gather=False, max_gather_entries=1
        )
        assert host_ms(gatherless) > host_ms(None)


class TestDriverCapsOverride:
    def test_override_applied(self):
        caps = dataclasses.replace(MX_CAPABILITIES, eager_threshold=1 * KiB)
        c = Cluster(driver_caps={"mx": caps})
        assert c.engine("n0").drivers[0].caps.eager_threshold == 1 * KiB

    def test_override_changes_protocol(self):
        caps = dataclasses.replace(MX_CAPABILITIES, eager_threshold=1 * KiB)
        c = Cluster(driver_caps={"mx": caps})
        api = c.api("n0")
        flow = api.open_flow("n1")
        api.send(flow, 8 * KiB, header_size=0)  # rdv under the override
        c.run_until_idle()
        assert c.engine("n0").stats.rdv_parked == 1
