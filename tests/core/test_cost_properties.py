"""Property tests for the cost model: monotonicity, positivity, and the
three-way drift guard pinning ``score`` == ``breakdown`` == the batched
kernel's packed scorer (dispatch order rides on exact float equality)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernel
from repro.core.cost import CostModel
from repro.core.plan import PlanItem, TransferPlan
from repro.madeleine.message import Flow
from repro.network.wire import PacketKind
from repro.sim import Simulator
from repro.util.units import KiB

from tests.core.helpers import data_entry, make_driver


def plan_of_sizes(driver, sizes, submit_time=0.0):
    flow = Flow("f", "n0", "n1")
    items = [PlanItem(data_entry(flow, s, submit_time=submit_time), s) for s in sizes]
    return TransferPlan(driver, PacketKind.EAGER, "n1", 0, items)


sizes_strategy = st.lists(
    st.integers(min_value=1, max_value=4 * KiB), min_size=1, max_size=12
)


class TestCostProperties:
    @settings(max_examples=80, deadline=None)
    @given(sizes=sizes_strategy)
    def test_occupancy_positive(self, sizes):
        driver, _ = make_driver(Simulator())
        plan = plan_of_sizes(driver, sizes)
        assert CostModel().occupancy(plan) > 0

    @settings(max_examples=80, deadline=None)
    @given(sizes=sizes_strategy)
    def test_score_positive(self, sizes):
        driver, _ = make_driver(Simulator())
        plan = plan_of_sizes(driver, sizes)
        assert CostModel().score(plan, now=0.0) > 0

    @settings(max_examples=60, deadline=None)
    @given(
        sizes=sizes_strategy,
        extra=st.integers(min_value=1, max_value=4 * KiB),
    )
    def test_occupancy_monotone_in_payload(self, sizes, extra):
        """Adding a segment never makes the packet cheaper to send."""
        driver, _ = make_driver(Simulator())
        small = plan_of_sizes(driver, sizes)
        large = plan_of_sizes(driver, sizes + [extra])
        model = CostModel()
        assert model.occupancy(large) > model.occupancy(small)

    @settings(max_examples=60, deadline=None)
    @given(
        sizes=sizes_strategy,
        dt=st.floats(min_value=1e-9, max_value=1.0, allow_nan=False),
    )
    def test_score_nondecreasing_in_staleness(self, sizes, dt):
        driver, _ = make_driver(Simulator())
        plan = plan_of_sizes(driver, sizes, submit_time=0.0)
        model = CostModel()
        assert model.score(plan, now=dt) >= model.score(plan, now=0.0)

    @settings(max_examples=60, deadline=None)
    @given(sizes=sizes_strategy)
    def test_staleness_boost_bounded(self, sizes):
        """A stale plan scores at most 2x its fresh self."""
        driver, _ = make_driver(Simulator())
        plan = plan_of_sizes(driver, sizes, submit_time=0.0)
        model = CostModel()
        fresh = model.score(plan, now=0.0)
        ancient = model.score(plan, now=1e6)
        assert ancient <= 2.0 * fresh + 1e-9

    @settings(max_examples=80, deadline=None)
    @given(
        sizes=sizes_strategy,
        now=st.floats(min_value=0.0, max_value=1e-2, allow_nan=False),
    )
    def test_breakdown_score_matches_score(self, sizes, now):
        """breakdown() repeats the score arithmetic; the two must never
        drift apart — not even in the last bit."""
        driver, _ = make_driver(Simulator())
        plan = plan_of_sizes(driver, sizes)
        model = CostModel()
        assert model.breakdown(plan, now)["score"] == model.score(plan, now)

    @settings(max_examples=80, deadline=None)
    @given(
        sizes=sizes_strategy,
        submits=st.lists(
            st.floats(min_value=0.0, max_value=1e-2, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
        now=st.floats(min_value=0.0, max_value=2e-2, allow_nan=False),
    )
    def test_packed_score_matches_scalar(self, sizes, submits, now):
        """The batched kernel's packed scorer reproduces CostModel.score
        bit for bit from (n_items, payload, oldest_submit) aggregates —
        the invariant the whole batched search's dispatch-order
        equivalence rests on.  Submit times vary per item, so the
        ``now - min(submit)`` vs ``max(now - submit)`` equivalence is
        exercised too (including negative waits: *now* may precede a
        submit time)."""
        driver, _ = make_driver(Simulator())
        flow = Flow("f", "n0", "n1")
        items = [
            PlanItem(data_entry(flow, s, submit_time=submits[i % len(submits)]), s)
            for i, s in enumerate(sizes)
        ]
        plan = TransferPlan(driver, PacketKind.EAGER, "n1", 0, items)
        model = CostModel()
        consts = kernel.constants_for(driver)
        assert consts.exact
        packed = model.score_packed(
            consts,
            len(items),
            plan.payload_bytes,
            min(item.entry.submit_time for item in items),
            now,
        )
        assert packed == model.score(plan, now)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=12),
        size=st.integers(min_value=32, max_value=2 * KiB),
    )
    def test_aggregate_beats_singles(self, n, size):
        """One n-segment packet always out-scores its single pieces —
        the property the search strategy's correctness rides on."""
        driver, _ = make_driver(Simulator())
        model = CostModel()
        aggregate = model.score(plan_of_sizes(driver, [size] * n), now=0.0)
        single = model.score(plan_of_sizes(driver, [size]), now=0.0)
        assert aggregate > single
