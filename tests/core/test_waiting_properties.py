"""Property tests for the waiting packet lists under random operations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.waiting import ChannelQueue, WaitingLists
from repro.madeleine.message import Flow
from repro.madeleine.submit import EntryState

from tests.core.helpers import data_entry


@st.composite
def queue_operations(draw):
    """A random interleaving of append / consume / park operations."""
    n = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n):
        ops.append(
            draw(
                st.sampled_from(
                    ["append", "append", "consume_head", "park_head", "consume_partial"]
                )
            )
        )
    return ops


class TestChannelQueueProperties:
    @settings(max_examples=150, deadline=None)
    @given(ops=queue_operations())
    def test_pending_always_waiting_in_arrival_order(self, ops):
        flow = Flow("f", "n0", "n1")
        queue = ChannelQueue(0)
        appended = []
        for op in ops:
            pending = queue.pending()
            if op == "append":
                entry = data_entry(flow, 100)
                queue.append(entry)
                appended.append(entry)
            elif op == "consume_head" and pending:
                head = pending[0]
                head.consume(head.remaining)
            elif op == "consume_partial" and pending:
                head = pending[0]
                if head.remaining > 1:
                    head.consume(head.remaining // 2)
            elif op == "park_head" and pending:
                head = pending[0]
                if head.state is EntryState.WAITING:
                    queue.remove(head)
                    head.state = EntryState.RDV_PENDING

        pending = queue.pending()
        # 1. Only pending-state entries are visible.
        assert all(
            e.state in (EntryState.WAITING, EntryState.RDV_READY) for e in pending
        )
        # 2. Arrival order is preserved.
        order = {id(e): i for i, e in enumerate(appended)}
        positions = [order[id(e)] for e in pending]
        assert positions == sorted(positions)
        # 3. pending_bytes agrees with the entries' remaining counts.
        assert queue.pending_bytes == sum(e.remaining for e in pending)
        # 4. Windowed view is a prefix of the full view.
        assert queue.pending(window=3) == pending[:3]

    @settings(max_examples=80, deadline=None)
    @given(
        channels=st.lists(
            st.integers(min_value=0, max_value=5), min_size=1, max_size=30
        )
    )
    def test_waiting_lists_totals(self, channels):
        flow = Flow("f", "n0", "n1")
        lists = WaitingLists()
        for channel_id in channels:
            lists.enqueue(data_entry(flow, 10), channel_id)
        assert lists.total_pending == len(channels)
        assert lists.total_pending_bytes == 10 * len(channels)
        seen = [q.channel_id for q in lists.non_empty()]
        assert seen == sorted(set(channels))


@st.composite
def lifecycle_programs(draw):
    """A random program over the engine's entry-lifecycle repertoire.

    Each instruction is ``(op, channel, pick, size)``; ``pick`` indexes
    modularly into whatever population the op acts on, so every drawn
    program is executable regardless of interleaving.
    """
    n = draw(st.integers(min_value=1, max_value=50))
    return [
        (
            draw(st.sampled_from(["append", "dispatch", "slice", "park", "ack", "fail"])),
            draw(st.integers(min_value=0, max_value=1)),
            draw(st.integers(min_value=0, max_value=7)),
            draw(st.integers(min_value=1, max_value=500)),
        )
        for _ in range(n)
    ]


class TestIncrementalAccounting:
    """The O(1) counters must always equal brute-force recomputation."""

    @settings(max_examples=150, deadline=None)
    @given(program=lifecycle_programs())
    def test_counters_equal_recount(self, program):
        flow = Flow("f", "n0", "n1")
        lists = WaitingLists()
        channels = (lists.queue(0), lists.queue(1))
        parked = []  # (entry, channel_id) pairs, as the engine keeps them
        clock = 0.0
        for op, channel_id, pick, size in program:
            queue = channels[channel_id]
            pending = queue.pending()
            clock += 1e-6
            if op == "append":
                lists.enqueue(data_entry(flow, size, submit_time=clock), channel_id)
            elif op == "dispatch" and pending:
                # engine._dispatch: consume (may transition to SENT
                # while still owned), then remove.
                entry = pending[pick % len(pending)]
                entry.consume(entry.remaining)
                queue.remove(entry)
            elif op == "slice" and pending:
                # Multirail striping: partial consume, entry stays.
                entry = pending[pick % len(pending)]
                if entry.remaining > 1:
                    entry.consume(max(entry.remaining // 2, 1))
            elif op == "park" and pending:
                # engine.park_for_rendezvous: remove, then flip state.
                entry = pending[pick % len(pending)]
                if entry.state is EntryState.WAITING:
                    queue.remove(entry)
                    entry.state = EntryState.RDV_PENDING
                    parked.append((entry, channel_id))
            elif op == "ack" and parked:
                # engine._handle_rdv_ack: ready + re-enqueue.
                entry, origin = parked.pop(pick % len(parked))
                entry.state = EntryState.RDV_READY
                lists.enqueue(entry, origin)
            elif op == "fail" and parked:
                # engine._handle_rdv_timeout: back to eager chunking.
                entry, origin = parked.pop(pick % len(parked))
                entry.state = EntryState.WAITING
                entry.meta["no_rdv"] = True
                lists.enqueue(entry, origin)

            # Invariant: every incremental aggregate equals the
            # brute-force ground truth, after every single operation.
            total_count = 0
            total_bytes = 0
            for q in channels:
                count, n_bytes, oldest = q.recount()
                assert len(q) == count
                assert q.pending_bytes == n_bytes
                assert q.oldest_submit_time == oldest
                total_count += count
                total_bytes += n_bytes
            assert lists.total_pending == total_count
            assert lists.total_pending_bytes == total_bytes
