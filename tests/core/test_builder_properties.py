"""Property tests: the greedy builder only ever produces legal plans.

The ConstraintChecker encodes the paper's §3 constraint semantics
independently of the builder; fuzzing random queue contents against
random build parameters proves the two agree — i.e. no strategy built
on the shared builder can violate message-structure constraints.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import EngineConfig
from repro.core.constraints import ConstraintChecker
from repro.core.strategies._builder import build_from_queue
from repro.madeleine.message import Flow, Message, PackMode
from repro.madeleine.submit import EntryKind, EntryState, SubmitEntry
from repro.network.wire import PacketKind
from repro.sim import Simulator
from repro.util.units import KiB

from tests.core.helpers import StubEngine, make_driver


@st.composite
def queue_contents(draw):
    """Random waiting-list contents: several flows, mixed modes/sizes,
    some control entries, some rendezvous-ready bulk."""
    n_flows = draw(st.integers(min_value=1, max_value=4))
    flows = [
        Flow(f"f{i}", "n0", draw(st.sampled_from(["n1", "n2"])))
        for i in range(n_flows)
    ]
    entries = []
    n_entries = draw(st.integers(min_value=1, max_value=14))
    for _ in range(n_entries):
        kind = draw(
            st.sampled_from(["data", "data", "data", "control", "rdv_ready"])
        )
        if kind == "control":
            entries.append(
                SubmitEntry(
                    EntryKind.RDV_REQ,
                    draw(st.sampled_from(["n1", "n2"])),
                    0.0,
                    meta={"token": len(entries)},
                )
            )
            continue
        flow = draw(st.sampled_from(flows))
        message = Message(flow)
        size = draw(st.integers(min_value=1, max_value=64 * KiB))
        mode = draw(st.sampled_from(list(PackMode)))
        fragment = message.add_fragment(size, mode=mode)
        entry = SubmitEntry(EntryKind.DATA, flow.dst, 0.0, fragment=fragment, flow=flow)
        if kind == "rdv_ready":
            entry.state = EntryState.RDV_READY
        entries.append(entry)
    return entries


@st.composite
def build_params(draw):
    return {
        "max_items": draw(st.integers(min_value=1, max_value=20)),
        "skip_seeds": draw(st.integers(min_value=0, max_value=3)),
        "same_message_only": draw(st.booleans()),
        "allow_park": draw(st.booleans()),
        "protocol_only": draw(st.booleans()),
    }


class TestBuilderAlwaysLegal:
    @settings(
        max_examples=200,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(entries=queue_contents(), params=build_params())
    def test_plan_passes_checker(self, entries, params):
        sim = Simulator()
        driver, _ = make_driver(sim)
        engine = StubEngine([driver], sim=sim, config=EngineConfig())
        queue = engine.waiting.queue(0)
        for entry in entries:
            queue.append(entry)

        plan = build_from_queue(engine, driver, queue, **params)
        if plan is None:
            return
        # The checker sees the post-parking pending snapshot, exactly
        # like the engine's dispatch path.
        ConstraintChecker().check(plan, queue.pending())

    @settings(
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(entries=queue_contents(), params=build_params())
    def test_plan_respects_driver_limits(self, entries, params):
        sim = Simulator()
        driver, _ = make_driver(sim)
        engine = StubEngine([driver], sim=sim)
        queue = engine.waiting.queue(0)
        for entry in entries:
            queue.append(entry)

        plan = build_from_queue(engine, driver, queue, **params)
        if plan is None:
            return
        assert len(plan.items) <= max(params["max_items"], 1)
        if plan.kind is PacketKind.EAGER:
            assert plan.payload_bytes <= driver.caps.max_aggregate_size
        for item in plan.items:
            assert 0 < item.take <= item.entry.remaining

    @settings(
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(entries=queue_contents())
    def test_repeated_building_drains_queue(self, entries):
        """Dispatch-consume loops terminate: repeatedly building and
        consuming plans empties every queue (no livelock, no stuck
        entries) once parked entries are excluded."""
        sim = Simulator()
        driver, _ = make_driver(sim)
        engine = StubEngine([driver], sim=sim)
        queue = engine.waiting.queue(0)
        for entry in entries:
            queue.append(entry)

        for _ in range(10_000):
            plan = build_from_queue(engine, driver, queue, max_items=16)
            if plan is None:
                break
            for item in plan.items:
                item.entry.consume(item.take)
                if item.entry.state is EntryState.SENT:
                    queue.remove(item.entry)
        else:  # pragma: no cover - would be a livelock
            raise AssertionError("queue did not drain")
        assert not queue
