"""Tests for the plan cost/score model."""

import pytest

from repro.core.cost import CostModel
from repro.core.plan import PlanItem, TransferPlan
from repro.madeleine.message import Flow
from repro.network.wire import PacketKind
from repro.sim import Simulator

from tests.core.helpers import control_entry, data_entry, make_driver


@pytest.fixture
def driver():
    return make_driver(Simulator())[0]


@pytest.fixture
def cost():
    return CostModel()


def plan_of(driver, sizes, submit_time=0.0, kind=PacketKind.EAGER):
    flow = Flow("f", "n0", "n1")
    items = [
        PlanItem(data_entry(flow, s, submit_time=submit_time), s) for s in sizes
    ]
    return TransferPlan(driver, kind, "n1", 0, items)


class TestOccupancy:
    def test_matches_driver_costs(self, driver, cost):
        plan = plan_of(driver, [1024])
        occ = cost.occupancy(plan)
        assert occ > 0
        # Larger plans cost more.
        assert cost.occupancy(plan_of(driver, [2048])) > occ

    def test_aggregation_amortizes_startup(self, driver, cost):
        """One 8-segment packet is far cheaper than eight 1-segment packets."""
        one_big = cost.occupancy(plan_of(driver, [256] * 8))
        eight_small = 8 * cost.occupancy(plan_of(driver, [256]))
        assert one_big < 0.5 * eight_small

    def test_control_plan_cheap(self, driver, cost):
        ctl = TransferPlan(
            driver, PacketKind.RDV_REQ, "n1", 0, [PlanItem(control_entry("n1"), 16)]
        )
        assert cost.occupancy(ctl) < cost.occupancy(plan_of(driver, [4096]))


class TestScore:
    def test_bigger_payload_higher_score(self, driver, cost):
        small = cost.score(plan_of(driver, [64]), now=0.0)
        # aggregating 8 of them amortizes alpha -> higher value density
        big = cost.score(plan_of(driver, [64] * 8), now=0.0)
        assert big > small

    def test_aging_raises_score(self, driver, cost):
        plan = plan_of(driver, [64], submit_time=0.0)
        fresh = cost.score(plan, now=0.0)
        stale = cost.score(plan, now=1e-3)
        assert stale > fresh

    def test_control_bonus(self, driver, cost):
        ctl = TransferPlan(
            driver, PacketKind.RDV_REQ, "n1", 0, [PlanItem(control_entry("n1"), 16)]
        )
        tiny_data = plan_of(driver, [16])
        assert cost.score(ctl, now=0.0) > cost.score(tiny_data, now=0.0)

    def test_wire_bytes_includes_framing(self, driver, cost):
        from repro.network.wire import HEADER_BYTES_PER_SEGMENT, PACKET_HEADER_BYTES

        plan = plan_of(driver, [100, 100])
        assert cost.wire_bytes(plan) == PACKET_HEADER_BYTES + 2 * HEADER_BYTES_PER_SEGMENT + 200
