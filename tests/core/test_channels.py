"""Tests for channel assignment policies (pooled vs one-to-one)."""

import pytest

from repro.core.channels import OneToOneChannels, PooledChannels
from repro.core.waiting import ChannelQueue
from repro.madeleine.message import Flow
from repro.network.virtual import ChannelPool, TrafficClass
from repro.util.errors import ConfigurationError

from tests.core.helpers import control_entry, data_entry


class TestPooledChannels:
    def test_one_channel_per_class(self):
        policy = PooledChannels()
        pool = ChannelPool()
        policy.setup(pool, max_channels=8)
        assert len(pool) == len(TrafficClass)

    def test_entries_routed_by_class(self):
        policy = PooledChannels()
        pool = ChannelPool()
        policy.setup(pool, max_channels=8)
        bulk_flow = Flow("b", "n0", "n1", TrafficClass.BULK)
        ctrl = control_entry("n1")
        bulk = data_entry(bulk_flow, 10)
        assert policy.channel_for_entry(bulk) != policy.channel_for_entry(ctrl)
        # Same class -> same channel.
        assert policy.channel_for_entry(bulk) == policy.channel_for_entry(
            data_entry(bulk_flow, 20)
        )

    def test_service_order_control_first_bulk_last(self):
        policy = PooledChannels()
        pool = ChannelPool()
        policy.setup(pool, max_channels=8)
        ctrl_ch = policy.channel_for_entry(control_entry("n1"))
        bulk_ch = policy.channel_for_entry(
            data_entry(Flow("b", "n0", "n1", TrafficClass.BULK), 10)
        )
        queues = [ChannelQueue(bulk_ch), ChannelQueue(ctrl_ch)]
        ordered = policy.service_order(queues)
        assert ordered[0].channel_id == ctrl_ch
        assert ordered[-1].channel_id == bulk_ch

    def test_single_channel_mode(self):
        policy = PooledChannels(by_class=False)
        pool = ChannelPool()
        policy.setup(pool, max_channels=8)
        assert len(pool) == 1
        flows = [
            Flow("a", "n0", "n1", TrafficClass.BULK),
            Flow("b", "n0", "n1", TrafficClass.CONTROL),
        ]
        channels = {policy.channel_for_entry(data_entry(f, 10)) for f in flows}
        assert len(channels) == 1

    def test_too_few_channels_degrades_to_shared(self):
        policy = PooledChannels()
        pool = ChannelPool()
        policy.setup(pool, max_channels=2)  # fewer than 4 classes
        assert len(pool) == 1

    def test_setup_required(self):
        policy = PooledChannels()
        with pytest.raises(ConfigurationError):
            policy.channel_for_entry(control_entry("n1"))

    def test_priority_validation(self):
        with pytest.raises(ConfigurationError):
            PooledChannels(priority=(TrafficClass.BULK,))


class TestOneToOneChannels:
    def test_each_flow_gets_own_channel(self):
        policy = OneToOneChannels()
        pool = ChannelPool()
        policy.setup(pool, max_channels=8)
        f1, f2 = Flow("a", "n0", "n1"), Flow("b", "n0", "n1")
        c1 = policy.channel_for_entry(data_entry(f1, 10))
        c2 = policy.channel_for_entry(data_entry(f2, 10))
        assert c1 != c2
        # Stable mapping.
        assert policy.channel_for_entry(data_entry(f1, 20)) == c1

    def test_wraps_beyond_max_channels(self):
        policy = OneToOneChannels()
        pool = ChannelPool()
        policy.setup(pool, max_channels=2)
        flows = [Flow(f"f{i}", "n0", "n1") for i in range(5)]
        channels = {policy.channel_for_entry(data_entry(f, 10)) for f in flows}
        assert len(channels) <= 2
        assert len(pool) == 2

    def test_control_entries_share_first_channel(self):
        policy = OneToOneChannels()
        pool = ChannelPool()
        policy.setup(pool, max_channels=4)
        ch = policy.channel_for_entry(control_entry("n1"))
        assert ch == pool.channels[0].channel_id

    def test_service_order_rotates(self):
        policy = OneToOneChannels()
        pool = ChannelPool()
        policy.setup(pool, max_channels=4)
        queues = [ChannelQueue(i) for i in range(3)]
        first = [q.channel_id for q in policy.service_order(queues)]
        second = [q.channel_id for q in policy.service_order(queues)]
        assert sorted(first) == [0, 1, 2]
        assert first != second  # rotation

    def test_setup_required(self):
        with pytest.raises(ConfigurationError):
            OneToOneChannels().channel_for_entry(control_entry("n1"))
