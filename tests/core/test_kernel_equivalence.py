"""Batched kernel vs scalar reference: behavioural equivalence.

The array-batched decision kernel (:mod:`repro.core.kernel`) must be a
pure *speed* change: every observable decision — which entries travel,
in which packets, in which order, after how many candidate evaluations
— has to match the pre-batching object walk bit for bit.  These tests
hold the two implementations together:

* builder equivalence over randomized mixed windows (hypothesis);
* search equivalence: same winner, same ``candidates_evaluated``,
  across a (depth × budget) grid;
* whole-run dispatch-order equivalence on scaled-down E2/E5 workloads;
* the same whole-run checks against the compiled kernel
  (``repro.core._kernel_hot_c``) when one is installed, skipped
  otherwise.

The reference path is selected in-process by clearing the strategies'
module-level batching flags — exactly what ``REPRO_KERNEL=reference``
does at import time.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernel
from repro.core.config import EngineConfig
from repro.core.strategies import _builder
from repro.core.strategies import search as search_mod
from repro.core.strategies.search import BoundedSearchStrategy
from repro.madeleine.message import Flow, PackMode
from repro.middleware import uniform_small_flows
from repro.middleware.mpi_like import StreamApp
from repro.runtime import Cluster, run_session
from repro.util.units import us

from tests.core.helpers import StubEngine, control_entry, data_entry, make_driver
from repro.sim import Simulator


def plan_signature(plan):
    """Order-sensitive, object-identity-free fingerprint of a plan."""
    if plan is None:
        return None
    return (
        str(plan.kind),
        plan.dst,
        plan.channel_id,
        tuple(
            (
                item.entry.flow.name if item.entry.flow is not None else None,
                item.entry.fragment.index if item.entry.fragment is not None else None,
                item.entry.kind.value,
                item.entry.offset,
                item.take,
            )
            for item in plan.items
        ),
    )


@pytest.fixture
def reference_mode(monkeypatch):
    """Force the scalar object-walk path, as REPRO_KERNEL=reference does."""

    def activate():
        monkeypatch.setattr(_builder, "_BATCHING_ENABLED", False)
        monkeypatch.setattr(search_mod, "_BATCHING_ENABLED", False)

    yield activate
    monkeypatch.undo()


# ----------------------------------------------------------------------
# builder equivalence over randomized mixed windows
# ----------------------------------------------------------------------
entry_spec = st.tuples(
    st.integers(min_value=1, max_value=64 * 1024),  # size (crosses rdv threshold)
    st.integers(min_value=0, max_value=3),  # flow index
    st.sampled_from([PackMode.CHEAPER, PackMode.LATER, PackMode.SAFER]),
    st.booleans(),  # second destination
    st.integers(min_value=0, max_value=20),  # control marker (0 => control entry)
)


def _load_queue(engine, specs):
    flows_n1 = [Flow(f"f{i}", "n0", "n1") for i in range(4)]
    flows_n2 = [Flow(f"g{i}", "n0", "n2") for i in range(4)]
    queue = engine.waiting.queue(0)
    for size, flow_idx, mode, alt_dst, marker in specs:
        if marker == 0:
            queue.append(control_entry(dst="n1", token=size))
            continue
        flow = (flows_n2 if alt_dst else flows_n1)[flow_idx]
        queue.append(data_entry(flow, size, mode=mode))
    return queue


class TestBuilderEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        specs=st.lists(entry_spec, min_size=1, max_size=20),
        skip_seeds=st.integers(min_value=0, max_value=6),
        max_items=st.integers(min_value=1, max_value=16),
    )
    def test_array_walk_matches_object_walk(self, specs, skip_seeds, max_items):
        """Same window, same knobs → identical plan, batched vs object."""
        sim = Simulator()
        driver, _ = make_driver(sim)
        engine = StubEngine([driver], sim=sim)
        queue = _load_queue(engine, specs)

        # allow_park=False keeps both walks side-effect free, so they
        # can run over the very same queue back to back.
        fast = _builder.build_from_queue(
            engine, driver, queue,
            max_items=max_items, skip_seeds=skip_seeds, allow_park=False,
        )
        ref = _builder.build_from_queue(
            engine, driver, queue,
            max_items=max_items, skip_seeds=skip_seeds, allow_park=False,
            pending=queue.pending_view(engine.config.lookahead_window),
        )
        assert plan_signature(fast) == plan_signature(ref)

    @settings(max_examples=40, deadline=None)
    @given(specs=st.lists(entry_spec, min_size=1, max_size=16))
    def test_parking_decisions_match(self, specs):
        """allow_park=True parks the same entries in the same order."""

        def run(batched):
            sim = Simulator()
            driver, _ = make_driver(sim)
            engine = StubEngine([driver], sim=sim)
            queue = _load_queue(engine, specs)
            saved = _builder._BATCHING_ENABLED
            _builder._BATCHING_ENABLED = batched
            try:
                plan = _builder.build_from_queue(
                    engine, driver, queue, max_items=8, allow_park=True
                )
            finally:
                _builder._BATCHING_ENABLED = saved
            parked = [
                (e.flow.name if e.flow else None, e.remaining)
                for e in engine.parked
            ]
            return plan_signature(plan), parked

        assert run(batched=True) == run(batched=False)


# ----------------------------------------------------------------------
# search equivalence: winner + budget accounting across depths/budgets
# ----------------------------------------------------------------------
def _loaded_search_engine(depth, budget, sizes=None):
    holder = []

    def factory():
        strategy = BoundedSearchStrategy(budget=budget)
        holder.append(strategy)
        return strategy

    cluster = Cluster(
        seed=0, strategy=factory, config=EngineConfig(lookahead_window=32)
    )
    engine = cluster.engine("n0")
    flows = [Flow(f"f{i}", "n0", "n1") for i in range(8)]
    for i in range(depth):
        size = 256 if sizes is None else sizes[i % len(sizes)]
        engine._enqueue(data_entry(flows[i % 8], size))
    return engine, holder[0]


class TestSearchBudgetEquivalence:
    @pytest.mark.parametrize("depth", [1, 4, 16, 64, 256])
    @pytest.mark.parametrize("budget", [1, 3, 8, 64])
    def test_winner_and_evaluations_match(self, depth, budget, reference_mode):
        """Batched and reference search agree on the winning plan and on
        exactly how many candidates the budget bought, at every
        (depth, budget) corner — including budgets that truncate
        mid-seed and depths that exhaust before the budget does."""
        sizes = [64, 256, 1024, 4096, 96, 513]  # mixed, all eager-sized
        engine_b, strat_b = _loaded_search_engine(depth, budget, sizes)
        plan_b = strat_b.make_plan(engine_b, engine_b.drivers[0])
        evals_b = strat_b.last_evaluated

        reference_mode()
        engine_r, strat_r = _loaded_search_engine(depth, budget, sizes)
        plan_r = strat_r.make_plan(engine_r, engine_r.drivers[0])
        evals_r = strat_r.last_evaluated

        assert plan_signature(plan_b) == plan_signature(plan_r)
        assert evals_b == evals_r

    def test_accounting_accumulates_identically(self, reference_mode):
        """candidates_evaluated over a run of decisions, not just one."""

        def total(make_reference):
            if make_reference:
                reference_mode()
            engine, strategy = _loaded_search_engine(64, 16, [128, 700, 2048])
            driver = engine.drivers[0]
            totals = []
            for _ in range(5):
                strategy.make_plan(engine, driver)
                for queue in engine.waiting.non_empty():
                    queue.invalidate_caches()
                totals.append(strategy.candidates_evaluated)
            return totals

        assert total(False) == total(True)


# ----------------------------------------------------------------------
# whole-run dispatch order: scaled-down E2 / E5 workloads
# ----------------------------------------------------------------------
def _record_dispatches(cluster):
    """Wrap every engine's strategy: ordered log of dispatched plans."""
    log = []
    for name in cluster.node_names:
        engine = cluster.engine(name)
        strategy = getattr(engine, "strategy", None)
        if strategy is None:
            continue
        real = strategy.make_plan

        def recording(engine_, driver_, _real=real, _node=name):
            plan = _real(engine_, driver_)
            if plan is not None and hasattr(plan, "items"):
                log.append((_node, plan_signature(plan)))
            return plan

        strategy.make_plan = recording
    return log


def _run_e2_like():
    cluster = Cluster(seed=102)
    log = _record_dispatches(cluster)
    apps = uniform_small_flows(4, size=256, count=40, interval=1 * us)
    run_session(cluster, [a.install for a in apps])
    return log


def _run_e5_like(budget):
    cluster = Cluster(
        n_nodes=3,
        seed=5,
        strategy=lambda: BoundedSearchStrategy(budget=budget),
    )
    log = _record_dispatches(cluster)
    apps = [
        StreamApp(
            "n0",
            "n1" if i % 2 == 0 else "n2",
            size=256 * (1 + i),
            count=30,
            interval=2 * us,
            size_sigma=0.8,
            name=f"s{i}",
        )
        for i in range(4)
    ]
    run_session(cluster, [a.install for a in apps])
    return log


class TestDispatchOrderEquivalence:
    def test_e2_dispatch_order_identical(self, reference_mode):
        batched = _run_e2_like()
        assert batched, "workload produced no dispatches"
        reference_mode()
        assert batched == _run_e2_like()

    @pytest.mark.parametrize("budget", [1, 8, 64])
    def test_e5_dispatch_order_identical(self, budget, reference_mode):
        batched = _run_e5_like(budget)
        assert batched, "workload produced no dispatches"
        reference_mode()
        assert batched == _run_e5_like(budget)


# ----------------------------------------------------------------------
# compiled kernel (REPRO_KERNEL=compiled), when one is installed
# ----------------------------------------------------------------------
@pytest.fixture
def compiled_kernel(monkeypatch):
    """Swap the kernel facade onto the compiled module, if importable."""
    compiled = pytest.importorskip(
        "repro.core._kernel_hot_c",
        reason="no compiled kernel built (tools/build_kernel.py)",
    )
    for name in (
        "PendingArrays",
        "DriverConstants",
        "SeedBuild",
        "build_eager_arrays",
        "probe_uniform_seeds",
        "oversized_waiting_indices",
        "score_eager_packed",
    ):
        monkeypatch.setattr(kernel, name, getattr(compiled, name))
    yield compiled


class TestCompiledKernelConsistency:
    def test_e2_dispatch_order_identical(self, compiled_kernel, reference_mode):
        compiled = _run_e2_like()
        assert compiled, "workload produced no dispatches"
        reference_mode()
        assert compiled == _run_e2_like()

    def test_search_matches_reference(self, compiled_kernel, reference_mode):
        engine_c, strat_c = _loaded_search_engine(64, 32, [256, 900])
        plan_c = strat_c.make_plan(engine_c, engine_c.drivers[0])
        reference_mode()
        engine_r, strat_r = _loaded_search_engine(64, 32, [256, 900])
        plan_r = strat_r.make_plan(engine_r, engine_r.drivers[0])
        assert plan_signature(plan_c) == plan_signature(plan_r)
        assert strat_c.last_evaluated == strat_r.last_evaluated
