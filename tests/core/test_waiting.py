"""Tests for waiting packet lists."""

import pytest

from repro.core.waiting import ChannelQueue, WaitingLists
from repro.madeleine.message import Flow
from repro.madeleine.submit import EntryState
from repro.util.errors import InternalError

from tests.core.helpers import data_entry


@pytest.fixture
def flow():
    return Flow("f", "n0", "n1")


class TestChannelQueue:
    def test_arrival_order(self, flow):
        q = ChannelQueue(0)
        entries = [data_entry(flow, 10) for _ in range(3)]
        for e in entries:
            q.append(e)
        assert q.pending() == entries

    def test_window_limits_view(self, flow):
        q = ChannelQueue(0)
        entries = [data_entry(flow, 10) for _ in range(5)]
        for e in entries:
            q.append(e)
        assert q.pending(window=2) == entries[:2]

    def test_sent_entries_invisible(self, flow):
        q = ChannelQueue(0)
        a, b = data_entry(flow, 10), data_entry(flow, 10)
        q.append(a)
        q.append(b)
        a.consume(10)  # SENT
        assert q.pending() == [b]
        assert len(q) == 1

    def test_rdv_ready_visible(self, flow):
        q = ChannelQueue(0)
        e = data_entry(flow, 10)
        q.append(e)
        e.state = EntryState.RDV_READY
        assert q.pending() == [e]

    def test_rdv_pending_invisible(self, flow):
        q = ChannelQueue(0)
        e = data_entry(flow, 10)
        q.append(e)
        e.state = EntryState.RDV_PENDING
        assert q.pending() == []
        assert not q

    def test_remove(self, flow):
        q = ChannelQueue(0)
        e = data_entry(flow, 10)
        q.append(e)
        q.remove(e)
        assert q.pending() == []

    def test_remove_missing_rejected(self, flow):
        q = ChannelQueue(0)
        with pytest.raises(InternalError):
            q.remove(data_entry(flow, 10))

    def test_double_append_rejected(self, flow):
        q0, q1 = ChannelQueue(0), ChannelQueue(1)
        e = data_entry(flow, 10)
        q0.append(e)
        with pytest.raises(InternalError):
            q1.append(e)

    def test_counters_track_consume_and_state(self, flow):
        q = ChannelQueue(0)
        a, b = data_entry(flow, 100), data_entry(flow, 60)
        q.append(a)
        q.append(b)
        assert (len(q), q.pending_bytes) == (2, 160)
        a.consume(40)  # partial dispatch (striping slice)
        assert (len(q), q.pending_bytes) == (2, 120)
        a.consume(60)  # SENT
        assert (len(q), q.pending_bytes) == (1, 60)
        b.state = EntryState.RDV_PENDING  # parked in place
        assert (len(q), q.pending_bytes) == (0, 0)
        b.state = EntryState.RDV_READY  # ACK arrived
        assert (len(q), q.pending_bytes) == (1, 60)
        assert q.recount() == (1, 60, b.submit_time)

    def test_version_bumps_on_mutation(self, flow):
        q = ChannelQueue(0)
        v0 = q.version
        e = data_entry(flow, 10)
        q.append(e)
        v1 = q.version
        assert v1 > v0
        e.consume(4)
        v2 = q.version
        assert v2 > v1
        q.remove(e)
        assert q.version > v2

    def test_pending_snapshot_cached_until_mutation(self, flow):
        q = ChannelQueue(0)
        entries = [data_entry(flow, 10) for _ in range(4)]
        for e in entries:
            q.append(e)
        assert q.pending(2) == entries[:2]
        # Narrower window served from the cached snapshot.
        assert q.pending(1) == entries[:1]
        q.append(data_entry(flow, 10))
        assert len(q.pending()) == 5

    def test_compaction_preserves_order(self, flow):
        q = ChannelQueue(0)
        entries = [data_entry(flow, 10) for _ in range(200)]
        for e in entries:
            q.append(e)
        for e in entries[:150]:  # force compaction via many removals
            q.remove(e)
        assert q.pending() == entries[150:]
        assert q.recount() == (50, 500, entries[150].submit_time)

    def test_slots_bounded_under_state_flip_retirement(self, flow):
        """Regression: entries that exit by flipping to SENT (consume to
        zero — the normal dispatch path) are nulled during pruning, but
        compaction used to run only from ``remove()``.  A workload that
        never calls remove() therefore grew ``_slots`` without bound.
        N append/flip cycles must keep the slot list near the live set,
        not near N."""
        q = ChannelQueue(0)
        cycles = 2000
        for i in range(cycles):
            e = data_entry(flow, 10)
            q.append(e)
            e.consume(10)  # SENT: retired by state flip, never removed
            q.pending()  # a read, as every decision performs
        assert len(q) == 0
        # Bounded by the compaction hysteresis, not by the cycle count.
        assert len(q._slots) < 200

    def test_slots_bounded_with_persistent_tail(self, flow):
        """Same, with a live tail entry keeping the queue non-empty the
        whole time (mid-queue retirement, not just head advance)."""
        q = ChannelQueue(0)
        keeper = data_entry(flow, 10)
        q.append(keeper)
        for i in range(2000):
            e = data_entry(flow, 10)
            q.append(e)
            e.consume(10)
            q.pending()
        assert q.pending() == [keeper]
        assert len(q._slots) < 200

    def test_oldest_submit_time(self, flow):
        q = ChannelQueue(0)
        assert q.oldest_submit_time is None
        q.append(data_entry(flow, 10, submit_time=2.0))
        q.append(data_entry(flow, 10, submit_time=1.0))
        assert q.oldest_submit_time == 2.0  # arrival order, not time order

    def test_pending_bytes(self, flow):
        q = ChannelQueue(0)
        q.append(data_entry(flow, 100))
        q.append(data_entry(flow, 50))
        assert q.pending_bytes == 150

    def test_bool(self, flow):
        q = ChannelQueue(0)
        assert not q
        q.append(data_entry(flow, 10))
        assert q


class TestWaitingLists:
    def test_enqueue_routes_by_channel(self, flow):
        w = WaitingLists()
        a, b = data_entry(flow, 10), data_entry(flow, 20)
        w.enqueue(a, 0)
        w.enqueue(b, 3)
        assert w.queue(0).pending() == [a]
        assert w.queue(3).pending() == [b]

    def test_non_empty_in_channel_order(self, flow):
        w = WaitingLists()
        w.enqueue(data_entry(flow, 1), 5)
        w.enqueue(data_entry(flow, 1), 2)
        w.queue(7)  # empty queue, must not appear
        assert [q.channel_id for q in w.non_empty()] == [2, 5]

    def test_totals(self, flow):
        w = WaitingLists()
        w.enqueue(data_entry(flow, 100, submit_time=1.0), 0)
        w.enqueue(data_entry(flow, 50, submit_time=0.5), 1)
        assert w.total_pending == 2
        assert w.total_pending_bytes == 150
        assert w.oldest_submit_time == 0.5
        assert bool(w)

    def test_empty_totals(self):
        w = WaitingLists()
        assert w.total_pending == 0
        assert w.oldest_submit_time is None
        assert not bool(w)
