"""Tests for posted-receive-gated rendezvous (EngineConfig.rdv_requires_recv).

The flow-controlled Madeleine semantics: a sender's rendezvous request
is only acknowledged once the receiving application has posted a
matching receive, so bulk data never lands before the receiver has
somewhere to put it.
"""

import pytest

from repro.core.config import EngineConfig
from repro.runtime.cluster import Cluster
from repro.util.errors import ConfigurationError
from repro.util.units import KiB


def gated_cluster(**kwargs):
    kwargs.setdefault("config", EngineConfig(rdv_requires_recv=True))
    return Cluster(**kwargs)


class TestGating:
    def test_bulk_stalls_without_posted_receive(self):
        c = gated_cluster()
        api = c.api("n0")
        flow = api.open_flow("n1")
        big = api.send(flow, 256 * KiB, header_size=0)
        c.run_until_idle()
        assert not big.completion.done
        assert c.engine("n1").deferred_rendezvous == 1

    def test_posting_releases_the_bulk(self):
        c = gated_cluster()
        api0, api1 = c.api("n0"), c.api("n1")
        flow = api0.open_flow("n1")
        big = api0.send(flow, 256 * KiB, header_size=0)
        c.run_until_idle()
        assert not big.completion.done
        api1.post_receive(flow)
        c.run_until_idle()
        assert big.completion.done
        assert c.engine("n1").deferred_rendezvous == 0

    def test_pre_posted_credit_avoids_stall(self):
        c = gated_cluster()
        api0, api1 = c.api("n0"), c.api("n1")
        flow = api0.open_flow("n1")
        api1.post_receive(flow)
        big = api0.send(flow, 256 * KiB, header_size=0)
        c.run_until_idle()
        assert big.completion.done

    def test_eager_traffic_needs_no_credits(self):
        c = gated_cluster()
        api = c.api("n0")
        flow = api.open_flow("n1")
        msgs = [api.send(flow, 1 * KiB) for _ in range(5)]
        c.run_until_idle()
        assert all(m.completion.done for m in msgs)

    def test_one_credit_per_message(self):
        c = gated_cluster()
        api0, api1 = c.api("n0"), c.api("n1")
        flow = api0.open_flow("n1")
        first = api0.send(flow, 128 * KiB, header_size=0)
        second = api0.send(flow, 128 * KiB, header_size=0)
        c.run_until_idle()
        api1.post_receive(flow)
        c.run_until_idle()
        assert first.completion.done
        assert not second.completion.done
        api1.post_receive(flow)
        c.run_until_idle()
        assert second.completion.done

    def test_multi_fragment_message_consumes_one_credit(self):
        """Two oversized fragments of ONE message ride one credit."""
        c = gated_cluster()
        api0, api1 = c.api("n0"), c.api("n1")
        flow = api0.open_flow("n1")
        session = api0.begin(flow)
        session.pack(100 * KiB)
        session.pack(100 * KiB)
        message = session.flush()
        c.run_until_idle()
        assert not message.completion.done
        api1.post_receive(flow, count=1)
        c.run_until_idle()
        assert message.completion.done

    def test_banked_credits(self):
        c = gated_cluster()
        api0, api1 = c.api("n0"), c.api("n1")
        flow = api0.open_flow("n1")
        api1.post_receive(flow, count=3)
        msgs = [api0.send(flow, 64 * KiB, header_size=0) for _ in range(3)]
        c.run_until_idle()
        assert all(m.completion.done for m in msgs)

    def test_default_config_needs_no_credits(self):
        c = Cluster()
        api = c.api("n0")
        flow = api.open_flow("n1")
        big = api.send(flow, 256 * KiB)
        c.run_until_idle()
        assert big.completion.done

    def test_works_with_legacy_engine(self):
        c = gated_cluster(engine="legacy")
        api0, api1 = c.api("n0"), c.api("n1")
        flow = api0.open_flow("n1")
        big = api0.send(flow, 256 * KiB, header_size=0)
        c.run_until_idle()
        assert not big.completion.done
        api1.post_receive(flow)
        c.run_until_idle()
        assert big.completion.done


class TestValidation:
    def test_post_receive_wrong_direction(self):
        c = gated_cluster()
        api0 = c.api("n0")
        flow = api0.open_flow("n1")
        with pytest.raises(ConfigurationError):
            api0.post_receive(flow)  # outgoing flow, not incoming

    def test_post_receive_bad_count(self):
        c = gated_cluster()
        api0, api1 = c.api("n0"), c.api("n1")
        flow = api0.open_flow("n1")
        with pytest.raises(ConfigurationError):
            api1.post_receive(flow, count=0)
