"""Tests for the strategy database: registry + behavioural differences."""

import pytest

from repro.core.config import EngineConfig
from repro.core.strategies import (
    AggregationStrategy,
    BoundedSearchStrategy,
    EagerStrategy,
    NagleStrategy,
    STRATEGY_TYPES,
    Strategy,
    make_strategy,
    register_strategy,
)
from repro.runtime.cluster import Cluster
from repro.util.errors import ConfigurationError
from repro.util.units import KiB, us


class TestRegistry:
    def test_predefined_strategies_registered(self):
        assert {"eager", "aggregate", "search", "nagle", "legacy"} <= set(STRATEGY_TYPES)

    def test_make_strategy(self):
        assert isinstance(make_strategy("aggregate"), AggregationStrategy)
        assert isinstance(make_strategy("search", budget=4), BoundedSearchStrategy)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_strategy("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):

            @register_strategy("eager")
            class Dup(Strategy):
                def make_plan(self, engine, driver):
                    return None

    def test_non_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            register_strategy("bogus-type")(object)

    def test_extension_point(self):
        """The paper's 'database can be easily extended' claim, executable."""

        @register_strategy("test-custom")
        class CustomStrategy(AggregationStrategy):
            pass

        try:
            assert isinstance(make_strategy("test-custom"), CustomStrategy)
            c = Cluster(strategy="test-custom")
            api = c.api("n0")
            m = api.send(api.open_flow("n1"), 128)
            c.run_until_idle()
            assert m.completion.done
        finally:
            del STRATEGY_TYPES["test-custom"]


def run_many_small(strategy, n_flows=8, per_flow=16, **cluster_kwargs):
    c = Cluster(strategy=strategy, **cluster_kwargs)
    api = c.api("n0")
    flows = [api.open_flow("n1") for _ in range(n_flows)]
    messages = []
    for f in flows:
        for _ in range(per_flow):
            messages.append(api.send(f, 256))
    c.run_until_idle()
    assert all(m.completion.done for m in messages)
    return c.report()


class TestBehaviouralContrasts:
    def test_aggregate_fewer_transactions_than_eager(self):
        eager = run_many_small("eager")
        aggregated = run_many_small("aggregate")
        assert aggregated.network_transactions < eager.network_transactions / 2
        assert aggregated.aggregation_ratio > 2.0
        assert eager.aggregation_ratio == pytest.approx(1.0)

    def test_aggregate_higher_throughput(self):
        eager = run_many_small("eager")
        aggregated = run_many_small("aggregate")
        assert aggregated.throughput > eager.throughput

    def test_search_at_least_as_good_as_greedy_on_transactions(self):
        greedy = run_many_small("aggregate")
        searched = run_many_small(lambda: BoundedSearchStrategy(budget=64))
        assert searched.network_transactions <= greedy.network_transactions * 1.5

    def test_search_budget_one_runs(self):
        report = run_many_small(lambda: BoundedSearchStrategy(budget=1))
        assert report.messages == 8 * 16

    def test_nagle_improves_aggregation_under_sparse_arrivals(self):
        """A short artificial delay lets sparse arrivals coalesce."""

        def sparse(strategy, config=None):
            c = Cluster(strategy=strategy, config=config, seed=3)
            api = c.api("n0")
            flows = [api.open_flow("n1") for _ in range(4)]
            from repro.sim import Process

            def sender(flow):
                for _ in range(25):
                    yield 2.0 * us
                    api.send(flow, 128)

            for f in flows:
                Process(c.sim, sender(f))
            c.run_until_idle()
            return c.report()

        plain = sparse("aggregate")
        nagled = sparse(
            lambda: NagleStrategy(),
            config=EngineConfig(nagle_delay=8 * us, nagle_min_bytes=2 * KiB),
        )
        assert nagled.aggregation_ratio > plain.aggregation_ratio
        assert nagled.network_transactions < plain.network_transactions

    def test_aggregation_strategy_custom_max_items(self):
        report = run_many_small(lambda: AggregationStrategy(max_items=2))
        # At most 2 segments per packet -> ratio can't exceed 2.
        assert report.aggregation_ratio <= 2.0 + 1e-9


class TestSearchBudgetAccounting:
    """The bounded search must not burn budget on impossible seeds."""

    def _loaded_single_flow_engine(self, n_entries, budget):
        holder = []

        def factory():
            strategy = BoundedSearchStrategy(budget=budget)
            holder.append(strategy)
            return strategy

        from tests.core.helpers import data_entry
        from repro.madeleine.message import Flow

        cluster = Cluster(seed=0, strategy=factory)
        engine = cluster.engine("n0")
        flow = Flow("f", "n0", "n1")
        for _ in range(n_entries):
            engine._enqueue(data_entry(flow, 256))
        return engine, holder[0]

    def test_exhausted_queue_stops_consuming_budget(self):
        # A single non-deferrable flow: skipping the head (seed >= 1)
        # blocks every later entry of the flow, so only seed 0 can ever
        # produce a plan.  The search must charge the widths of seed 0
        # plus exactly ONE probe discovering that seed 1 is impossible,
        # then move on — not one probe per remaining seed.
        engine, strategy = self._loaded_single_flow_engine(n_entries=8, budget=32)
        driver = engine.drivers[0]
        plan = strategy.make_plan(engine, driver)
        assert plan is not None
        n_widths = len(BoundedSearchStrategy._widths(driver.max_segments_per_packet()))
        assert strategy.last_evaluated == n_widths + 1
        assert strategy.candidates_evaluated == strategy.last_evaluated

    def test_budget_still_caps_evaluations(self):
        engine, strategy = self._loaded_single_flow_engine(n_entries=8, budget=2)
        driver = engine.drivers[0]
        plan = strategy.make_plan(engine, driver)
        assert plan is not None
        assert strategy.last_evaluated == 2
