"""Tests for the auto meta-strategy (dynamic policy selection)."""

import pytest

from repro.core.strategies import AutoStrategy, make_strategy
from repro.runtime import Cluster, run_session
from repro.sim import Process
from repro.util.errors import ConfigurationError
from repro.util.units import KiB, us


class TestConstruction:
    def test_registered(self):
        assert isinstance(make_strategy("auto"), AutoStrategy)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AutoStrategy(deep_backlog=0)
        with pytest.raises(ConfigurationError):
            AutoStrategy(hold_delay=-1.0)


class TestRegimeSelection:
    def test_deep_backlog_uses_aggregation(self):
        holder = {}

        def factory():
            strategy = AutoStrategy(deep_backlog=4)
            holder.setdefault("s", strategy)
            return strategy

        cluster = Cluster(strategy=factory, seed=1)
        api = cluster.api("n0")
        flows = [api.open_flow("n1") for _ in range(8)]
        for flow in flows:
            for _ in range(10):
                api.send(flow, 256)
        cluster.run_until_idle()
        strategy = holder["s"]
        assert strategy.selections["deep"] > 0

    def test_sparse_arrivals_use_nagle(self):
        holder = {}

        def factory():
            strategy = AutoStrategy(deep_backlog=50, hold_delay=5 * us)
            holder.setdefault("s", strategy)
            return strategy

        cluster = Cluster(strategy=factory, seed=1)
        api = cluster.api("n0")
        flow = api.open_flow("n1")

        def slow_sender():
            for _ in range(10):
                yield 10 * us
                api.send(flow, 64)

        Process(cluster.sim, slow_sender())
        cluster.run_until_idle()
        strategy = holder["s"]
        assert strategy.selections["sparse"] > 0
        assert cluster.engine("n0").stats.holds > 0

    def test_all_messages_delivered_both_regimes(self):
        cluster = Cluster(strategy=lambda: AutoStrategy(deep_backlog=6), seed=2)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        burst = [api.send(flow, 256) for _ in range(20)]

        trickle = []

        def trickler():
            for _ in range(5):
                yield 20 * us
                trickle.append(api.send(flow, 64))

        Process(cluster.sim, trickler())
        cluster.run_until_idle()
        assert all(m.completion.done for m in burst + trickle)

    def test_auto_matches_aggregate_under_saturation(self):
        """With a permanently deep backlog, auto == aggregate."""

        def run(strategy):
            cluster = Cluster(strategy=strategy, seed=3)
            api = cluster.api("n0")
            flows = [api.open_flow("n1") for _ in range(8)]
            for f in flows:
                for _ in range(25):
                    api.send(f, 256)
            cluster.run_until_idle()
            return cluster.report()

        auto = run(lambda: AutoStrategy(deep_backlog=2))
        plain = run("aggregate")
        assert auto.network_transactions == plain.network_transactions
        assert auto.latency.mean == pytest.approx(plain.latency.mean)
