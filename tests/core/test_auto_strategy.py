"""Tests for the auto meta-strategy (dynamic policy selection)."""

import pytest

from repro.core.strategies import AutoStrategy, make_strategy
from repro.runtime import Cluster, run_session
from repro.sim import Process
from repro.util.errors import ConfigurationError
from repro.util.units import KiB, us


class TestConstruction:
    def test_registered(self):
        assert isinstance(make_strategy("auto"), AutoStrategy)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AutoStrategy(deep_backlog=0)
        with pytest.raises(ConfigurationError):
            AutoStrategy(hold_delay=-1.0)


class TestRegimeSelection:
    def test_deep_backlog_uses_aggregation(self):
        holder = {}

        def factory():
            strategy = AutoStrategy(deep_backlog=4)
            holder.setdefault("s", strategy)
            return strategy

        cluster = Cluster(strategy=factory, seed=1)
        api = cluster.api("n0")
        flows = [api.open_flow("n1") for _ in range(8)]
        for flow in flows:
            for _ in range(10):
                api.send(flow, 256)
        cluster.run_until_idle()
        strategy = holder["s"]
        assert strategy.selections["deep"] > 0

    def test_sparse_arrivals_use_nagle(self):
        holder = {}

        def factory():
            strategy = AutoStrategy(deep_backlog=50, hold_delay=5 * us)
            holder.setdefault("s", strategy)
            return strategy

        cluster = Cluster(strategy=factory, seed=1)
        api = cluster.api("n0")
        flow = api.open_flow("n1")

        def slow_sender():
            for _ in range(10):
                yield 10 * us
                api.send(flow, 64)

        Process(cluster.sim, slow_sender())
        cluster.run_until_idle()
        strategy = holder["s"]
        assert strategy.selections["sparse"] > 0
        assert cluster.engine("n0").stats.holds > 0

    def test_all_messages_delivered_both_regimes(self):
        cluster = Cluster(strategy=lambda: AutoStrategy(deep_backlog=6), seed=2)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        burst = [api.send(flow, 256) for _ in range(20)]

        trickle = []

        def trickler():
            for _ in range(5):
                yield 20 * us
                trickle.append(api.send(flow, 64))

        Process(cluster.sim, trickler())
        cluster.run_until_idle()
        assert all(m.completion.done for m in burst + trickle)

    def test_auto_matches_aggregate_under_saturation(self):
        """With a permanently deep backlog, auto == aggregate."""

        def run(strategy):
            cluster = Cluster(strategy=strategy, seed=3)
            api = cluster.api("n0")
            flows = [api.open_flow("n1") for _ in range(8)]
            for f in flows:
                for _ in range(25):
                    api.send(f, 256)
            cluster.run_until_idle()
            return cluster.report()

        auto = run(lambda: AutoStrategy(deep_backlog=2))
        plain = run("aggregate")
        assert auto.network_transactions == plain.network_transactions
        assert auto.latency.mean == pytest.approx(plain.latency.mean)


class TestMinDwellHysteresis:
    """min_dwell > 1 stops an alternating backlog from thrashing."""

    @staticmethod
    def fake_engine(backlog):
        from types import SimpleNamespace

        # Empty queue set: both inner strategies return None without
        # touching the driver, so regime selection runs in isolation.
        return SimpleNamespace(
            waiting=SimpleNamespace(total_pending=backlog),
            queues_for=lambda driver: [],
        )

    def drive(self, strategy, backlogs):
        from types import SimpleNamespace

        driver = SimpleNamespace(max_segments_per_packet=lambda: 8)
        for backlog in backlogs:
            strategy.make_plan(self.fake_engine(backlog), driver)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AutoStrategy(min_dwell=0)

    def test_default_dwell_keeps_immediate_switching(self):
        """min_dwell=1 is the exact pre-hysteresis behaviour: a strict
        alternation flips the policy on every single decision."""
        strategy = AutoStrategy(deep_backlog=8)
        self.drive(strategy, [0, 20] * 20)
        assert strategy.selections == {"deep": 20, "sparse": 20}

    def test_oscillating_trace_does_not_thrash(self):
        strategy = AutoStrategy(deep_backlog=8, min_dwell=4)
        self.drive(strategy, [0, 20] * 20)
        assert strategy.selections == {"deep": 0, "sparse": 40}
        assert strategy.explain_last()["regime"] == "sparse"

    def test_sustained_shift_still_switches(self):
        strategy = AutoStrategy(deep_backlog=8, min_dwell=3)
        self.drive(strategy, [0, 0, 20, 20, 20, 20])
        # Decisions 3-4 ride out the dwell on nagle; decision 5 commits.
        assert strategy.selections["deep"] == 2
        assert strategy.explain_last()["regime"] == "deep"
