"""Integration tests for the optimizing engine: activation discipline,
dispatch, rendezvous protocol, holds, multirail."""

import pytest

from repro.core.config import EngineConfig
from repro.core.strategies import NagleStrategy
from repro.madeleine.message import PackMode
from repro.network.virtual import TrafficClass
from repro.runtime.cluster import Cluster
from repro.util.errors import ConfigurationError
from repro.util.tracing import TraceRecorder
from repro.util.units import KiB, us


def two_node_cluster(**kwargs):
    kwargs.setdefault("n_nodes", 2)
    return Cluster(**kwargs)


class TestActivationDiscipline:
    def test_submit_on_idle_nic_sends_immediately(self):
        tracer = TraceRecorder()
        c = two_node_cluster(tracer=tracer)
        api = c.api("n0")
        api.send(api.open_flow("n1"), 256)
        c.run_until_idle()
        triggers = [e.detail["trigger"] for e in tracer.of_kind("optimizer.activate")]
        assert triggers[0] == "submit"

    def test_backlog_accumulates_while_nic_busy(self):
        """The paper's core mechanism: submissions during a transfer
        queue up and are optimized at the idle transition."""
        tracer = TraceRecorder()
        c = two_node_cluster(tracer=tracer)
        api = c.api("n0")
        flow = api.open_flow("n1")
        engine = c.engine("n0")
        # First send occupies the NIC...
        api.send(flow, 4 * KiB)
        assert engine.backlog == 0
        # ...the next ten arrive while it is busy and accumulate.
        for _ in range(10):
            api.send(flow, 128)
        assert engine.backlog == 20  # 10 messages x (header + payload)
        c.run_until_idle()
        assert engine.backlog == 0
        idle_activations = [
            e for e in tracer.of_kind("optimizer.activate") if e.detail["trigger"] == "idle"
        ]
        assert idle_activations, "idle transition must trigger the optimizer"
        # The accumulated backlog went out aggregated, not one-by-one.
        assert engine.stats.aggregated_packets >= 1

    def test_activation_counters(self):
        c = two_node_cluster()
        api = c.api("n0")
        flow = api.open_flow("n1")
        for _ in range(5):
            api.send(flow, 64)
        c.run_until_idle()
        stats = c.engine("n0").stats
        assert stats.activations.get("submit", 0) >= 1
        assert stats.activations.get("idle", 0) >= 1


class TestDispatchAccounting:
    def test_stats_track_packets_and_bytes(self):
        c = two_node_cluster()
        api = c.api("n0")
        flow = api.open_flow("n1")
        for _ in range(4):
            api.send(flow, 100, header_size=0)
        c.run_until_idle()
        stats = c.engine("n0").stats
        assert stats.messages_submitted == 4
        assert stats.entries_enqueued == 4
        assert stats.payload_bytes == 400
        assert stats.data_packets >= 1
        assert stats.data_segments == 4

    def test_all_messages_complete(self):
        c = two_node_cluster()
        api = c.api("n0")
        flow = api.open_flow("n1")
        messages = [api.send(flow, 64 * (i + 1)) for i in range(20)]
        c.run_until_idle()
        assert all(m.completion.done for m in messages)
        assert c.reassemblers["n1"].messages_completed == 20

    def test_bidirectional_traffic(self):
        c = two_node_cluster()
        a, b = c.api("n0"), c.api("n1")
        fa = a.open_flow("n1")
        fb = b.open_flow("n0")
        ma = [a.send(fa, 128) for _ in range(5)]
        mb = [b.send(fb, 128) for _ in range(5)]
        c.run_until_idle()
        assert all(m.completion.done for m in ma + mb)


class TestRendezvousProtocol:
    def test_large_message_uses_rendezvous(self):
        tracer = TraceRecorder()
        c = two_node_cluster(tracer=tracer)
        api = c.api("n0")
        flow = api.open_flow("n1")
        big = api.send(flow, 128 * KiB)
        c.run_until_idle()
        assert big.completion.done
        stats = c.engine("n0").stats
        assert stats.rdv_parked == 1
        assert stats.rdv_ready == 1
        assert stats.packets_by_kind.get("rdv_req") == 1
        assert stats.packets_by_kind.get("rdv_data", 0) >= 1
        assert c.engine("n1").stats.acks_sent == 1
        assert c.engine("n0").rendezvous_in_flight == 0

    def test_small_traffic_flows_during_rendezvous(self):
        """No head-of-line blocking: eager packets overtake the handshake."""
        c = two_node_cluster()
        api = c.api("n0")
        bulk_flow = api.open_flow("n1", traffic_class=TrafficClass.BULK)
        small_flow = api.open_flow("n1")
        big = api.send(bulk_flow, 1024 * KiB)
        smalls = [api.send(small_flow, 64) for _ in range(5)]
        c.run_until_idle()
        assert big.completion.done
        assert max(m.completion.value for m in smalls) < big.completion.value

    def test_rendezvous_latency_includes_handshake(self):
        c = two_node_cluster()
        api = c.api("n0")
        flow = api.open_flow("n1")
        big = api.send(flow, 64 * KiB, header_size=0)
        c.run_until_idle()
        # Compare against a pure one-way estimate: must be strictly larger
        # (REQ + ACK round trip + ack delay).
        driver = c.engine("n0").drivers[0]
        from repro.network.model import TransferMode

        one_way = driver.nic.link.one_way_time(64 * KiB, TransferMode.DMA)
        assert big.completion.value > one_way


class TestNagleHold:
    def test_hold_delays_single_small_packet(self):
        config = EngineConfig(nagle_delay=10 * us, nagle_min_bytes=1 * KiB)
        c = two_node_cluster(
            strategy=lambda: NagleStrategy(),
            config=config,
        )
        api = c.api("n0")
        flow = api.open_flow("n1")
        m = api.send(flow, 64, header_size=0)
        c.run_until_idle()
        assert m.completion.done
        # Delivery happened only after the hold expired.
        assert m.completion.value >= 10 * us
        assert c.engine("n0").stats.holds >= 1

    def test_hold_released_by_enough_bytes(self):
        config = EngineConfig(nagle_delay=1000 * us, nagle_min_bytes=512)
        c = two_node_cluster(strategy=lambda: NagleStrategy(), config=config)
        api = c.api("n0")
        flow = api.open_flow("n1")
        for _ in range(20):
            api.send(flow, 64, header_size=0)  # 1280 B total > min_bytes
        c.run_until_idle()
        report = c.report()
        assert report.latency.maximum < 1000 * us  # nobody waited out the delay


class TestMultirail:
    def test_two_rails_used(self):
        c = two_node_cluster(networks=[("mx", 2)])
        api = c.api("n0")
        flows = [api.open_flow("n1") for _ in range(4)]
        for f in flows:
            for _ in range(10):
                api.send(f, 2 * KiB)
        c.run_until_idle()
        nics = c.fabric.node("n0").nics
        assert len(nics) == 2
        assert all(nic.stats.requests > 0 for nic in nics)

    def test_heterogeneous_rails(self):
        c = two_node_cluster(networks=[("mx", 1), ("elan", 1)])
        api = c.api("n0")
        flow = api.open_flow("n1")
        msgs = [api.send(flow, 4 * KiB) for _ in range(20)]
        c.run_until_idle()
        assert all(m.completion.done for m in msgs)

    def test_rdv_data_striped_across_rails(self):
        config = EngineConfig(stripe_chunk=32 * KiB)
        c = two_node_cluster(networks=[("mx", 2)], config=config)
        api = c.api("n0")
        flow = api.open_flow("n1")
        big = api.send(flow, 256 * KiB, header_size=0)
        c.run_until_idle()
        assert big.completion.done
        nics = c.fabric.node("n0").nics
        rdv_counts = [nic.stats.kind_counts.get("rdv_data", 0) for nic in nics]
        assert sum(rdv_counts) == 256 // 32
        assert all(count > 0 for count in rdv_counts), "both rails must carry chunks"

    def test_static_binding_restricts_queues(self):
        config = EngineConfig(rail_binding="static", stripe_chunk=None)
        c = two_node_cluster(networks=[("mx", 2)], config=config)
        api = c.api("n0")
        flow = api.open_flow("n1")
        msgs = [api.send(flow, 1 * KiB) for _ in range(10)]
        c.run_until_idle()
        assert all(m.completion.done for m in msgs)


class TestValidationAndErrors:
    def test_engine_requires_drivers(self):
        from repro.core.engine import OptimizingEngine
        from repro.network.fabric import Fabric
        from repro.sim import Simulator

        sim = Simulator()
        fabric = Fabric(sim)
        node = fabric.add_node("n0")
        with pytest.raises(ConfigurationError):
            OptimizingEngine(sim, node, [])

    def test_foreign_driver_rejected(self):
        from repro.core.engine import OptimizingEngine
        from repro.drivers.registry import make_driver
        from repro.network.fabric import Fabric
        from repro.network.technologies import myrinet_mx
        from repro.sim import Simulator

        sim = Simulator()
        fabric = Fabric(sim)
        net = fabric.add_network("mx0", myrinet_mx())
        a, b = fabric.add_node("a"), fabric.add_node("b")
        nic_b = net.attach(b)
        with pytest.raises(ConfigurationError):
            OptimizingEngine(sim, a, [make_driver(nic_b)])

    def test_plan_validation_enabled_by_default(self):
        c = two_node_cluster()
        assert c.engine("n0").config.validate_plans
