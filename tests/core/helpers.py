"""Shared fixtures for core-layer tests."""

from __future__ import annotations

from repro.core.config import EngineConfig
from repro.core.waiting import WaitingLists
from repro.drivers.mx import MxDriver
from repro.madeleine.message import Flow, Message, PackMode
from repro.madeleine.submit import EntryKind, EntryState, SubmitEntry
from repro.network.nic import NIC
from repro.network.technologies import myrinet_mx
from repro.sim import Simulator


def make_driver(sim: Simulator, name: str = "mx0", node: str = "n0", link=None):
    """A standalone MX driver whose NIC is permissive about reachability."""
    deliveries: list = []
    nic = NIC(
        sim, name, node, link if link is not None else myrinet_mx(),
        lambda packet, occupancy: deliveries.append((sim.now, packet)),
    )
    return MxDriver(nic), deliveries


class StubEngine:
    """Just enough engine surface for the packet builder."""

    def __init__(self, drivers, config: EngineConfig | None = None, sim=None):
        self.sim = sim if sim is not None else Simulator()
        self.config = config if config is not None else EngineConfig()
        self.drivers = list(drivers)
        self.waiting = WaitingLists()
        self.parked: list[SubmitEntry] = []

    def park_for_rendezvous(self, entry: SubmitEntry, channel_id: int) -> None:
        self.waiting.queue(channel_id).remove(entry)
        entry.state = EntryState.RDV_PENDING
        self.parked.append(entry)


def data_entry(
    flow: Flow,
    size: int,
    mode: PackMode = PackMode.CHEAPER,
    express: bool = False,
    submit_time: float = 0.0,
) -> SubmitEntry:
    """A DATA submit entry wrapping a one-fragment message."""
    message = Message(flow)
    fragment = message.add_fragment(size, mode=mode, express=express)
    return SubmitEntry(
        EntryKind.DATA, flow.dst, submit_time, fragment=fragment, flow=flow
    )


def control_entry(dst: str = "n1", kind: EntryKind = EntryKind.RDV_REQ, **meta):
    """An engine-generated control entry."""
    return SubmitEntry(kind, dst, 0.0, meta=meta)
