"""Tests for WeightedChannels and AdaptiveChannels (paper §2 dynamics)."""

import pytest

from repro.core.adaptive import AdaptiveChannels
from repro.core.channels import WeightedChannels
from repro.core.waiting import ChannelQueue
from repro.madeleine.message import Flow
from repro.network.virtual import ChannelPool, TrafficClass
from repro.runtime import Cluster, run_session
from repro.util.errors import ConfigurationError
from repro.util.units import KiB, us

from tests.core.helpers import data_entry


class TestWeightedChannels:
    def setup_policy(self):
        policy = WeightedChannels()
        pool = ChannelPool()
        policy.setup(pool, max_channels=8)
        return policy, pool

    def test_initial_order_is_fair(self):
        policy, pool = self.setup_policy()
        queues = [ChannelQueue(c.channel_id) for c in pool.channels]
        ordered = policy.service_order(queues)
        assert len(ordered) == len(queues)

    def test_heavily_served_channel_deprioritized(self):
        policy, pool = self.setup_policy()
        bulk_id = pool.channel_for(TrafficClass.BULK).channel_id
        ctrl_id = pool.channel_for(TrafficClass.CONTROL).channel_id
        policy.note_dispatch(bulk_id, [(TrafficClass.BULK, 100_000)])
        queues = [ChannelQueue(bulk_id), ChannelQueue(ctrl_id)]
        ordered = policy.service_order(queues)
        assert ordered[0].channel_id == ctrl_id

    def test_weights_scale_service(self):
        """Control's weight 64 means 64x the bytes before losing its turn."""
        policy, pool = self.setup_policy()
        bulk_id = pool.channel_for(TrafficClass.BULK).channel_id
        ctrl_id = pool.channel_for(TrafficClass.CONTROL).channel_id
        policy.note_dispatch(ctrl_id, [(TrafficClass.CONTROL, 6000)])
        policy.note_dispatch(bulk_id, [(TrafficClass.BULK, 1000)])
        queues = [ChannelQueue(bulk_id), ChannelQueue(ctrl_id)]
        # control served 6000/64 < bulk 1000/1 -> control still first
        assert policy.service_order(queues)[0].channel_id == ctrl_id

    def test_invalid_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            WeightedChannels(weights={TrafficClass.BULK: 0.0})

    def test_end_to_end(self):
        cluster = Cluster(policy=WeightedChannels, seed=1)
        api = cluster.api("n0")
        flow = api.open_flow("n1", traffic_class=TrafficClass.BULK)
        msgs = [api.send(flow, 4 * KiB) for _ in range(10)]
        cluster.run_until_idle()
        assert all(m.completion.done for m in msgs)


class TestAdaptiveChannels:
    def test_starts_with_single_shared_channel(self):
        policy = AdaptiveChannels()
        pool = ChannelPool()
        policy.setup(pool, max_channels=8)
        assert len(pool) == 1
        assert policy.channels_in_use == 1
        flow = Flow("f", "n0", "n1", TrafficClass.BULK)
        entry = data_entry(flow, 100)
        assert policy.channel_for_entry(entry) == pool.channels[0].channel_id

    def test_promotion_on_volume(self):
        policy = AdaptiveChannels(promote_bytes=10 * KiB, window_dispatches=4)
        pool = ChannelPool()
        policy.setup(pool, max_channels=8)
        shared = pool.channels[0].channel_id
        for _ in range(4):
            policy.note_dispatch(shared, [(TrafficClass.BULK, 8 * KiB)])
        assert TrafficClass.BULK in policy.dedicated_classes
        assert ("promote", TrafficClass.BULK) in policy.adaptations
        flow = Flow("f", "n0", "n1", TrafficClass.BULK)
        assert policy.channel_for_entry(data_entry(flow, 1)) != shared

    def test_demotion_after_idle_windows(self):
        policy = AdaptiveChannels(
            promote_bytes=1 * KiB, window_dispatches=2, demote_after_windows=2
        )
        pool = ChannelPool()
        policy.setup(pool, max_channels=8)
        shared = pool.channels[0].channel_id
        policy.note_dispatch(shared, [(TrafficClass.BULK, 2 * KiB)])
        policy.note_dispatch(shared, [(TrafficClass.BULK, 2 * KiB)])
        assert TrafficClass.BULK in policy.dedicated_classes
        # Four dispatches with no bulk traffic -> two idle windows.
        for _ in range(4):
            policy.note_dispatch(shared, [(TrafficClass.CONTROL, 32)])
        assert TrafficClass.BULK not in policy.dedicated_classes
        assert ("demote", TrafficClass.BULK) in policy.adaptations

    def test_channel_reuse_after_demotion(self):
        policy = AdaptiveChannels(
            promote_bytes=1 * KiB, window_dispatches=1, demote_after_windows=1
        )
        pool = ChannelPool()
        policy.setup(pool, max_channels=2)  # shared + one dynamic
        shared = pool.channels[0].channel_id
        policy.note_dispatch(shared, [(TrafficClass.BULK, 2 * KiB)])
        assert TrafficClass.BULK in policy.dedicated_classes
        policy.note_dispatch(shared, [(TrafficClass.CONTROL, 32)])
        assert TrafficClass.BULK not in policy.dedicated_classes
        # Promote a different class: must reuse the freed channel, not
        # allocate beyond max_channels.
        policy.note_dispatch(shared, [(TrafficClass.PUTGET, 2 * KiB)])
        assert TrafficClass.PUTGET in policy.dedicated_classes
        assert len(pool) <= 2

    def test_promoted_default_outranks_shared_channel(self):
        """Regression: a promoted DEFAULT channel used to get service
        rank 2 — the same rank as the shared channel — so the tie fell
        through to channel-id order and the (older, lower-id) shared
        channel was serviced ahead of the dedicated class that had just
        earned its promotion.  Dedicated DEFAULT must rank strictly
        after the shared channel never ties with anything."""
        policy = AdaptiveChannels(promote_bytes=1 * KiB, window_dispatches=1)
        pool = ChannelPool()
        policy.setup(pool, max_channels=8)
        shared = pool.channels[0].channel_id
        policy.note_dispatch(shared, [(TrafficClass.DEFAULT, 2 * KiB)])
        assert TrafficClass.DEFAULT in policy.dedicated_classes
        default_id = pool.channel_for(TrafficClass.DEFAULT).channel_id

        queues = [ChannelQueue(default_id), ChannelQueue(shared)]
        ordered = policy.service_order(queues)
        # Shared (mixed, latency-sensitive remainder) before dedicated
        # DEFAULT — and unambiguously so, whichever order the queues
        # arrive in.
        assert [q.channel_id for q in ordered] == [shared, default_id]
        reordered = policy.service_order(list(reversed(queues)))
        assert [q.channel_id for q in reordered] == [shared, default_id]

    def test_service_order_ranks_are_total(self):
        """With every class promoted, the five channels order CONTROL,
        PUTGET, shared, DEFAULT, BULK with no rank collisions."""
        policy = AdaptiveChannels(promote_bytes=1 * KiB, window_dispatches=1)
        pool = ChannelPool()
        policy.setup(pool, max_channels=8)
        shared = pool.channels[0].channel_id
        for traffic_class in (
            TrafficClass.BULK,
            TrafficClass.DEFAULT,
            TrafficClass.PUTGET,
            TrafficClass.CONTROL,
        ):
            policy.note_dispatch(shared, [(traffic_class, 2 * KiB)])
        assert len(policy.dedicated_classes) == 4
        ids = {
            traffic_class: pool.channel_for(traffic_class).channel_id
            for traffic_class in policy.dedicated_classes
        }
        queues = [ChannelQueue(c.channel_id) for c in pool.channels]
        ordered = [q.channel_id for q in policy.service_order(queues)]
        assert ordered == [
            ids[TrafficClass.CONTROL],
            ids[TrafficClass.PUTGET],
            shared,
            ids[TrafficClass.DEFAULT],
            ids[TrafficClass.BULK],
        ]

    def test_respects_max_channels(self):
        policy = AdaptiveChannels(promote_bytes=1, window_dispatches=1)
        pool = ChannelPool()
        policy.setup(pool, max_channels=1)  # only the shared channel fits
        shared = pool.channels[0].channel_id
        policy.note_dispatch(shared, [(TrafficClass.BULK, 1 * KiB)])
        assert policy.dedicated_classes == frozenset()
        assert len(pool) == 1

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveChannels(promote_bytes=0)

    def test_end_to_end_adaptation(self):
        """Bulk traffic appears mid-run; the policy promotes it and
        control latency recovers."""
        from repro.middleware import ControlPlaneApp, StreamApp

        policy_holder = {}

        def policy_factory():
            policy = AdaptiveChannels(promote_bytes=32 * KiB, window_dispatches=8)
            policy_holder.setdefault("n0", policy)
            return policy

        cluster = Cluster(policy=policy_factory, seed=5)
        apps = [
            ControlPlaneApp(count=300, interval=3 * us, name="ctl"),
            StreamApp(
                size=16 * KiB,
                count=60,
                interval=2 * us,
                traffic_class=TrafficClass.BULK,
                name="bulk",
            ),
        ]
        run_session(cluster, [a.install for a in apps])
        policy = policy_holder["n0"]
        assert ("promote", TrafficClass.BULK) in policy.adaptations


class TestMinDwellWindows:
    """min_dwell_windows > 1 damps promote/demote thrash (tuner satellite)."""

    @staticmethod
    def drive(policy, windows=40):
        pool = ChannelPool()
        policy.setup(pool, max_channels=8)
        shared = pool.channels[0].channel_id
        # Strict alternation of one heavy-BULK window and one BULK-idle
        # window — the adversarial trace for a dwell-less adapter.
        for i in range(windows):
            if i % 2 == 0:
                policy.note_dispatch(shared, [(TrafficClass.BULK, 2 * KiB)])
            else:
                policy.note_dispatch(shared, [(TrafficClass.CONTROL, 1)])
        return policy.adaptations

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveChannels(min_dwell_windows=0)

    def test_default_dwell_keeps_immediate_flips(self):
        """min_dwell_windows=1 is the pre-hysteresis behaviour: the
        oscillating trace flips the BULK channel on every window."""
        policy = AdaptiveChannels(
            promote_bytes=1 * KiB, window_dispatches=1, demote_after_windows=1
        )
        assert len(self.drive(policy)) == 40

    def test_oscillating_trace_does_not_thrash(self):
        policy = AdaptiveChannels(
            promote_bytes=1 * KiB,
            window_dispatches=1,
            demote_after_windows=1,
            min_dwell_windows=4,
        )
        adaptations = self.drive(policy)
        # One flip per dwell period instead of one per window.
        assert len(adaptations) == 8
        assert adaptations[0] == ("promote", TrafficClass.BULK)
