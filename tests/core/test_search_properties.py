"""Property tests for the bounded search's score memoization.

The search strategy caches candidate scores per ``(driver, channel,
queue version, seed, item count)``.  A cached score must always equal
what a fresh :class:`~repro.core.cost.CostModel` pass computes for the
cached plan — byte-for-byte, since dispatch order depends on exact
float comparisons.  Under the batched kernel most cache values carry
``None`` instead of a plan (losing candidates are scored from prefix
aggregates and never materialized); every value that *does* carry a
plan — always including the winner — must still match the scalar model
exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EngineConfig
from repro.core.strategies.search import BoundedSearchStrategy
from repro.madeleine.message import Flow
from repro.runtime.cluster import Cluster

from tests.core.helpers import data_entry


def _loaded_engine(sizes, budget):
    holder = []

    def factory():
        strategy = BoundedSearchStrategy(budget=budget)
        holder.append(strategy)
        return strategy

    cluster = Cluster(
        seed=0, strategy=factory, config=EngineConfig(lookahead_window=16)
    )
    engine = cluster.engine("n0")
    flows = [Flow(f"f{i}", "n0", "n1") for i in range(4)]
    for i, size in enumerate(sizes):
        engine._enqueue(data_entry(flows[i % len(flows)], size))
    return engine, holder[0]


class TestScoreMemoization:
    @settings(max_examples=40, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=4096), min_size=1, max_size=24
        ),
        budget=st.integers(min_value=1, max_value=48),
    )
    def test_cached_scores_equal_fresh_cost_model(self, sizes, budget):
        engine, strategy = _loaded_engine(sizes, budget)
        driver = engine.drivers[0]
        winner = strategy.make_plan(engine, driver)
        now = engine.sim.now
        assert strategy._score_cache  # the decision populated the cache
        materialized = 0
        for score, plan in strategy._score_cache.values():
            if plan is None:
                continue  # batched candidate scored without a plan object
            materialized += 1
            assert score == engine.cost.score(plan, now)
        if winner is not None:
            # The winning plan is always materialized and cached.
            assert materialized >= 1
            assert any(
                plan is winner for _, plan in strategy._score_cache.values()
            )

    @settings(max_examples=20, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=4096), min_size=1, max_size=16
        )
    )
    def test_unchanged_queue_replays_identical_decision(self, sizes):
        engine, strategy = _loaded_engine(sizes, budget=32)
        driver = engine.drivers[0]
        first = strategy.make_plan(engine, driver)
        evaluated = strategy.last_evaluated
        again = strategy.make_plan(engine, driver)
        # Same queue versions, same instant: pure cache replay — the
        # very same plan object wins with the same budget spent.
        assert again is first
        assert strategy.last_evaluated == evaluated
