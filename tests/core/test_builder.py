"""Tests for the greedy packet builder shared by the strategies."""

import pytest

from repro.core.constraints import ConstraintChecker
from repro.core.config import EngineConfig
from repro.core.strategies._builder import build_from_queue, park_oversized
from repro.madeleine.message import Flow, PackMode
from repro.madeleine.submit import EntryKind, EntryState
from repro.network.wire import PacketKind
from repro.sim import Simulator
from repro.util.units import KiB

from tests.core.helpers import StubEngine, control_entry, data_entry, make_driver


@pytest.fixture
def setup():
    sim = Simulator()
    driver, _ = make_driver(sim)
    engine = StubEngine([driver], sim=sim)
    queue = engine.waiting.queue(0)
    return engine, driver, queue


def fill(engine, queue, entries):
    for e in entries:
        queue.append(e)
    return entries


class TestBasicAggregation:
    def test_single_entry(self, setup):
        engine, driver, queue = setup
        flow = Flow("f", "n0", "n1")
        [e] = fill(engine, queue, [data_entry(flow, 100)])
        plan = build_from_queue(engine, driver, queue, max_items=16)
        assert plan.kind is PacketKind.EAGER
        assert plan.entries == [e]
        assert plan.payload_bytes == 100

    def test_cross_flow_aggregation(self, setup):
        engine, driver, queue = setup
        flows = [Flow(f"f{i}", "n0", "n1") for i in range(4)]
        entries = fill(engine, queue, [data_entry(f, 256) for f in flows])
        plan = build_from_queue(engine, driver, queue, max_items=16)
        assert plan.entries == entries
        assert plan.payload_bytes == 4 * 256

    def test_max_items_respected(self, setup):
        engine, driver, queue = setup
        flow = Flow("f", "n0", "n1")
        fill(engine, queue, [data_entry(flow, 10) for _ in range(10)])
        plan = build_from_queue(engine, driver, queue, max_items=3)
        assert len(plan.items) == 3

    def test_size_budget_respected(self, setup):
        engine, driver, queue = setup
        flow = Flow("f", "n0", "n1")
        size = driver.caps.max_aggregate_size // 2 + 1
        fill(engine, queue, [data_entry(flow, size) for _ in range(3)])
        plan = build_from_queue(engine, driver, queue, max_items=16)
        assert len(plan.items) == 1  # second one would exceed the budget

    def test_empty_queue_returns_none(self, setup):
        engine, driver, queue = setup
        assert build_from_queue(engine, driver, queue, max_items=16) is None

    def test_plans_satisfy_constraints(self, setup):
        engine, driver, queue = setup
        checker = ConstraintChecker()
        flows = [Flow(f"f{i}", "n0", "n1") for i in range(3)]
        fill(
            engine,
            queue,
            [data_entry(flows[i % 3], 64 * (i + 1)) for i in range(9)],
        )
        plan = build_from_queue(engine, driver, queue, max_items=16)
        checker.check(plan, queue.pending())


class TestDestinationSplit:
    def test_only_one_destination_per_packet(self, setup):
        engine, driver, queue = setup
        f1, f2 = Flow("a", "n0", "n1"), Flow("b", "n0", "n2")
        e1 = data_entry(f1, 100)
        e2 = data_entry(f2, 100)
        e3 = data_entry(f1, 100)
        fill(engine, queue, [e1, e2, e3])
        plan = build_from_queue(engine, driver, queue, max_items=16)
        assert plan.dst == "n1"
        assert plan.entries == [e1, e3]


class TestModes:
    def test_safer_travels_alone(self, setup):
        engine, driver, queue = setup
        flow = Flow("f", "n0", "n1")
        safer = data_entry(flow, 100, mode=PackMode.SAFER)
        cheap = data_entry(flow, 100)
        fill(engine, queue, [safer, cheap])
        plan = build_from_queue(engine, driver, queue, max_items=16)
        assert plan.entries == [safer]
        assert len(plan.items) == 1

    def test_safer_skipped_when_plan_started(self, setup):
        engine, driver, queue = setup
        f1, f2 = Flow("a", "n0", "n1"), Flow("b", "n0", "n1")
        cheap = data_entry(f1, 100)
        safer = data_entry(f2, 100, mode=PackMode.SAFER)
        cheap2 = data_entry(f1, 100)
        fill(engine, queue, [cheap, safer, cheap2])
        plan = build_from_queue(engine, driver, queue, max_items=16)
        assert plan.entries == [cheap, cheap2]

    def test_later_overtaken_within_flow(self, setup):
        engine, driver, queue = setup
        flow = Flow("f", "n0", "n1")
        big_later = data_entry(flow, driver.caps.max_aggregate_size, mode=PackMode.LATER)
        small = data_entry(flow, 64)
        fill(engine, queue, [big_later, small])
        plan = build_from_queue(engine, driver, queue, max_items=16)
        # The LATER entry fills the whole budget; the small one can't fit.
        # Build with a smaller budget by seeding after it instead:
        assert plan.entries[0] is big_later

    def test_fifo_blocking_within_flow(self, setup):
        engine, driver, queue = setup
        f1, f2 = Flow("a", "n0", "n1"), Flow("b", "n0", "n2")
        other_dst = data_entry(f2, 100)  # seeds dst n2
        blocked = data_entry(f1, 100)  # n1: skipped (wrong dst)
        follower = data_entry(f1, 100)  # must NOT be taken after skip
        fill(engine, queue, [other_dst, blocked, follower])
        plan = build_from_queue(engine, driver, queue, max_items=16)
        assert plan.entries == [other_dst]


class TestRendezvousPath:
    def test_oversized_entry_parked(self, setup):
        engine, driver, queue = setup
        flow = Flow("f", "n0", "n1")
        big = data_entry(flow, driver.caps.eager_threshold + 1)
        small = data_entry(flow, 64)
        fill(engine, queue, [big, small])
        plan = build_from_queue(engine, driver, queue, max_items=16)
        assert engine.parked == [big]
        assert big.state is EntryState.RDV_PENDING
        assert plan.entries == [small]  # traffic keeps flowing

    def test_no_park_when_disallowed(self, setup):
        engine, driver, queue = setup
        flow = Flow("f", "n0", "n1")
        big = data_entry(flow, driver.caps.eager_threshold + 1)
        fill(engine, queue, [big])
        plan = build_from_queue(engine, driver, queue, max_items=16, allow_park=False)
        assert plan is None
        assert engine.parked == []

    def test_rdv_ready_dispatched_alone(self, setup):
        engine, driver, queue = setup
        flow = Flow("f", "n0", "n1")
        bulk = data_entry(flow, 256 * KiB)
        bulk.state = EntryState.RDV_READY
        small = data_entry(flow, 64)
        fill(engine, queue, [bulk, small])
        plan = build_from_queue(engine, driver, queue, max_items=16)
        assert plan.kind is PacketKind.RDV_DATA
        assert plan.entries == [bulk]
        # single driver: no striping, whole payload in one request
        assert plan.items[0].take == 256 * KiB

    def test_rdv_ready_striped_with_multiple_rails(self):
        sim = Simulator()
        d1, _ = make_driver(sim, "mx0")
        d2, _ = make_driver(sim, "mx1")
        engine = StubEngine([d1, d2], config=EngineConfig(stripe_chunk=64 * KiB), sim=sim)
        queue = engine.waiting.queue(0)
        flow = Flow("f", "n0", "n1")
        bulk = data_entry(flow, 256 * KiB)
        bulk.state = EntryState.RDV_READY
        queue.append(bulk)
        plan = build_from_queue(engine, d1, queue, max_items=16)
        assert plan.items[0].take == 64 * KiB

    def test_park_oversized_sweep(self, setup):
        engine, driver, queue = setup
        flow = Flow("f", "n0", "n1")
        entries = [
            data_entry(flow, driver.caps.eager_threshold + 1),
            data_entry(flow, 64),
            data_entry(flow, driver.caps.eager_threshold + 5),
        ]
        fill(engine, queue, entries)
        parked = park_oversized(engine, driver, queue)
        assert parked == 2
        assert queue.pending() == [entries[1]]


class TestControlEntries:
    def test_control_entry_gets_own_packet(self, setup):
        engine, driver, queue = setup
        req = control_entry("n1", kind=EntryKind.RDV_REQ, token=9)
        queue.append(req)
        plan = build_from_queue(engine, driver, queue, max_items=16)
        assert plan.kind is PacketKind.RDV_REQ
        assert plan.meta == {"token": 9}

    def test_control_after_data_not_mixed(self, setup):
        engine, driver, queue = setup
        flow = Flow("f", "n0", "n1")
        e = data_entry(flow, 64)
        req = control_entry("n1", token=1)
        fill(engine, queue, [e])
        queue.append(req)
        plan = build_from_queue(engine, driver, queue, max_items=16)
        assert plan.kind is PacketKind.EAGER
        assert plan.entries == [e]


class TestSeedsAndSameMessage:
    def test_skip_seeds_produces_alternative_plan(self, setup):
        engine, driver, queue = setup
        f1, f2 = Flow("a", "n0", "n1"), Flow("b", "n0", "n1")
        e1, e2 = data_entry(f1, 100), data_entry(f2, 200)
        fill(engine, queue, [e1, e2])
        plan = build_from_queue(engine, driver, queue, max_items=16, skip_seeds=1)
        assert plan.entries == [e2]

    def test_same_message_only(self, setup):
        engine, driver, queue = setup
        from repro.madeleine.message import Message
        from repro.madeleine.submit import EntryKind, SubmitEntry

        flow = Flow("f", "n0", "n1")
        m1, m2 = Message(flow), Message(flow)
        frags1 = [m1.add_fragment(64), m1.add_fragment(64)]
        frag2 = m2.add_fragment(64)
        entries = [
            SubmitEntry(EntryKind.DATA, "n1", 0.0, fragment=f, flow=flow)
            for f in frags1 + [frag2]
        ]
        fill(engine, queue, entries)
        plan = build_from_queue(
            engine, driver, queue, max_items=16, same_message_only=True
        )
        assert plan.entries == entries[:2]  # m2's fragment excluded

    def test_protocol_only_skips_waiting_data(self, setup):
        engine, driver, queue = setup
        flow = Flow("f", "n0", "n1")
        e = data_entry(flow, 64)
        req = control_entry("n1", token=3)
        fill(engine, queue, [e])
        queue.append(req)
        plan = build_from_queue(
            engine, driver, queue, max_items=16, protocol_only=True
        )
        assert plan.kind is PacketKind.RDV_REQ


class TestPartialTake:
    def test_big_entry_chunked_when_no_rdv(self):
        """TCP-style drivers chunk oversize entries instead of rendezvous."""
        from repro.drivers.tcp import TcpDriver
        from repro.network.nic import NIC
        from repro.network.technologies import gige_tcp

        sim = Simulator()
        nic = NIC(sim, "t0", "n0", gige_tcp(), lambda p, o: None)
        driver = TcpDriver(nic)
        engine = StubEngine([driver], sim=sim)
        queue = engine.waiting.queue(0)
        flow = Flow("f", "n0", "n1")
        big = data_entry(flow, 3 * driver.caps.max_aggregate_size)
        queue.append(big)
        plan = build_from_queue(engine, driver, queue, max_items=16)
        assert plan.items[0].take == driver.caps.max_aggregate_size
        assert engine.parked == []
