"""Tests for the constraint checker — the optimizer's hard rules."""

import pytest

from repro.core.constraints import ConstraintChecker
from repro.core.plan import PlanItem, TransferPlan
from repro.madeleine.message import Flow, PackMode
from repro.madeleine.submit import EntryState
from repro.network.wire import PacketKind
from repro.sim import Simulator
from repro.util.errors import ConstraintViolation

from tests.core.helpers import control_entry, data_entry, make_driver


@pytest.fixture
def driver():
    return make_driver(Simulator())[0]


@pytest.fixture
def checker():
    return ConstraintChecker()


def eager_plan(driver, items, dst="n1", channel=0):
    return TransferPlan(driver, PacketKind.EAGER, dst, channel, items)


class TestSingleTarget:
    def test_mixed_destinations_rejected(self, driver, checker):
        f1, f2 = Flow("a", "n0", "n1"), Flow("b", "n0", "n2")
        e1, e2 = data_entry(f1, 10), data_entry(f2, 10)
        # TransferPlan's own validation catches this at build time.
        with pytest.raises(Exception):
            eager_plan(driver, [PlanItem(e1, 10), PlanItem(e2, 10)], dst="n1")


class TestIsolation:
    def test_safer_alone_ok(self, driver, checker):
        flow = Flow("f", "n0", "n1")
        e = data_entry(flow, 10, mode=PackMode.SAFER)
        plan = eager_plan(driver, [PlanItem(e, 10)])
        checker.check(plan, [e])

    def test_safer_aggregated_rejected(self, driver, checker):
        flow = Flow("f", "n0", "n1")
        safer = data_entry(flow, 10, mode=PackMode.SAFER)
        other = data_entry(flow, 10)
        plan = eager_plan(driver, [PlanItem(safer, 10), PlanItem(other, 10)])
        with pytest.raises(ConstraintViolation):
            checker.check(plan, [safer, other])

    def test_cheaper_aggregated_ok(self, driver, checker):
        flow = Flow("f", "n0", "n1")
        a, b = data_entry(flow, 10), data_entry(flow, 10)
        plan = eager_plan(driver, [PlanItem(a, 10), PlanItem(b, 10)])
        checker.check(plan, [a, b])


class TestCapabilities:
    def test_oversized_eager_rejected(self, driver, checker):
        flow = Flow("f", "n0", "n1")
        e = data_entry(flow, driver.caps.max_aggregate_size + 1)
        plan = eager_plan(driver, [PlanItem(e, driver.caps.max_aggregate_size + 1)])
        with pytest.raises(ConstraintViolation):
            checker.check(plan, [e])

    def test_should_be_rendezvous_rejected(self, driver, checker):
        """An entry above eager_threshold must not ship whole as eager."""
        flow = Flow("f", "n0", "n1")
        size = driver.caps.eager_threshold  # at threshold: fine
        e = data_entry(flow, size)
        checker.check(eager_plan(driver, [PlanItem(e, size)]), [e])

    def test_rdv_data_requires_ready_state(self, driver, checker):
        flow = Flow("f", "n0", "n1")
        e = data_entry(flow, 100_000)
        plan = TransferPlan(driver, PacketKind.RDV_DATA, "n1", 0, [PlanItem(e, 1000)])
        with pytest.raises(ConstraintViolation):
            checker.check(plan, [e])
        e.state = EntryState.RDV_READY
        checker.check(plan, [e])


class TestFlowFifo:
    def test_prefix_take_ok(self, driver, checker):
        flow = Flow("f", "n0", "n1")
        a, b, c = (data_entry(flow, 10) for _ in range(3))
        plan = eager_plan(driver, [PlanItem(a, 10), PlanItem(b, 10)])
        checker.check(plan, [a, b, c])

    def test_skip_then_take_rejected(self, driver, checker):
        flow = Flow("f", "n0", "n1")
        a, b = data_entry(flow, 10), data_entry(flow, 10)
        plan = eager_plan(driver, [PlanItem(b, 10)])  # skips a
        with pytest.raises(ConstraintViolation):
            checker.check(plan, [a, b])

    def test_skip_later_entry_allowed(self, driver, checker):
        flow = Flow("f", "n0", "n1")
        deferred = data_entry(flow, 10, mode=PackMode.LATER)
        b = data_entry(flow, 10)
        plan = eager_plan(driver, [PlanItem(b, 10)])
        checker.check(plan, [deferred, b])

    def test_cross_flow_interleaving_allowed(self, driver, checker):
        """Skipping another flow's entries never violates this flow's FIFO."""
        f1, f2 = Flow("a", "n0", "n1"), Flow("b", "n0", "n1")
        a1, b1, a2 = data_entry(f1, 10), data_entry(f2, 10), data_entry(f1, 10)
        plan = eager_plan(driver, [PlanItem(a1, 10), PlanItem(a2, 10)])  # skips b1
        checker.check(plan, [a1, b1, a2])

    def test_control_entries_no_fifo(self, driver, checker):
        flow = Flow("f", "n0", "n1")
        ctl = control_entry("n1", token=1)
        e = data_entry(flow, 10)
        plan = eager_plan(driver, [PlanItem(e, 10)])  # skips the control entry
        checker.check(plan, [ctl, e])

    def test_rdv_ready_exempt(self, driver, checker):
        flow = Flow("f", "n0", "n1")
        waiting = data_entry(flow, 10)
        bulk = data_entry(flow, 100_000)
        bulk.state = EntryState.RDV_READY
        plan = TransferPlan(driver, PacketKind.RDV_DATA, "n1", 0, [PlanItem(bulk, 1000)])
        checker.check(plan, [waiting, bulk])
