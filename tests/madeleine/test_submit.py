"""Tests for submit entries: lifecycle, constraints flags, consumption."""

import pytest

from repro.madeleine.message import Flow, Message, PackMode
from repro.madeleine.submit import (
    CONTROL_ENTRY_SIZE,
    EntryKind,
    EntryState,
    SubmitEntry,
)
from repro.network.virtual import TrafficClass
from repro.util.errors import ConfigurationError


def data_entry(size=1024, mode=PackMode.CHEAPER, traffic_class=TrafficClass.DEFAULT):
    flow = Flow("f", "a", "b", traffic_class)
    message = Message(flow)
    fragment = message.add_fragment(size, mode=mode)
    return SubmitEntry(EntryKind.DATA, "b", 0.0, fragment=fragment, flow=flow)


class TestConstruction:
    def test_data_entry_fields(self):
        e = data_entry(512)
        assert e.kind is EntryKind.DATA
        assert e.state is EntryState.WAITING
        assert e.remaining == 512
        assert e.traffic_class is TrafficClass.DEFAULT
        assert not e.is_control

    def test_data_requires_fragment_and_flow(self):
        with pytest.raises(ConfigurationError):
            SubmitEntry(EntryKind.DATA, "b", 0.0)

    def test_control_entry(self):
        e = SubmitEntry(EntryKind.RDV_REQ, "b", 0.0, meta={"token": 1})
        assert e.is_control
        assert e.remaining == CONTROL_ENTRY_SIZE
        assert e.traffic_class is TrafficClass.CONTROL
        assert e.flow is None

    def test_control_with_fragment_rejected(self):
        flow = Flow("f", "a", "b")
        frag = Message(flow).add_fragment(8)
        with pytest.raises(ConfigurationError):
            SubmitEntry(EntryKind.RDV_ACK, "b", 0.0, fragment=frag)

    def test_traffic_class_from_flow(self):
        e = data_entry(traffic_class=TrafficClass.BULK)
        assert e.traffic_class is TrafficClass.BULK


class TestAggregatability:
    def test_cheaper_aggregatable(self):
        assert data_entry(mode=PackMode.CHEAPER).aggregatable

    def test_safer_not_aggregatable(self):
        assert not data_entry(mode=PackMode.SAFER).aggregatable

    def test_later_deferrable(self):
        assert data_entry(mode=PackMode.LATER).deferrable
        assert not data_entry(mode=PackMode.CHEAPER).deferrable

    def test_control_not_aggregatable(self):
        e = SubmitEntry(EntryKind.RDV_REQ, "b", 0.0)
        assert not e.aggregatable

    def test_rdv_ready_not_aggregatable(self):
        e = data_entry()
        e.state = EntryState.RDV_READY
        assert not e.aggregatable


class TestConsume:
    def test_partial_consume(self):
        e = data_entry(1000)
        assert e.consume(400) == 0
        assert e.remaining == 600
        assert e.state is EntryState.WAITING
        assert e.consume(600) == 400
        assert e.state is EntryState.SENT

    def test_overconsume_rejected(self):
        e = data_entry(100)
        with pytest.raises(ConfigurationError):
            e.consume(101)

    def test_zero_consume_rejected(self):
        with pytest.raises(ConfigurationError):
            data_entry().consume(0)

    def test_size_tracks_remaining(self):
        e = data_entry(100)
        e.consume(30)
        assert e.size == 70
