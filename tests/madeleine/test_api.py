"""Tests for the packing API facade."""

import pytest

from repro.madeleine.api import MadAPI, PackingSession
from repro.madeleine.message import PackMode
from repro.madeleine.rx import MessageReassembler
from repro.network.virtual import TrafficClass
from repro.sim import Simulator
from repro.util.errors import ConfigurationError


class FakeEngine:
    """Minimal engine satisfying CommEngineProtocol."""

    def __init__(self, node_name="n0"):
        self.node_name = node_name
        self.submitted = []

    def submit_message(self, message):
        message.mark_flushed(0.0)
        self.submitted.append(message)


@pytest.fixture
def api():
    sim = Simulator()
    return MadAPI("n0", FakeEngine(), MessageReassembler(sim, "n0"))


class TestConstruction:
    def test_engine_node_mismatch_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            MadAPI("n0", FakeEngine("n1"), MessageReassembler(sim, "n0"))


class TestFlows:
    def test_open_flow_defaults(self, api):
        flow = api.open_flow("n1")
        assert flow.src == "n0" and flow.dst == "n1"
        assert flow.traffic_class is TrafficClass.DEFAULT

    def test_flow_names_unique(self, api):
        assert api.open_flow("n1").name != api.open_flow("n1").name

    def test_begin_foreign_flow_rejected(self, api):
        other = MadAPI(
            "n1", FakeEngine("n1"), MessageReassembler(Simulator(), "n1")
        ).open_flow("n0")
        with pytest.raises(ConfigurationError):
            api.begin(other)


class TestPackingSession:
    def test_pack_and_flush(self, api):
        flow = api.open_flow("n1")
        session = api.begin(flow)
        session.pack(16, express=True).pack(512, mode=PackMode.LATER)
        message = session.flush()
        assert api.engine.submitted == [message]
        assert [f.size for f in message.fragments] == [16, 512]
        assert message.fragments[0].express
        assert message.fragments[1].mode is PackMode.LATER

    def test_pack_after_flush_rejected(self, api):
        session = api.begin(api.open_flow("n1"))
        session.pack(8)
        session.flush()
        with pytest.raises(ConfigurationError):
            session.pack(8)

    def test_double_flush_rejected(self, api):
        session = api.begin(api.open_flow("n1"))
        session.pack(8)
        session.flush()
        with pytest.raises(ConfigurationError):
            session.flush()

    def test_send_convenience(self, api):
        flow = api.open_flow("n1")
        message = api.send(flow, 1024, header_size=32)
        assert [f.size for f in message.fragments] == [32, 1024]
        assert message.fragments[0].express

    def test_send_without_header(self, api):
        message = api.send(api.open_flow("n1"), 1024, header_size=0)
        assert [f.size for f in message.fragments] == [1024]


class TestReceiveSide:
    def test_subscribe_requires_incoming_flow(self, api):
        outgoing = api.open_flow("n1")
        with pytest.raises(ConfigurationError):
            api.subscribe(outgoing, lambda m, t: None)

    def test_inbox_requires_incoming_flow(self, api):
        outgoing = api.open_flow("n1")
        with pytest.raises(ConfigurationError):
            api.inbox(outgoing)

    def test_incoming_flow_accepted(self, api):
        peer = MadAPI("n1", FakeEngine("n1"), MessageReassembler(Simulator(), "n1"))
        incoming = peer.open_flow("n0")
        api.subscribe(incoming, lambda m, t: None)
        api.subscribe_express(incoming, lambda f, t: None)
        assert api.inbox(incoming) is api.inbox(incoming)
