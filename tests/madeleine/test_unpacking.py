"""Tests for the receive-side unpacking API (mad_begin_unpacking)."""

import pytest

from repro.runtime import Cluster
from repro.sim import Process
from repro.util.errors import ConfigurationError, ProtocolError
from repro.util.units import KiB


@pytest.fixture
def cluster():
    return Cluster(seed=4)


class TestUnpackingSession:
    def test_unpack_in_order(self, cluster):
        api0, api1 = cluster.api("n0"), cluster.api("n1")
        flow = api0.open_flow("n1")
        got = []

        def receiver():
            session = api1.begin_unpacking(flow)
            header = yield session.unpack(16)
            got.append(("header", header.size, cluster.sim.now))
            body = yield session.unpack(4 * KiB)
            got.append(("body", body.size, cluster.sim.now))
            message = yield session.end()
            got.append(("end", message.message_id, cluster.sim.now))

        Process(cluster.sim, receiver())
        message = api0.send(flow, 4 * KiB, header_size=16)
        cluster.run_until_idle()
        assert [g[0] for g in got] == ["header", "body", "end"]
        assert got[0][1] == 16
        assert got[2][1] == message.message_id

    def test_express_header_resolves_before_body(self, cluster):
        """The point of express data: readable ahead of the bulk."""
        api0, api1 = cluster.api("n0"), cluster.api("n1")
        flow = api0.open_flow("n1")
        times = {}

        def receiver():
            session = api1.begin_unpacking(flow)
            yield session.unpack(16)
            times["header"] = cluster.sim.now
            yield session.unpack()
            times["body"] = cluster.sim.now

        Process(cluster.sim, receiver())
        # Large rendezvous body: header (eager) lands long before it.
        api0.send(flow, 512 * KiB, header_size=16)
        cluster.run_until_idle()
        assert times["header"] < times["body"] / 2

    def test_size_mismatch_raises(self, cluster):
        api0, api1 = cluster.api("n0"), cluster.api("n1")
        flow = api0.open_flow("n1")

        def receiver():
            session = api1.begin_unpacking(flow)
            yield session.unpack(999)  # sender packed 16

        Process(cluster.sim, receiver())
        api0.send(flow, 1 * KiB, header_size=16)
        with pytest.raises(ProtocolError, match="expected 999"):
            cluster.run_until_idle()

    def test_unpack_beyond_structure_raises(self, cluster):
        api0, api1 = cluster.api("n0"), cluster.api("n1")
        flow = api0.open_flow("n1")

        def receiver():
            session = api1.begin_unpacking(flow)
            yield session.unpack()
            yield session.unpack()
            yield session.unpack()  # message has only 2 fragments

        Process(cluster.sim, receiver())
        api0.send(flow, 1 * KiB, header_size=16)
        with pytest.raises(ProtocolError, match="only 2 fragment"):
            cluster.run_until_idle()

    def test_unpack_after_end_rejected(self, cluster):
        api1 = cluster.api("n1")
        flow = cluster.api("n0").open_flow("n1")
        session = api1.begin_unpacking(flow)
        session.end()
        with pytest.raises(ConfigurationError):
            session.unpack()

    def test_session_latches_messages_in_order(self, cluster):
        api0, api1 = cluster.api("n0"), cluster.api("n1")
        flow = api0.open_flow("n1")
        seen = []

        def receiver():
            for _ in range(3):
                session = api1.begin_unpacking(flow)
                message = yield session.end()
                seen.append(message.message_id)

        Process(cluster.sim, receiver())
        sent = [api0.send(flow, 256) for _ in range(3)]
        cluster.run_until_idle()
        assert seen == [m.message_id for m in sent]

    def test_session_opened_after_arrival(self, cluster):
        """An already-announced (even completed) message still matches."""
        api0, api1 = cluster.api("n0"), cluster.api("n1")
        flow = api0.open_flow("n1")
        sent = api0.send(flow, 256)
        cluster.run_until_idle()
        got = []

        def late_receiver():
            session = api1.begin_unpacking(flow)
            fragment = yield session.unpack()
            got.append(fragment)
            message = yield session.end()
            got.append(message)

        Process(cluster.sim, late_receiver())
        cluster.run_until_idle()
        assert got[1] is sent

    def test_wrong_direction_rejected(self, cluster):
        api0 = cluster.api("n0")
        flow = api0.open_flow("n1")
        with pytest.raises(ConfigurationError):
            api0.begin_unpacking(flow)
