"""Tests for flows, fragments, and structured messages."""

import pytest

from repro.madeleine.message import Flow, Message, PackMode
from repro.network.virtual import TrafficClass
from repro.util.errors import ConfigurationError


class TestFlow:
    def test_fields(self):
        f = Flow("f", "a", "b", TrafficClass.BULK)
        assert (f.src, f.dst, f.traffic_class) == ("a", "b", TrafficClass.BULK)
        assert f.messages_sent == 0

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            Flow("bad", "a", "a")

    def test_unique_ids(self):
        assert Flow("x", "a", "b").flow_id != Flow("y", "a", "b").flow_id


class TestMessage:
    @pytest.fixture
    def flow(self):
        return Flow("f", "a", "b")

    def test_sequence_numbers_per_flow(self, flow):
        m1, m2 = Message(flow), Message(flow)
        assert (m1.seq, m2.seq) == (0, 1)
        assert flow.messages_sent == 2

    def test_add_fragments_in_order(self, flow):
        m = Message(flow)
        h = m.add_fragment(16, express=True)
        d = m.add_fragment(1024, mode=PackMode.LATER)
        assert [f.index for f in m.fragments] == [0, 1]
        assert h.express and not d.express
        assert d.mode is PackMode.LATER
        assert m.total_size == 1040

    def test_zero_size_fragment_rejected(self, flow):
        with pytest.raises(ConfigurationError):
            Message(flow).add_fragment(0)

    def test_flush_lifecycle(self, flow):
        m = Message(flow)
        m.add_fragment(8)
        assert not m.flushed
        m.mark_flushed(1.0)
        assert m.flushed and m.submit_time == 1.0

    def test_double_flush_rejected(self, flow):
        m = Message(flow)
        m.add_fragment(8)
        m.mark_flushed(1.0)
        with pytest.raises(ConfigurationError):
            m.mark_flushed(2.0)

    def test_empty_flush_rejected(self, flow):
        with pytest.raises(ConfigurationError):
            Message(flow).mark_flushed(0.0)

    def test_pack_after_flush_rejected(self, flow):
        m = Message(flow)
        m.add_fragment(8)
        m.mark_flushed(0.0)
        with pytest.raises(ConfigurationError):
            m.add_fragment(8)

    def test_completion_initially_unresolved(self, flow):
        m = Message(flow)
        assert not m.completion.done
