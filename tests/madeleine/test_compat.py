"""Tests for the mad_* function-style compatibility API."""

import pytest

from repro.madeleine.compat import (
    mad_begin_packing,
    mad_begin_unpacking,
    mad_end_packing,
    mad_end_unpacking,
    mad_pack,
    mad_receive_CHEAPER,
    mad_receive_EXPRESS,
    mad_send_CHEAPER,
    mad_send_LATER,
    mad_send_SAFER,
)
from repro.madeleine.message import PackMode
from repro.runtime import Cluster
from repro.sim import Process
from repro.util.errors import ProtocolError
from repro.util.units import KiB


class TestPackingSide:
    def test_full_roundtrip(self):
        cluster = Cluster(seed=1)
        api0, api1 = cluster.api("n0"), cluster.api("n1")
        flow = api0.open_flow("n1")

        connection = mad_begin_packing(api0, flow)
        mad_pack(connection, 16, mad_send_SAFER, mad_receive_EXPRESS)
        mad_pack(connection, 4 * KiB, mad_send_CHEAPER, mad_receive_CHEAPER)
        message = mad_end_packing(connection)

        assert message.fragments[0].express
        assert message.fragments[0].mode is PackMode.SAFER
        assert message.fragments[1].mode is PackMode.CHEAPER

        got = {}

        def receiver():
            conn = mad_begin_unpacking(api1, flow)
            header = yield mad_unpack_helper(conn, 16)
            got["header"] = header
            body = yield mad_unpack_helper(conn, 4 * KiB)
            got["body"] = body
            final = yield mad_end_unpacking(conn)
            got["message"] = final

        from repro.madeleine.compat import mad_unpack as mad_unpack_helper

        Process(cluster.sim, receiver())
        cluster.run_until_idle()
        assert got["header"].size == 16
        assert got["body"].size == 4 * KiB
        assert got["message"] is message

    def test_later_mode_mapped(self):
        cluster = Cluster(seed=1)
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        connection = mad_begin_packing(api, flow)
        mad_pack(connection, 64, mad_send_LATER)
        message = mad_end_packing(connection)
        assert message.fragments[0].mode is PackMode.LATER
        cluster.run_until_idle()
        assert message.completion.done

    def test_size_mismatch_detected(self):
        from repro.madeleine.compat import mad_unpack

        cluster = Cluster(seed=1)
        api0, api1 = cluster.api("n0"), cluster.api("n1")
        flow = api0.open_flow("n1")
        connection = mad_begin_packing(api0, flow)
        mad_pack(connection, 100)
        mad_end_packing(connection)

        def receiver():
            conn = mad_begin_unpacking(api1, flow)
            yield mad_unpack(conn, 999)

        Process(cluster.sim, receiver())
        with pytest.raises(ProtocolError):
            cluster.run_until_idle()
