"""Tests for receiver-side message reassembly, including property tests
that the reassembler is correct under arbitrary legal slicing/reordering
(everything the optimizer may do on the send side)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.madeleine.message import Flow, Message
from repro.madeleine.rx import MessageReassembler
from repro.network.wire import PacketKind, WirePacket, WireSegment
from repro.sim import Simulator
from repro.util.errors import ProtocolError


def make_message(sizes, dst="n1"):
    flow = Flow("f", "n0", dst)
    message = Message(flow)
    for i, size in enumerate(sizes):
        message.add_fragment(size, express=(i == 0))
    return message


def packet_of(fragment_slices, dst="n1"):
    segs = tuple(WireSegment(f, off, ln) for f, off, ln in fragment_slices)
    return WirePacket(PacketKind.EAGER, "n0", dst, 0, segs)


@pytest.fixture
def reassembler():
    return MessageReassembler(Simulator(), "n1")


class TestBasicReassembly:
    def test_single_packet_completes_message(self, reassembler):
        m = make_message([100])
        f = m.fragments[0]
        reassembler.sink(packet_of([(f, 0, 100)]))
        assert m.completion.done
        assert reassembler.messages_completed == 1
        assert reassembler.incomplete_messages == 0

    def test_multi_fragment_message(self, reassembler):
        m = make_message([16, 1024])
        h, d = m.fragments
        reassembler.sink(packet_of([(h, 0, 16)]))
        assert not m.completion.done
        assert reassembler.incomplete_messages == 1
        reassembler.sink(packet_of([(d, 0, 1024)]))
        assert m.completion.done

    def test_aggregated_packet_with_two_messages(self, reassembler):
        m1, m2 = make_message([64]), make_message([64])
        reassembler.sink(
            packet_of([(m1.fragments[0], 0, 64), (m2.fragments[0], 0, 64)])
        )
        assert m1.completion.done and m2.completion.done

    def test_striped_fragment_out_of_order(self, reassembler):
        m = make_message([1000])
        f = m.fragments[0]
        reassembler.sink(packet_of([(f, 600, 400)]))
        assert not m.completion.done
        reassembler.sink(packet_of([(f, 0, 600)]))
        assert m.completion.done

    def test_completion_value_is_time(self):
        sim = Simulator()
        r = MessageReassembler(sim, "n1")
        m = make_message([10])
        sim.schedule(5.0, lambda: r.sink(packet_of([(m.fragments[0], 0, 10)])))
        sim.run()
        assert m.completion.value == 5.0


class TestSafety:
    def test_duplicate_slice_rejected(self, reassembler):
        m = make_message([100])
        f = m.fragments[0]
        reassembler.sink(packet_of([(f, 0, 60)]))
        with pytest.raises(ProtocolError):
            reassembler.sink(packet_of([(f, 50, 50)]))

    def test_out_of_bounds_slice_rejected(self, reassembler):
        m = make_message([100])
        f = m.fragments[0]
        with pytest.raises(ProtocolError):
            reassembler.sink(packet_of([(f, 50, 60)]))

    def test_wrong_node_rejected(self, reassembler):
        m = make_message([100], dst="other")
        with pytest.raises(ProtocolError):
            reassembler.sink(packet_of([(m.fragments[0], 0, 100)], dst="n1"))

    def test_non_fragment_payload_rejected(self, reassembler):
        pkt = WirePacket(
            PacketKind.EAGER, "n0", "n1", 0, (WireSegment("junk", 0, 10),)
        )
        with pytest.raises(ProtocolError):
            reassembler.sink(pkt)


class TestNotifications:
    def test_flow_subscription(self, reassembler):
        m = make_message([50])
        seen = []
        reassembler.subscribe(m.flow, lambda msg, t: seen.append((msg, t)))
        reassembler.sink(packet_of([(m.fragments[0], 0, 50)]))
        assert seen == [(m, 0.0)]

    def test_express_callback_before_body(self, reassembler):
        m = make_message([16, 1024])
        events = []
        reassembler.subscribe_express(m.flow, lambda frag, t: events.append("express"))
        reassembler.subscribe(m.flow, lambda msg, t: events.append("complete"))
        reassembler.sink(packet_of([(m.fragments[0], 0, 16)]))
        assert events == ["express"]
        reassembler.sink(packet_of([(m.fragments[1], 0, 1024)]))
        assert events == ["express", "complete"]

    def test_inbox_receives_completed_messages(self):
        sim = Simulator()
        r = MessageReassembler(sim, "n1")
        m = make_message([20])
        inbox = r.inbox(m.flow)
        assert len(inbox) == 0
        r.sink(packet_of([(m.fragments[0], 0, 20)]))
        assert len(inbox) == 1
        assert inbox.get().value is m

    def test_global_hook(self, reassembler):
        seen = []
        reassembler.on_message_complete = lambda msg, t: seen.append(msg)
        m = make_message([10])
        reassembler.sink(packet_of([(m.fragments[0], 0, 10)]))
        assert seen == [m]


@st.composite
def sliced_message(draw):
    """A message plus a random legal slicing of its fragments into packets."""
    sizes = draw(st.lists(st.integers(min_value=1, max_value=2048), min_size=1, max_size=6))
    message = make_message(sizes)
    slices = []
    for fragment in message.fragments:
        offset = 0
        while offset < fragment.size:
            length = draw(st.integers(min_value=1, max_value=fragment.size - offset))
            slices.append((fragment, offset, length))
            offset += length
    # random interleaving across fragments
    order = draw(st.permutations(range(len(slices))))
    return message, [slices[i] for i in order]


class TestReassemblyProperties:
    @settings(max_examples=60, deadline=None)
    @given(sliced_message())
    def test_any_legal_slicing_completes_exactly_once(self, case):
        message, slices = case
        r = MessageReassembler(Simulator(), "n1")
        completions = []
        r.subscribe(message.flow, lambda m, t: completions.append(m))
        for fragment, offset, length in slices:
            r.sink(packet_of([(fragment, offset, length)]))
        assert message.completion.done
        assert completions == [message]
        assert r.incomplete_messages == 0

    @settings(max_examples=30, deadline=None)
    @given(sliced_message())
    def test_incomplete_until_last_slice(self, case):
        message, slices = case
        r = MessageReassembler(Simulator(), "n1")
        for fragment, offset, length in slices[:-1]:
            r.sink(packet_of([(fragment, offset, length)]))
        assert not message.completion.done
        fragment, offset, length = slices[-1]
        r.sink(packet_of([(fragment, offset, length)]))
        assert message.completion.done
