"""Tests for the online parameter-sweep controller."""

from repro.core.config import EngineConfig
from repro.tuner import SweepConfig, SweepController


class _Stats:
    def __init__(self):
        self.payload_bytes = 0
        self.dispatches = 0


class _Engine:
    """Just enough engine for the controller: a config and counters."""

    def __init__(self):
        self.config = EngineConfig()
        self.stats = _Stats()

    def credit(self, payload, dispatches):
        self.stats.payload_bytes += payload
        self.stats.dispatches += dispatches


def drive_trial(engine, controller, payload, dispatches):
    """Run one full trial window, crediting counters along the way.

    Credits land before each step, mirroring the real call order: the
    tuner observes the counters of decisions already dispatched, so the
    step that closes a trial sees only that trial's own credits.
    """
    changed = False
    for _ in range(controller.config.trial_decisions):
        engine.credit(payload, dispatches)
        changed |= controller.step()
    return changed


class TestEpsilonGreedy:
    def make(self, **kwargs):
        engine = _Engine()
        config = SweepConfig(
            mode="epsilon", epsilon=0.0, trial_decisions=4, **kwargs
        )
        return engine, SweepController(engine, config)

    def test_first_step_applies_first_arm(self):
        engine, controller = self.make(windows=(8, 16), budgets=(32,))
        assert controller.step() is True
        assert controller.current == (8, 32)
        assert engine.config.lookahead_window == 8
        assert engine.config.search_budget == 32

    def test_untried_arms_explored_in_grid_order(self):
        engine, controller = self.make(windows=(8, 16), budgets=(32, 64))
        controller.step()
        seen = [controller.current]
        for _ in range(3):
            drive_trial(engine, controller, payload=256, dispatches=1)
            seen.append(controller.current)
        assert seen == [(8, 32), (8, 64), (16, 32), (16, 64)]

    def test_exploits_best_arm(self):
        """With epsilon 0, the controller settles on the best-rewarded arm."""
        engine, controller = self.make(windows=(8, 16), budgets=(32,))
        controller.step()
        # Arm (8, 32) earns 256 B/dispatch, arm (16, 32) earns 1024.
        drive_trial(engine, controller, payload=256, dispatches=1)
        assert controller.current == (16, 32)
        drive_trial(engine, controller, payload=1024, dispatches=1)
        assert controller.current == (16, 32)
        assert controller.best_arm() == (16, 32)

    def test_rewards_are_bytes_per_dispatch(self):
        engine, controller = self.make(windows=(8,), budgets=(32,))
        controller.step()
        drive_trial(engine, controller, payload=512, dispatches=2)
        assert controller.rewards[(8, 32)] == [256.0]

    def test_summary_shape(self):
        engine, controller = self.make(windows=(8, 16), budgets=(32,))
        controller.step()
        drive_trial(engine, controller, payload=256, dispatches=1)
        summary = controller.summary()
        assert summary["mode"] == "epsilon"
        assert summary["arms"] == 2
        assert summary["trials"] == 1
        assert summary["rewards"] == {"w8/b32": 256.0}


class TestSuccessiveHalving:
    def test_converges_to_best_arm(self):
        engine = _Engine()
        config = SweepConfig(
            mode="halving", trial_decisions=2, windows=(8, 16), budgets=(32, 64)
        )
        controller = SweepController(engine, config)
        payoff = {(8, 32): 100, (8, 64): 200, (16, 32): 400, (16, 64): 300}
        controller.step()
        for _ in range(24):
            drive_trial(engine, controller, payload=payoff[controller.current], dispatches=1)
            if controller.converged is not None:
                break
        assert controller.converged == (16, 32)
        # once converged, the arm never changes again
        assert drive_trial(engine, controller, payload=1, dispatches=1) is False
        assert controller.current == (16, 32)


class TestPrivateConfigCopy:
    def test_tuner_install_does_not_mutate_shared_config(self):
        """Sweeping must not move the knobs of other engines sharing the
        config object the cluster was built with."""
        from repro.runtime import Cluster

        shared = EngineConfig(lookahead_window=16, search_budget=32)
        cluster = Cluster(
            n_nodes=2,
            strategy="search",
            config=shared,
            seed=0,
            tuner={
                "min_dwell": 2,
                "sweep": {"windows": [4], "budgets": [8], "trial_decisions": 2},
            },
        )
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        for _ in range(30):
            api.send(flow, 256)
        cluster.run_until_idle()
        assert shared.lookahead_window == 16 and shared.search_budget == 32
        engine = cluster.engine("n0")
        assert engine.config is not shared
        assert engine.config.lookahead_window == 4
