"""Tests for the strict ``"tuner"`` scenario block."""

import pytest

from repro.runtime.scenario import build_scenario
from repro.tuner import RailsConfig, SweepConfig, TunerConfig
from repro.util.errors import ConfigurationError


class TestTunerConfig:
    def test_defaults(self):
        config = TunerConfig()
        assert config.enabled
        assert config.min_dwell == 8
        assert config.drift_window == 3
        assert config.deep_backlog == 8
        assert config.tail_drift_factor == 4.0
        assert config.sweep is None and config.rails is None

    def test_from_spec_full_block(self):
        config = TunerConfig.from_spec(
            {
                "enabled": True,
                "min_dwell": 4,
                "drift_window": 2,
                "deep_backlog": 16,
                "tail_drift_factor": None,
                "sweep": {"mode": "halving", "windows": [8, 16], "budgets": [32]},
                "rails": {"p99_budget_us": 250.0},
            }
        )
        assert config.min_dwell == 4
        assert config.tail_drift_factor is None
        assert config.sweep.mode == "halving"
        assert config.sweep.windows == (8, 16)
        assert config.rails.p99_budget_us == 250.0
        # untouched sub-keys keep their defaults
        assert config.rails.min_samples == 32

    @pytest.mark.parametrize(
        "spec",
        [
            {"min_dwel": 4},  # typo at the top level
            {"sweep": {"windows": [8], "budgets": [8], "modes": "epsilon"}},
            {"rails": {"p99_budget": 100.0}},
        ],
    )
    def test_unknown_keys_rejected(self, spec):
        with pytest.raises(ConfigurationError, match="unknown"):
            TunerConfig.from_spec(spec)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_dwell": 0},
            {"drift_window": 0},
            {"deep_backlog": 0},
            {"tail_drift_factor": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            TunerConfig(**kwargs)


class TestSweepConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SweepConfig(mode="greedy")
        with pytest.raises(ConfigurationError):
            SweepConfig(epsilon=1.5)
        with pytest.raises(ConfigurationError):
            SweepConfig(trial_decisions=0)
        with pytest.raises(ConfigurationError):
            SweepConfig(windows=())
        with pytest.raises(ConfigurationError):
            SweepConfig(budgets=(0,))


class TestRailsConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RailsConfig(p99_budget_us=0.0)
        with pytest.raises(ConfigurationError):
            RailsConfig(min_samples=0)
        with pytest.raises(ConfigurationError):
            RailsConfig(refresh_every=0)


class TestScenarioWiring:
    BASE = {
        "cluster": {"n_nodes": 2, "strategy": "aggregate"},
        "workloads": [{"app": "stream", "src": "n0", "dst": "n1", "count": 1}],
    }

    def test_tuner_block_installs_cluster_tuner(self):
        scenario = dict(self.BASE, tuner={"min_dwell": 2})
        cluster, _ = build_scenario(scenario)
        assert cluster.tuner is not None
        assert set(cluster.tuner.tuners) == {"n0", "n1"}

    def test_disabled_block_installs_nothing(self):
        scenario = dict(self.BASE, tuner={"enabled": False, "min_dwell": 2})
        cluster, _ = build_scenario(scenario)
        assert cluster.tuner is None

    def test_no_block_installs_nothing(self):
        cluster, _ = build_scenario(dict(self.BASE))
        assert cluster.tuner is None
        assert all(
            engine.rail_selector is None for engine in cluster.engines.values()
        )

    def test_typo_in_block_rejected(self):
        scenario = dict(self.BASE, tuner={"min_dwel": 2})
        with pytest.raises(ConfigurationError, match="min_dwel"):
            build_scenario(scenario)

    def test_legacy_engine_rejected(self):
        scenario = dict(self.BASE, tuner={"min_dwell": 2})
        scenario["cluster"] = {"n_nodes": 2, "engine": "legacy"}
        with pytest.raises(ConfigurationError, match="optimizing"):
            build_scenario(scenario)
