"""Tests for the hysteretic regime tracker."""

from repro.tuner import RegimeTracker


def feed(tracker, backlogs):
    """Feed a backlog trace; returns the indices of committed flips."""
    return [i for i, b in enumerate(backlogs) if tracker.observe(b)]


class TestClassification:
    def test_boundary(self):
        tracker = RegimeTracker(deep_backlog=8)
        assert tracker.classify(7) == "sparse"
        assert tracker.classify(8) == "deep"


class TestDriftWindow:
    def test_short_burst_does_not_flip(self):
        """Contrary evidence shorter than the drift window is noise."""
        tracker = RegimeTracker(min_dwell=2, drift_window=3, deep_backlog=8)
        flips = feed(tracker, [0, 0, 20, 20, 0, 0])  # burst of 2 < window 3
        assert flips == []
        assert tracker.committed == "sparse"
        assert tracker.flips == 0

    def test_sustained_contrary_flips_once(self):
        tracker = RegimeTracker(min_dwell=2, drift_window=3, deep_backlog=8)
        flips = feed(tracker, [0, 0, 20, 20, 20, 20])
        assert flips == [4]  # the third consecutive deep observation
        assert tracker.committed == "deep"
        assert tracker.flips == 1

    def test_oscillating_trace_never_flips(self):
        """The regression the hysteresis exists for: strict alternation
        used to flip a raw classifier every observation; the tracker
        stands still."""
        tracker = RegimeTracker(min_dwell=4, drift_window=2, deep_backlog=8)
        flips = feed(tracker, [0, 20] * 50)
        assert flips == []
        assert tracker.flips == 0
        assert tracker.committed == "sparse"
        # ... and the dwell clock kept running through the noise.
        assert tracker.stable

    def test_dwell_survives_sub_window_bursts(self):
        tracker = RegimeTracker(min_dwell=4, drift_window=3, deep_backlog=8)
        feed(tracker, [0, 0, 20, 0, 20, 20, 0])
        assert tracker.committed == "sparse"
        assert tracker.dwell == 7


class TestStability:
    def test_stable_after_min_dwell(self):
        tracker = RegimeTracker(min_dwell=3, drift_window=2)
        assert not tracker.stable
        feed(tracker, [0, 0])
        assert not tracker.stable
        feed(tracker, [0])
        assert tracker.stable

    def test_flip_resets_dwell(self):
        tracker = RegimeTracker(min_dwell=3, drift_window=2, deep_backlog=8)
        feed(tracker, [0, 0, 0])
        assert tracker.stable
        feed(tracker, [20, 20])  # committed flip
        assert tracker.committed == "deep"
        assert not tracker.stable
        assert tracker.dwell == 1

    def test_summary_shape(self):
        tracker = RegimeTracker()
        tracker.observe(0)
        summary = tracker.summary()
        assert summary["regime"] == "sparse"
        assert summary["observations"] == 1
        assert set(summary) == {"regime", "stable", "dwell", "flips", "observations"}
