"""Tests for tail-acting rail selection."""

from types import SimpleNamespace

from repro.tuner import RailsConfig, TailRailSelector
from repro.tuner import rails as rails_mod


def _driver(name):
    return SimpleNamespace(nic=SimpleNamespace(name=name))


def _stats(p99_us, count=100):
    return SimpleNamespace(p99_us=p99_us, count=count)


class _FakeView:
    """Just enough TailView: per-rail stats + SLO inputs."""

    def __init__(self, by_nic, objectives=()):
        self.by_nic = by_nic
        self.objectives = objectives
        self.registry = None  # only touched via evaluate_slo (patched)

    def rail(self, nic):
        return self.by_nic.get(nic)


def make(by_nic, *, objectives=(), **config_kwargs):
    config = RailsConfig(
        p99_budget_us=config_kwargs.pop("p99_budget_us", 100.0),
        min_samples=config_kwargs.pop("min_samples", 10),
        refresh_every=config_kwargs.pop("refresh_every", 1),
    )
    return TailRailSelector(_FakeView(by_nic, objectives), config)


class TestOrdering:
    def test_within_budget_rails_first_best_p99_leads(self):
        drivers = [_driver("slow"), _driver("ok"), _driver("best")]
        selector = make(
            {"slow": _stats(500.0), "ok": _stats(90.0), "best": _stats(20.0)}
        )
        ordered = [d.nic.name for d in selector.order(drivers)]
        assert ordered == ["best", "ok", "slow"]
        assert selector.last_buckets == {
            "slow": "over",
            "ok": "within",
            "best": "within",
        }

    def test_unmeasured_rails_keep_position_between_within_and_over(self):
        drivers = [_driver("over"), _driver("new"), _driver("good")]
        selector = make({"over": _stats(500.0), "good": _stats(50.0)})
        ordered = [d.nic.name for d in selector.order(drivers)]
        assert ordered == ["good", "new", "over"]
        assert selector.last_buckets["new"] == "unmeasured"

    def test_too_few_samples_is_unmeasured(self):
        drivers = [_driver("a"), _driver("b")]
        selector = make(
            {"a": _stats(500.0, count=3), "b": _stats(50.0)}, min_samples=10
        )
        ordered = [d.nic.name for d in selector.order(drivers)]
        assert ordered == ["b", "a"]
        assert selector.last_buckets["a"] == "unmeasured"

    def test_nothing_measured_keeps_original_order(self):
        drivers = [_driver("x"), _driver("y")]
        selector = make({})
        assert list(selector.order(drivers)) == drivers

    def test_all_over_budget_with_burning_slo_explores_unmeasured_first(self):
        """The skewed-rail regression: TCP over budget, MX unmeasured —
        the unmeasured rail must be tried, not left behind the known-bad
        one."""
        drivers = [_driver("tcp"), _driver("mx")]
        selector = make({"tcp": _stats(500.0)})  # no objectives => burning
        ordered = [d.nic.name for d in selector.order(drivers)]
        assert ordered == ["mx", "tcp"]

    def test_all_over_budget_with_healthy_slo_keeps_original_order(self, monkeypatch):
        drivers = [_driver("a"), _driver("b")]
        selector = make(
            {"a": _stats(500.0), "b": _stats(600.0)},
            objectives=(object(),),
        )
        monkeypatch.setattr(
            rails_mod,
            "evaluate_slo",
            lambda registry, objectives: [SimpleNamespace(worst_burn=0.1)],
        )
        assert [d.nic.name for d in selector.order(drivers)] == ["a", "b"]

    def test_all_over_budget_with_burning_slo_goes_least_bad_first(self, monkeypatch):
        drivers = [_driver("worse"), _driver("bad")]
        selector = make(
            {"worse": _stats(900.0), "bad": _stats(500.0)},
            objectives=(object(),),
        )
        monkeypatch.setattr(
            rails_mod,
            "evaluate_slo",
            lambda registry, objectives: [SimpleNamespace(worst_burn=2.0)],
        )
        assert [d.nic.name for d in selector.order(drivers)] == ["bad", "worse"]


class TestCaching:
    def test_order_cached_between_refreshes(self):
        drivers = [_driver("a"), _driver("b")]
        view_stats = {"a": _stats(500.0), "b": _stats(50.0)}
        selector = make(dict(view_stats), refresh_every=100)
        first = selector.order(drivers)
        # Swapping the stats has no effect until the refresh interval.
        selector.tail_view.by_nic = {"a": _stats(50.0), "b": _stats(500.0)}
        assert selector.order(drivers) is first
        assert selector.refreshes == 1

    def test_refresh_recomputes(self):
        drivers = [_driver("a"), _driver("b")]
        selector = make({"a": _stats(500.0), "b": _stats(50.0)}, refresh_every=2)
        assert [d.nic.name for d in selector.order(drivers)] == ["b", "a"]
        selector.tail_view.by_nic = {"a": _stats(50.0), "b": _stats(500.0)}
        selector.order(drivers)  # second call within the window: cached
        assert [d.nic.name for d in selector.order(drivers)] == ["a", "b"]
        assert selector.refreshes == 2

    def test_driver_set_change_recomputes_immediately(self):
        selector = make({"a": _stats(50.0)}, refresh_every=100)
        drivers = [_driver("a"), _driver("b")]
        selector.order(drivers)
        shrunk = drivers[:1]
        assert list(selector.order(shrunk)) == shrunk
        assert selector.refreshes == 2

    def test_summary_shape(self):
        selector = make({"a": _stats(50.0)})
        selector.order([_driver("a")])
        summary = selector.summary()
        assert summary["p99_budget_us"] == 100.0
        assert summary["buckets"] == {"a": "within"}
        assert summary["order"] == ["a"]
