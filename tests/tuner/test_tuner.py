"""The tuner's core contracts: escape hatch, equivalence, fallback.

* ``tuner: off`` (and no tuner block at all) dispatches **byte
  identically** to a tuner-less build on the E2/E5-style workloads —
  the escape hatch the whole subsystem is gated behind;
* with the tuner *on* (specialization only — no sweep, no rails), a
  stable regime serves specialized plans that are byte-identical to the
  general path, so whole-run dispatch logs still match exactly;
* a failed guard (drift of a folded value) falls back to the general
  path **within the same decision** — no wrong plan, no dead cycle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.kernel import build_loaded_cluster
from repro.core.config import EngineConfig
from repro.core.strategies.search import BoundedSearchStrategy
from repro.middleware import uniform_small_flows
from repro.middleware.mpi_like import StreamApp
from repro.runtime import Cluster, run_session
from repro.tuner import ClusterTuner, Tuner, TunerConfig, TunedStrategy
from repro.util.errors import ConfigurationError
from repro.util.units import us

from tests.core.test_kernel_equivalence import _record_dispatches, plan_signature


def run_e2(tuner=None):
    """Scaled-down E2 burst; returns (cluster, ordered dispatch log)."""
    cluster = Cluster(seed=102, tuner=tuner)
    log = _record_dispatches(cluster)
    apps = uniform_small_flows(4, size=256, count=40, interval=1 * us)
    run_session(cluster, [a.install for a in apps])
    return cluster, log


def run_e5(budget, tuner=None):
    """Scaled-down E5 mixed streams over bounded search."""
    cluster = Cluster(
        n_nodes=3,
        seed=5,
        strategy=lambda: BoundedSearchStrategy(budget=budget),
        tuner=tuner,
    )
    log = _record_dispatches(cluster)
    apps = [
        StreamApp(
            "n0",
            "n1" if i % 2 == 0 else "n2",
            size=256 * (1 + i),
            count=30,
            interval=2 * us,
            size_sigma=0.8,
            name=f"s{i}",
        )
        for i in range(4)
    ]
    run_session(cluster, [a.install for a in apps])
    return cluster, log


def loaded_search_engine(depth=24):
    """A statically loaded engine with an installed, warm tuner."""
    cluster = build_loaded_cluster(
        depth,
        strategy=lambda: BoundedSearchStrategy(budget=16),
        config=EngineConfig(lookahead_window=16),
    )
    engine = cluster.engine("n0")
    driver = engine.drivers[0]
    tuner = Tuner(engine, TunerConfig(min_dwell=2, drift_window=3))
    tuner.install()
    for _ in range(4):
        engine.strategy.make_plan(engine, driver)
    assert tuner.active is not None, "warmup failed to install a specialization"
    return engine, driver, tuner


class TestInstall:
    def test_install_wraps_strategy(self):
        cluster = Cluster(seed=0)
        engine = cluster.engine("n0")
        inner = engine.strategy
        tuner = Tuner(engine)
        tuner.install()
        assert isinstance(engine.strategy, TunedStrategy)
        assert engine.strategy.inner is inner

    def test_double_install_rejected(self):
        engine = Cluster(seed=0).engine("n0")
        tuner = Tuner(engine)
        tuner.install()
        with pytest.raises(ConfigurationError, match="already installed"):
            tuner.install()

    def test_cluster_tuner_double_install_rejected(self):
        cluster = Cluster(seed=0)
        tuner = ClusterTuner()
        tuner.install(cluster)
        with pytest.raises(ConfigurationError, match="already installed"):
            tuner.install(cluster)


class TestEscapeHatch:
    """``tuner: off`` must be the absence of the subsystem, not a branch."""

    def test_disabled_block_leaves_engine_untouched(self):
        cluster, _ = run_e2(tuner={"enabled": False})
        for name in cluster.node_names:
            engine = cluster.engine(name)
            assert not isinstance(engine.strategy, TunedStrategy)
            assert engine.rail_selector is None
        assert cluster.tuner is None

    def test_e2_dispatch_byte_identical(self):
        _, baseline = run_e2()
        assert baseline, "workload produced no dispatches"
        _, disabled = run_e2(tuner={"enabled": False})
        assert baseline == disabled

    def test_e5_dispatch_byte_identical(self):
        _, baseline = run_e5(budget=8)
        assert baseline, "workload produced no dispatches"
        _, disabled = run_e5(budget=8, tuner={"enabled": False})
        assert baseline == disabled


class TestSpecializedEquivalence:
    """Tuner ON (specialization only): same bytes, faster path."""

    def test_e2_identical_and_specialized(self):
        _, baseline = run_e2()
        cluster, tuned = run_e2(tuner={"min_dwell": 4})
        assert tuned == baseline
        totals = cluster.tuner.summary()["totals"]
        assert totals["installs"] >= 1
        assert totals["specialized"] > 0

    def test_e5_identical_and_mostly_specialized(self):
        _, baseline = run_e5(budget=8)
        cluster, tuned = run_e5(budget=8, tuner={"min_dwell": 4})
        assert tuned == baseline
        totals = cluster.tuner.summary()["totals"]
        assert totals["specialized"] / totals["decisions"] >= 0.5

    @settings(max_examples=8, deadline=None)
    @given(
        n_flows=st.integers(min_value=1, max_value=3),
        size=st.integers(min_value=64, max_value=2048),
        count=st.integers(min_value=5, max_value=25),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_stable_regime_is_byte_identical(
        self, n_flows, size, count, seed
    ):
        """Satellite (c): across randomized workloads, a tuned run's
        dispatch log equals the untuned one bit for bit."""

        def run(tuner):
            cluster = Cluster(seed=seed, tuner=tuner)
            log = _record_dispatches(cluster)
            apps = uniform_small_flows(
                n_flows, size=size, count=count, interval=1 * us
            )
            run_session(cluster, [a.install for a in apps])
            return log

        assert run(None) == run({"min_dwell": 2})


class TestDriftFallback:
    def test_specialized_plan_matches_general(self):
        engine, driver, tuner = loaded_search_engine()
        wrapped = engine.strategy
        specialized = wrapped.make_plan(engine, driver)
        assert wrapped.explain_last()["tuner_path"] == "specialized"
        general = wrapped.inner.make_plan(engine, driver)
        assert plan_signature(specialized) == plan_signature(general)

    def test_guard_failure_falls_back_within_one_decision(self):
        engine, driver, tuner = loaded_search_engine()
        misses = tuner.stats.misses
        # Move a value the specialization folded: the very next decision
        # must MISS the guard and still produce the general plan.
        engine.config.lookahead_window = 8
        plan = engine.strategy.make_plan(engine, driver)
        assert tuner.stats.misses == misses + 1
        assert engine.strategy.explain_last()["tuner_path"] == "general"
        general = engine.strategy.inner.make_plan(engine, driver)
        assert plan_signature(plan) == plan_signature(general)

    def test_explain_last_reports_specialization(self):
        engine, driver, tuner = loaded_search_engine()
        engine.strategy.make_plan(engine, driver)
        explain = engine.strategy.explain_last()
        assert explain["tuner_path"] == "specialized"
        assert explain["tuner_regime"] == "deep"
        assert explain["specialization"] == tuner.active.spec_id
        assert explain["inner_strategy"] == "search"


class TestHistory:
    def test_install_then_drift_invalidation(self):
        engine, driver, tuner = loaded_search_engine()
        spec_id = tuner.active.spec_id
        assert tuner.history[-1] == ("install", spec_id, "deep")
        invalidations = tuner.stats.invalidations
        # Starve the tracker: a sustained sparse streak past the drift
        # window commits a flip and must tear the specialization down.
        from types import SimpleNamespace

        idle = SimpleNamespace(waiting=SimpleNamespace(total_pending=0))
        for _ in range(3):
            tuner.on_decision(idle)
        assert tuner.active is None
        assert tuner.stats.invalidations == invalidations + 1
        assert tuner.history[-1] == ("invalidate", spec_id, "drift")

    def test_summary_shape(self):
        engine, driver, tuner = loaded_search_engine()
        summary = tuner.summary()
        assert summary["installs"] == tuner.stats.installs >= 1
        assert summary["active"]["id"] == tuner.active.spec_id
        assert summary["active"]["regime"] == "deep"
        assert summary["tracker"]["regime"] == "deep"
        assert summary["history"][0]["event"] == "install"
        assert "sweep" not in summary and "rails" not in summary
