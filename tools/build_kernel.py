#!/usr/bin/env python
"""Build the compiled decision kernel (``REPRO_KERNEL=compiled``).

Compiles :mod:`repro.core._kernel_hot` — the one hot-path module, kept
free of engine imports for exactly this purpose — into an extension
module named ``repro.core._kernel_hot_c`` using mypyc (preferred) or
Cython when available.  The kernel facade (:mod:`repro.core.kernel`)
imports that module only when ``REPRO_KERNEL=compiled`` is set, and
falls back to the pure-Python kernel with a warning when it is absent,
so this script is strictly optional: nothing in the repository requires
a compiler toolchain.

Usage::

    python tools/build_kernel.py            # build in-place under src/
    python tools/build_kernel.py --check    # report toolchain, exit 0/1

Exit status: 0 on success, 2 when no compiler toolchain is installed
(graceful: the pure-Python kernel remains the default), 1 on a real
build failure.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SOURCE = REPO / "src" / "repro" / "core" / "_kernel_hot.py"
TARGET_STEM = "_kernel_hot_c"


def _toolchain() -> str | None:
    """Which compiler backend is importable, if any."""
    try:
        import mypyc  # noqa: F401

        return "mypyc"
    except ImportError:
        pass
    try:
        import Cython  # noqa: F401

        return "cython"
    except ImportError:
        return None


def _build_mypyc(workdir: Path) -> Path:
    """Compile with mypyc; returns the built extension's path."""
    # mypyc names the extension after the module; compile a renamed
    # copy so the pure-Python module stays importable side by side.
    clone = workdir / f"{TARGET_STEM}.py"
    shutil.copyfile(SOURCE, clone)
    subprocess.run(
        [sys.executable, "-m", "mypyc", clone.name],
        cwd=workdir,
        check=True,
    )
    built = sorted(workdir.glob(f"{TARGET_STEM}.*.so")) or sorted(
        workdir.glob(f"{TARGET_STEM}*.pyd")
    )
    if not built:
        raise FileNotFoundError("mypyc reported success but built no extension")
    return built[0]


def _build_cython(workdir: Path) -> Path:
    """Compile with Cython in pure-Python mode; returns the extension."""
    from Cython.Build import cythonize  # type: ignore[import-not-found]
    from setuptools import Extension
    from setuptools.dist import Distribution

    clone = workdir / f"{TARGET_STEM}.py"
    shutil.copyfile(SOURCE, clone)
    ext_modules = cythonize(
        [Extension(TARGET_STEM, [str(clone)])],
        language_level=3,
        quiet=True,
    )
    dist = Distribution({"ext_modules": ext_modules})
    cmd = dist.get_command_obj("build_ext")
    cmd.build_lib = str(workdir)  # type: ignore[union-attr]
    cmd.build_temp = str(workdir / "tmp")  # type: ignore[union-attr]
    dist.run_command("build_ext")
    built = sorted(workdir.glob(f"{TARGET_STEM}.*.so")) or sorted(
        workdir.glob(f"{TARGET_STEM}*.pyd")
    )
    if not built:
        raise FileNotFoundError("cython reported success but built no extension")
    return built[0]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="only report whether a compiler toolchain is available",
    )
    args = parser.parse_args(argv)

    backend = _toolchain()
    if args.check:
        if backend is None:
            print("no compiler toolchain (mypyc/Cython) installed")
            return 2
        print(f"toolchain available: {backend}")
        return 0
    if backend is None:
        print(
            "no compiler toolchain (mypyc/Cython) installed; the pure-Python "
            "kernel remains the default — nothing to do",
            file=sys.stderr,
        )
        return 2

    with tempfile.TemporaryDirectory(prefix="repro-kernel-") as tmp:
        workdir = Path(tmp)
        try:
            if backend == "mypyc":
                built = _build_mypyc(workdir)
            else:
                built = _build_cython(workdir)
        except Exception as exc:  # build failure is a real error
            print(f"kernel build failed ({backend}): {exc}", file=sys.stderr)
            return 1
        dest = SOURCE.parent / built.name
        shutil.copyfile(built, dest)
    print(f"compiled kernel installed at {dest}")
    print("activate it with REPRO_KERNEL=compiled")
    return 0


if __name__ == "__main__":
    sys.exit(main())
