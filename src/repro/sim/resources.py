"""Classic queueing primitives on top of the event kernel.

:class:`Resource` models a counted resource with FIFO admission — we use
it for host-CPU contention (PIO transfers burn host cycles; DMA does
not).  :class:`Store` is an unbounded producer/consumer mailbox used for
receiver-side hand-off to middleware processes.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import Simulator
from repro.sim.process import Future
from repro.util.errors import SimulationError

__all__ = ["Resource", "Store"]


class Resource:
    """A counted resource with FIFO waiters.

    ``acquire()`` returns a :class:`Future` that resolves when a unit is
    granted; the holder must call ``release()`` exactly once per grant.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self._sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Future] = deque()

    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending acquire requests."""
        return len(self._waiters)

    def acquire(self) -> Future:
        """Request one unit; the returned future resolves on grant."""
        grant = Future()
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.resolve(None)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Return one unit, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            # Hand the unit directly to the next waiter; in_use unchanged.
            self._waiters.popleft().resolve(None)
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO mailbox bridging event-style producers and processes."""

    def __init__(self, sim: Simulator, name: str = "store") -> None:
        self._sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Future] = deque()

    def put(self, item: Any) -> None:
        """Deposit one item, waking the oldest blocked ``get`` if any."""
        if self._getters:
            self._getters.popleft().resolve(item)
        else:
            self._items.append(item)

    def get(self) -> Future:
        """Take the oldest item; resolves immediately if one is queued."""
        fut = Future()
        if self._items:
            fut.resolve(self._items.popleft())
        else:
            self._getters.append(fut)
        return fut

    def __len__(self) -> int:
        return len(self._items)
