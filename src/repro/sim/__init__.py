"""Discrete-event simulation kernel.

A deliberately small, deterministic event engine:

* :class:`~repro.sim.engine.Simulator` — the clock and event loop;
* :class:`~repro.sim.event.Event` / :class:`~repro.sim.event.EventQueue` —
  cancellable scheduled callbacks with deterministic tie-breaking;
* :class:`~repro.sim.process.Process` / :class:`~repro.sim.process.Future`
  — generator-based cooperative processes for closed-loop workloads;
* :class:`~repro.sim.resources.Resource` /
  :class:`~repro.sim.resources.Store` — classic queueing primitives used
  to model host CPU contention and mailbox hand-off.

Everything above (:mod:`repro.network`, :mod:`repro.core`, …) runs inside
one :class:`Simulator` per experiment.
"""

from repro.sim.engine import Simulator
from repro.sim.event import Event, EventQueue
from repro.sim.process import Future, Process, all_of
from repro.sim.resources import Resource, Store

__all__ = [
    "Event",
    "EventQueue",
    "Future",
    "Process",
    "Resource",
    "Simulator",
    "Store",
    "all_of",
]
