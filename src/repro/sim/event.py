"""Scheduled events and the priority queue that orders them.

Determinism contract: two events scheduled for the same virtual time fire
in scheduling order (FIFO), enforced by a monotonically increasing
sequence number.  Cancellation is O(1) lazy: cancelled events stay in the
heap and are skipped on pop.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]


class Event:
    """A cancellable callback scheduled at a virtual time.

    Instances are created by :class:`~repro.sim.engine.Simulator`; user
    code only ever holds them to call :meth:`cancel` (e.g. a Nagle timer
    superseded by a NIC-idle activation).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent; a no-op after firing."""
        self.cancelled = True
        # Release references early: a cancelled event may sit in the heap
        # for a long time and its args can pin large object graphs.
        self.fn = _cancelled_fn
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, seq={self.seq}, {state})"


def _cancelled_fn(*_args: Any) -> None:  # pragma: no cover - never called
    raise AssertionError("cancelled event fired")


class EventQueue:
    """Binary-heap event queue with deterministic same-time ordering."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def push(self, time: float, fn: Callable[..., Any], args: tuple = ()) -> Event:
        """Schedule ``fn(*args)`` at ``time`` and return the handle."""
        event = Event(time, self._seq, fn, args)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def note_cancelled(self) -> None:
        """Bookkeeping hook: the owner cancelled one live event."""
        self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
