"""The simulation engine: virtual clock plus event loop.

One :class:`Simulator` instance hosts an entire experiment (fabric,
engines, workloads).  It is single-threaded and fully deterministic:
given the same scenario and seed, two runs produce byte-identical
metrics.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.event import Event, EventQueue
from repro.util.errors import SimulationError
from repro.util.tracing import NullTracer, Tracer

__all__ = ["Simulator"]


class Simulator:
    """Virtual clock, event queue, and run loop.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.util.tracing.Tracer` shared by every
        component of the experiment; defaults to a :class:`NullTracer`.
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        self._events_processed = 0
        self.tracer: Tracer = tracer if tracer is not None else NullTracer()

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events dispatched so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled, not fired) events."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to fire ``delay`` seconds from now.

        ``delay`` must be non-negative; zero-delay events fire after all
        events already scheduled for the current instant (FIFO tie-break).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self._now + delay, fn, args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time ``>= now``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        return self._queue.push(time, fn, args)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if already cancelled)."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the next event. Returns ``False`` if the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:  # pragma: no cover - queue invariant
            raise SimulationError("event queue returned an event from the past")
        self._now = event.time
        self._events_processed += 1
        event.fn(*event.args)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run the event loop.

        Stops when the queue drains, when virtual time would exceed
        ``until`` (the clock is then advanced *to* ``until``), or after
        ``max_events`` dispatches.  Returns the final virtual time.
        Re-entrant calls are rejected.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        if until is not None and until < self._now:
            raise SimulationError(f"cannot run until t={until} < now={self._now}")
        self._running = True
        try:
            dispatched = 0
            while True:
                if max_events is not None and dispatched >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
                dispatched += 1
            else:  # pragma: no cover - unreachable
                pass
            if until is not None and self._now < until and not self._queue:
                self._now = until
            return self._now
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 50_000_000) -> float:
        """Drain the queue completely (bounded by ``max_events``)."""
        self.run(max_events=max_events)
        if self._queue:
            raise SimulationError(
                f"simulation did not go idle within {max_events} events"
            )
        return self._now
