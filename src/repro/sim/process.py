"""Generator-based cooperative processes.

Closed-loop workloads (a ping-pong benchmark, an RPC client that waits
for each response) read much more naturally as sequential code than as
callback chains.  A :class:`Process` drives a generator; the generator
``yield``\\ s either

* a ``float``/``int`` — sleep that many virtual seconds, or
* a :class:`Future` — suspend until it resolves; ``yield`` evaluates to
  the future's value.

Example
-------
::

    def pingpong(api, peer):
        for _ in range(1000):
            done = api.send(peer, size=8)
            yield done            # wait for completion
            yield 1e-6            # think time
    Process(sim, pingpong(api, peer))
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from repro.sim.engine import Simulator
from repro.util.errors import SimulationError

__all__ = ["Future", "Process", "all_of"]


class Future:
    """A one-shot value that callbacks (and processes) can wait on."""

    __slots__ = ("_done", "_value", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def done(self) -> bool:
        """Whether :meth:`resolve` has been called."""
        return self._done

    @property
    def value(self) -> Any:
        """The resolved value; raises if not yet resolved."""
        if not self._done:
            raise SimulationError("Future not resolved yet")
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Resolve exactly once and fire callbacks in registration order."""
        if self._done:
            raise SimulationError("Future already resolved")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(value)

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        """Run ``cb(value)`` on resolution (immediately if already done)."""
        if self._done:
            cb(self._value)
        else:
            self._callbacks.append(cb)


def all_of(futures: Iterable[Future]) -> Future:
    """A future that resolves (with ``None``) once every input resolves."""
    futures = list(futures)
    combined = Future()
    remaining = len(futures)
    if remaining == 0:
        combined.resolve(None)
        return combined

    def _one_done(_value: Any) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining == 0:
            combined.resolve(None)

    for f in futures:
        f.add_callback(_one_done)
    return combined


class Process:
    """Drives a generator as a cooperative simulated process.

    The process starts at the current simulation time (its first segment
    runs via a zero-delay event, preserving deterministic ordering with
    other same-time activity).  ``finished`` resolves with the
    generator's return value; an exception inside the generator
    propagates out of the event loop — failures are loud, not silent.
    """

    def __init__(self, sim: Simulator, generator: Generator, name: str = "process") -> None:
        self._sim = sim
        self._gen = generator
        self.name = name
        self.finished = Future()
        sim.schedule(0.0, self._advance, None)

    def _advance(self, send_value: Any) -> None:
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.finished.resolve(stop.value)
            return
        if isinstance(yielded, Future):
            yielded.add_callback(self._resume_with)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay {yielded}"
                )
            self._sim.schedule(float(yielded), self._advance, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}; "
                "yield a delay (float) or a Future"
            )

    def _resume_with(self, value: Any) -> None:
        # Resume via a zero-delay event rather than synchronously, so a
        # future resolved in the middle of another component's handler
        # does not re-enter that component.
        self._sim.schedule(0.0, self._advance, value)
