"""Decision-kernel hot path: flat-array candidate build and scoring.

This module is the *one* module the optional compiled kernel build
(``REPRO_KERNEL=compiled``, see :mod:`repro.core.kernel`) compiles; it
deliberately contains nothing but data holders and straight-line
functions so mypyc can translate it without semantic surprises.  The
pure-Python text you are reading is the default **and the reference**:
the compiled clone must be byte-identical in behaviour or the
kernel-consistency tests fail.

Design (ROADMAP "10-100x the decision kernel with array-based
batching"):

* :class:`PendingArrays` mirrors a channel queue's pending window as
  parallel flat lists (``remaining``, ``submit_time``, ``flow_id``,
  ``dst``, ``aggregatable``, ``state``, …).  One attribute-chasing walk
  per queue mutation builds the mirror; every candidate evaluation after
  that touches only list slots and local variables.
* :class:`DriverConstants` pre-resolves everything the inner loop used
  to ask the driver per candidate — ``max_aggregate_size``, header
  sizes, the PIO/DMA crossover, ``startup·bandwidth`` per mode, the
  rendezvous threshold, gather limits (Morpheus-style specialization:
  constants folded out of the loop).
* :func:`build_eager_arrays` is the greedy packet builder of
  ``strategies._builder`` re-expressed over the arrays; instead of a
  :class:`~repro.core.plan.TransferPlan` it returns a :class:`SeedBuild`
  carrying *prefix* aggregates (payload sums, oldest submit time), so
  every narrower aggregation width of the same seed is scored without
  being materialized.
* :func:`score_eager_packed` replicates
  :meth:`repro.core.cost.CostModel.score` arithmetic term for term —
  operation order included, so scores (and therefore dispatch order)
  are byte-identical with the scalar model.  The hypothesis drift guard
  in ``tests/core/test_cost_properties.py`` pins all three copies
  (``score``, ``breakdown``, packed) together.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.core.plan import PlanItem, TransferPlan
from repro.madeleine.message import PackMode
from repro.madeleine.submit import EntryKind, EntryState, SubmitEntry
from repro.network.wire import (
    HEADER_BYTES_PER_SEGMENT,
    PACKET_HEADER_BYTES,
    PacketKind,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.drivers.base import Driver

__all__ = [
    "PendingArrays",
    "DriverConstants",
    "SeedBuild",
    "build_eager_arrays",
    "probe_uniform_seeds",
    "oversized_waiting_indices",
    "score_eager_packed",
]

#: ``PendingArrays.state`` codes (only pending states appear in a
#: queue's snapshot, so two codes suffice).
STATE_WAITING = 0
STATE_RDV_READY = 1

_CONTROL_PACKET_KIND = {
    EntryKind.RDV_REQ: PacketKind.RDV_REQ,
    EntryKind.RDV_ACK: PacketKind.RDV_ACK,
}

_INF = float("inf")
_DATA = EntryKind.DATA
_RDV_READY = EntryState.RDV_READY
_SAFER = PackMode.SAFER
_LATER = PackMode.LATER


class PendingArrays:
    """Flat parallel mirror of one queue's pending window.

    Built from a version-stamped snapshot in arrival order; coherent for
    exactly as long as the queue's version does not move (the queue
    caches one instance per version, see
    :meth:`repro.core.waiting.ChannelQueue.pending_arrays`).
    """

    __slots__ = (
        "entries",
        "n",
        "remaining",
        "submit_time",
        "flow_id",
        "dst",
        "aggregatable",
        "state",
        "is_control",
        "deferrable",
        "no_rdv",
        "uniform_dst",
        "max_remaining",
        "flow_rank",
        "n_seed_flows",
    )

    def __init__(self, entries: Sequence[SubmitEntry]) -> None:
        # Column extraction as comprehensions: each field is one C-speed
        # walk instead of one interpreted loop doing nine appends.
        entry_list = list(entries)
        n = len(entry_list)
        self.entries = entry_list
        self.n = n
        self.remaining = remaining = [e.remaining for e in entry_list]
        self.submit_time = [e.submit_time for e in entry_list]
        self.flow_id = [e.flow_id for e in entry_list]
        self.dst = dsts = [e.dst for e in entry_list]
        states = [e._state for e in entry_list]
        self.state = [
            STATE_RDV_READY if s is _RDV_READY else STATE_WAITING for s in states
        ]
        self.is_control = is_control = [e.kind is not _DATA for e in entry_list]
        # ``and`` short-circuits before ``fragment`` on control entries
        # (their fragment is None); member identity instead of ``.value``
        # dodges the enum DynamicClassAttribute descriptor.
        self.aggregatable = aggregatable = [
            not c and s is not _RDV_READY and e.fragment.mode is not _SAFER
            for c, s, e in zip(is_control, states, entry_list)
        ]
        self.deferrable = deferrable = [
            not c and e.fragment.mode is _LATER
            for c, e in zip(is_control, entry_list)
        ]
        self.no_rdv = [
            not c and bool(e.meta.get("no_rdv"))
            for c, e in zip(is_control, entry_list)
        ]
        # Uniform-window screen for the specialized build loop: every
        # entry aggregatable (implies data + WAITING + not SAFER),
        # nothing deferrable, one destination.
        self.uniform_dst = None
        self.flow_rank: "list[int] | None" = None
        self.n_seed_flows = 0
        if n and all(aggregatable) and not any(deferrable):
            d0 = dsts[0]
            if all(d == d0 for d in dsts):
                self.uniform_dst = d0
                # First-occurrence rank of each entry's flow: the greedy
                # build from seed *s* blocks exactly the window's first
                # *s* distinct flows, so ``flow_rank[i] >= s`` is the
                # whole eligibility test (see probe_uniform_seeds).
                rank_of: dict[int, int] = {}
                self.flow_rank = [
                    rank_of.setdefault(f, len(rank_of)) for f in self.flow_id
                ]
                self.n_seed_flows = len(rank_of)
        self.max_remaining = max(remaining) if n else 0


class DriverConstants:
    """Per-driver constants hoisted out of the candidate loop.

    ``pio_limit`` folds :meth:`Driver.choose_mode` into one comparison:
    ``payload <= pio_limit`` selects PIO (``-inf`` pins DMA-only
    drivers, ``+inf`` pins PIO-only ones).  ``rdv_threshold`` folds
    :meth:`Driver.wants_rendezvous` the same way (``None`` when the
    driver has no rendezvous).  ``exact`` records whether the driver and
    its link model use the stock method implementations — when they do
    not (a subclass overrode cost or capability logic), callers must
    fall back to the scalar reference path.
    """

    __slots__ = (
        "max_aggregate_size",
        "max_items_cap",
        "rdv_threshold",
        "supports_gather",
        "max_gather_entries",
        "gather_entry_cost",
        "copy_bandwidth",
        "pio_limit",
        "startup_pio",
        "bandwidth_pio",
        "startup_equiv_pio",
        "startup_dma",
        "bandwidth_dma",
        "startup_equiv_dma",
        "reaches",
        "exact",
    )

    def __init__(
        self,
        max_aggregate_size: int,
        max_items_cap: int,
        rdv_threshold: "float | None",
        supports_gather: bool,
        max_gather_entries: int,
        gather_entry_cost: float,
        copy_bandwidth: float,
        pio_limit: float,
        startup_pio: float,
        bandwidth_pio: float,
        startup_equiv_pio: float,
        startup_dma: float,
        bandwidth_dma: float,
        startup_equiv_dma: float,
        reaches: Any,
        exact: bool,
    ) -> None:
        self.max_aggregate_size = max_aggregate_size
        self.max_items_cap = max_items_cap
        self.rdv_threshold = rdv_threshold
        self.supports_gather = supports_gather
        self.max_gather_entries = max_gather_entries
        self.gather_entry_cost = gather_entry_cost
        self.copy_bandwidth = copy_bandwidth
        self.pio_limit = pio_limit
        self.startup_pio = startup_pio
        self.bandwidth_pio = bandwidth_pio
        self.startup_equiv_pio = startup_equiv_pio
        self.startup_dma = startup_dma
        self.bandwidth_dma = bandwidth_dma
        self.startup_equiv_dma = startup_equiv_dma
        self.reaches = reaches
        self.exact = exact


class SeedBuild:
    """The widest legal greedy build from one seed, with prefix aggregates.

    ``payload_prefix[k-1]`` / ``oldest_prefix[k-1]`` are the payload sum
    and oldest submit time of the first ``k`` items — everything
    :func:`score_eager_packed` needs to score a ``k``-item truncation
    without constructing it.  :meth:`plan` materializes one width on
    demand (only ever called for the winning candidate).
    """

    __slots__ = (
        "driver",
        "channel_id",
        "dst",
        "entries",
        "takes",
        "payload_prefix",
        "oldest_prefix",
    )

    def __init__(
        self,
        driver: "Driver",
        channel_id: int,
        dst: str,
        entries: list[SubmitEntry],
        takes: list[int],
        payload_prefix: list[int],
        oldest_prefix: list[float],
    ) -> None:
        self.driver = driver
        self.channel_id = channel_id
        self.dst = dst
        self.entries = entries
        self.takes = takes
        self.payload_prefix = payload_prefix
        self.oldest_prefix = oldest_prefix

    @property
    def n_items(self) -> int:
        return len(self.entries)

    def plan(self, n_items: int) -> TransferPlan:
        """Materialize the ``n_items``-wide prefix as a dispatchable plan."""
        entries = self.entries
        takes = self.takes
        items = [PlanItem(entries[i], takes[i]) for i in range(n_items)]
        return TransferPlan(
            self.driver, PacketKind.EAGER, self.dst, self.channel_id, items
        )


def build_eager_arrays(
    arrays: PendingArrays,
    consts: DriverConstants,
    engine: Any,
    driver: "Driver",
    channel_id: int,
    max_items: int,
    skip_seeds: int,
    allow_park: bool,
    stripe_chunk: "int | None",
    multirail: bool,
) -> "TransferPlan | SeedBuild | None":
    """Array-walk clone of ``strategies._builder.build_from_queue``.

    Returns a finished :class:`TransferPlan` for packets that travel
    alone (rendezvous bulk, control, SAFER fragments), a
    :class:`SeedBuild` for an aggregatable eager prefix family, or
    ``None`` when nothing is dispatchable.  Semantics — walk order,
    flow blocking, seed skipping, parking, chunking — mirror the object
    walk exactly; the equivalence tests in
    ``tests/core/test_kernel_equivalence.py`` hold the two together.
    """
    n = arrays.n
    if n == 0:
        return None
    entries = arrays.entries
    remaining = arrays.remaining
    submit_time = arrays.submit_time
    flow_id = arrays.flow_id
    reaches = consts.reaches
    budget = consts.max_aggregate_size
    rdv_threshold = consts.rdv_threshold

    # Uniform window (every entry an aggregatable same-destination
    # eager candidate, nothing oversized): the walk collapses to flow
    # blocking plus budget packing — the steady-state shape of a loaded
    # queue, and the loop the candidate search spends its time in.
    dst0 = arrays.uniform_dst
    if dst0 is not None and (
        rdv_threshold is None or arrays.max_remaining <= rdv_threshold
    ):
        if not reaches(dst0):
            return None
        blocked_set: set[int] = set()
        i = 0
        skipped = 0
        while skipped < skip_seeds and i < n:
            if flow_id[i] not in blocked_set:
                blocked_set.add(flow_id[i])
                skipped += 1
            i += 1
        idx2: list[int] = []
        takes2: list[int] = []
        payload2: list[int] = []
        oldest2: list[float] = []
        taken2 = 0
        count = 0
        oldest_t = _INF
        while i < n:
            fid = flow_id[i]
            if fid in blocked_set:
                i += 1
                continue
            r = remaining[i]
            space = budget - taken2
            if r <= space:
                take = r
            elif not count:
                # Chunk an over-budget entry (drivers without rendezvous).
                take = r if r < budget else budget
            else:
                blocked_set.add(fid)
                i += 1
                continue
            idx2.append(i)
            takes2.append(take)
            taken2 += take
            st = submit_time[i]
            if st < oldest_t:
                oldest_t = st
            payload2.append(taken2)
            oldest2.append(oldest_t)
            count += 1
            if count >= max_items or taken2 >= budget:
                break
            i += 1
        if not count:
            return None
        return SeedBuild(
            driver,
            channel_id,
            dst0,
            [entries[j] for j in idx2],
            takes2,
            payload2,
            oldest2,
        )

    dsts = arrays.dst
    aggregatable = arrays.aggregatable
    state = arrays.state
    is_control = arrays.is_control
    deferrable = arrays.deferrable
    no_rdv = arrays.no_rdv

    reach_ok: dict[str, bool] = {}
    blocked: set[int] = set()
    idx: list[int] = []
    takes: list[int] = []
    payload_prefix: list[int] = []
    oldest_prefix: list[float] = []
    taken = 0
    oldest = _INF
    dst: "str | None" = None
    seeds_skipped = 0

    for i in range(n):
        fid = flow_id[i]
        if fid >= 0 and fid in blocked:
            continue
        d = dsts[i]
        ok = reach_ok.get(d)
        if ok is None:
            ok = reaches(d)
            reach_ok[d] = ok
        if not ok:
            if fid >= 0 and not deferrable[i]:
                blocked.add(fid)
            continue
        if not idx and seeds_skipped < skip_seeds:
            seeds_skipped += 1
            if fid >= 0 and not deferrable[i]:
                blocked.add(fid)
            continue

        # Rendezvous bulk: always alone, exempt from FIFO blocking.
        if state[i] == STATE_RDV_READY:
            if idx:
                continue
            take = remaining[i]
            if stripe_chunk is not None and multirail and take > stripe_chunk:
                take = stripe_chunk
            return TransferPlan(
                driver,
                PacketKind.RDV_DATA,
                d,
                channel_id,
                [PlanItem(entries[i], take)],
            )

        # Engine-generated control traffic: always alone, no flow.
        if is_control[i]:
            if idx:
                continue
            entry = entries[i]
            return TransferPlan(
                driver,
                _CONTROL_PACKET_KIND[entry.kind],
                d,
                channel_id,
                [PlanItem(entry, remaining[i])],
                meta=dict(entry.meta),
            )

        # Oversized data negotiates a rendezvous first (unless no_rdv).
        if rdv_threshold is not None and remaining[i] > rdv_threshold and not no_rdv[i]:
            if allow_park:
                engine.park_for_rendezvous(entries[i], channel_id)
            elif fid >= 0 and not deferrable[i]:
                blocked.add(fid)
            continue

        # SAFER fragments travel alone.
        if not aggregatable[i]:
            if idx:
                if fid >= 0 and not deferrable[i]:
                    blocked.add(fid)
                continue
            return TransferPlan(
                driver,
                PacketKind.EAGER,
                d,
                channel_id,
                [PlanItem(entries[i], remaining[i])],
            )

        if dst is None:
            dst = d
        elif d != dst:
            if fid >= 0 and not deferrable[i]:
                blocked.add(fid)
            continue

        space = budget - taken
        r = remaining[i]
        if r <= space:
            take = r
        elif not idx:
            # Chunk an over-budget entry (drivers without rendezvous).
            take = r if r < budget else budget
        else:
            if fid >= 0 and not deferrable[i]:
                blocked.add(fid)
            continue
        idx.append(i)
        takes.append(take)
        taken += take
        st = submit_time[i]
        if st < oldest:
            oldest = st
        payload_prefix.append(taken)
        oldest_prefix.append(oldest)
        if len(idx) >= max_items or taken >= budget:
            break

    if idx:
        assert dst is not None
        return SeedBuild(
            driver,
            channel_id,
            dst,
            [entries[i] for i in idx],
            takes,
            payload_prefix,
            oldest_prefix,
        )
    return None


def probe_uniform_seeds(
    arrays: PendingArrays,
    consts: DriverConstants,
    max_items: int,
    widths: "tuple[int, ...]",
    max_seeds: int,
) -> "list[tuple[int, int, float, list[tuple[int, int, float]]]] | None":
    """Score-ready aggregates for every viable seed of a uniform window.

    The bounded search's steady-state inner loop.  For a uniform window
    (every entry an aggregatable same-destination eager candidate, see
    :class:`PendingArrays`), the greedy build from seed *s* takes, in
    arrival order, exactly the entries whose flow is **not** among the
    window's first *s* distinct flows — i.e. ``flow_rank[i] >= s`` —
    subject only to the budget/width packing rules.  One tight pass per
    seed therefore yields everything :func:`score_eager_packed` needs,
    without per-seed builder calls, index lists, or :class:`SeedBuild`
    objects; the winning seed alone is re-built for materialization.

    Builds exist for seeds ``0 .. n_seed_flows - 1`` and for no deeper
    seed; the caller replicates the reference walk's exhausted-queue
    probe accounting itself.

    Returns ``None`` when the window is not uniform-eligible (caller
    falls back to :func:`build_eager_arrays` per seed); ``[]`` when the
    destination is unreachable (no seed can build); otherwise a list
    over seeds of ``(base_items, payload, oldest_submit, snaps)`` where
    ``snaps`` holds the same triple at each narrower width cut of
    ``widths``.  At most ``max_seeds`` entries are computed — each seed
    costs the search at least one evaluation, so deeper stats could
    never be consumed.
    """
    dst0 = arrays.uniform_dst
    if dst0 is None:
        return None
    rdv_threshold = consts.rdv_threshold
    if rdv_threshold is not None and arrays.max_remaining > rdv_threshold:
        return None
    if not consts.reaches(dst0):
        return []
    n = arrays.n
    flow_rank = arrays.flow_rank
    flow_id = arrays.flow_id
    remaining = arrays.remaining
    submit_time = arrays.submit_time
    budget = consts.max_aggregate_size
    # Width cuts below the full build are snapshotted mid-walk.
    targets = sorted(w for w in set(widths) if w < max_items)
    n_targets = len(targets)
    n_seeds = arrays.n_seed_flows
    if max_seeds < n_seeds:
        n_seeds = max_seeds
    out: list[tuple[int, int, float, list[tuple[int, int, float]]]] = []
    for s in range(n_seeds):
        taken = 0
        count = 0
        oldest = _INF
        snaps: list[tuple[int, int, float]] = []
        ti = 0
        blocked: "set[int] | None" = None  # flows blocked on budget overflow
        for i in range(n):
            if flow_rank[i] < s:
                continue  # a skipped seed's flow
            if blocked is not None and flow_id[i] in blocked:
                continue
            r = remaining[i]
            space = budget - taken
            if r <= space:
                take = r
            elif not count:
                # Chunk an over-budget entry (drivers without rendezvous).
                take = r if r < budget else budget
            else:
                if blocked is None:
                    blocked = set()
                blocked.add(flow_id[i])
                continue
            taken += take
            st = submit_time[i]
            if st < oldest:
                oldest = st
            count += 1
            if ti < n_targets and count == targets[ti]:
                snaps.append((count, taken, oldest))
                ti += 1
            if count >= max_items or taken >= budget:
                break
        out.append((count, taken, oldest, snaps))
    return out


def oversized_waiting_indices(
    arrays: PendingArrays, consts: DriverConstants
) -> list[int]:
    """Indices of plain WAITING data entries that must park for rendezvous.

    The array clone of the ``park_oversized`` sweep's predicate; the
    caller performs the actual (side-effectful) parking so this function
    stays pure and compilable.
    """
    rdv_threshold = consts.rdv_threshold
    if rdv_threshold is None:
        return []
    if arrays.max_remaining <= rdv_threshold:
        # One compare screens out the common case (nothing in the
        # window is anywhere near the rendezvous threshold).
        return []
    out: list[int] = []
    reaches = consts.reaches
    reach_ok: dict[str, bool] = {}
    remaining = arrays.remaining
    state = arrays.state
    is_control = arrays.is_control
    no_rdv = arrays.no_rdv
    dsts = arrays.dst
    for i in range(arrays.n):
        if (
            not is_control[i]
            and state[i] == STATE_WAITING
            and not no_rdv[i]
            and remaining[i] > rdv_threshold
        ):
            d = dsts[i]
            ok = reach_ok.get(d)
            if ok is None:
                ok = reaches(d)
                reach_ok[d] = ok
            if ok:
                out.append(i)
    return out


def score_eager_packed(
    consts: DriverConstants,
    n_items: int,
    payload_bytes: int,
    oldest_submit: float,
    now: float,
    starvation_horizon: float,
) -> float:
    """:meth:`CostModel.score` for an EAGER prefix, without the plan.

    Replicates the scalar arithmetic *operation for operation* (same
    order, same intermediate expressions) so the result is bit-identical
    with ``CostModel.score`` on the materialized plan — dispatch order
    depends on exact float comparisons.  Covers only EAGER data plans;
    control and rendezvous plans are scored through the scalar model by
    the caller.
    """
    size = PACKET_HEADER_BYTES + n_items * HEADER_BYTES_PER_SEGMENT + payload_bytes
    # Driver.choose_aggregation, folded.
    if n_items == 1:
        copied_bytes = 0
        gather_entries = 1
    else:
        copy_cost = payload_bytes / consts.copy_bandwidth
        if (
            consts.supports_gather
            and n_items <= consts.max_gather_entries
            and (n_items - 1) * consts.gather_entry_cost < copy_cost
        ):
            copied_bytes = 0
            gather_entries = n_items
        else:
            copied_bytes = payload_bytes
            gather_entries = 1
    # Driver.choose_mode, folded.
    if payload_bytes <= consts.pio_limit:
        startup = consts.startup_pio
        bandwidth = consts.bandwidth_pio
        startup_equivalent = consts.startup_equiv_pio
    else:
        startup = consts.startup_dma
        bandwidth = consts.bandwidth_dma
        startup_equivalent = consts.startup_equiv_dma
    # LinkModel.sender_occupancy, same term order.
    serialization = size / bandwidth
    copy_time = copied_bytes / consts.copy_bandwidth
    gather_time = (gather_entries - 1) * consts.gather_entry_cost
    occupancy = startup + serialization + copy_time + gather_time
    # CostModel.score, same term order.
    saved = n_items * startup_equivalent
    density = (float(payload_bytes) + saved) / occupancy
    oldest_wait = now - oldest_submit
    if oldest_wait < 0.0:
        oldest_wait = 0.0
    ratio = oldest_wait / starvation_horizon
    if ratio > 1.0:
        ratio = 1.0
    boost = 1.0 + ratio
    return density * boost
