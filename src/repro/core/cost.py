"""Plan cost/score model.

"Estimating the value of a given packet reordering operation" (paper §3)
needs a number.  The model here is capability-parameterized through the
plan's driver: the same strategy code scores differently on MX and Elan
because their α/β/copy/gather structures differ.

``occupancy`` — predicted NIC busy time of the plan (what the request
*costs*).

``score`` — value density with two corrections:

* every included entry is credited one request start-up's worth of
  bytes (α·β): aggregating it into this packet saves the α a dedicated
  packet would have paid — without this, density scoring is myopic and
  prefers narrow plans;
* staleness multiplies the score by a *bounded* boost (≤ 2×): starving
  entries eventually win ties, but staleness can never make a tiny
  packet out-score a far more efficient aggregate (an unbounded aging
  credit divided by a tiny occupancy does exactly that).

Control plans get a strong fixed urgency — delaying a rendezvous ACK
stalls a bulk transfer end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.kernel import score_eager_packed as _score_eager_packed
from repro.core.plan import TransferPlan
from repro.network.wire import (
    HEADER_BYTES_PER_SEGMENT,
    PACKET_HEADER_BYTES,
)

__all__ = ["CostModel"]


@dataclass(frozen=True, slots=True)
class CostModel:
    """Scores transfer plans for strategy ranking.

    Parameters
    ----------
    starvation_horizon:
        Waiting time (s) at which the staleness boost saturates at 2×.
    control_bonus_bytes:
        Virtual payload credited to control plans so REQ/ACK traffic is
        never starved by byte-count scoring.
    """

    starvation_horizon: float = 1e-3
    control_bonus_bytes: float = 4096.0

    def wire_bytes(self, plan: TransferPlan) -> int:
        """Predicted on-wire size of the plan's packet (with framing)."""
        return (
            PACKET_HEADER_BYTES
            + plan.segment_count * HEADER_BYTES_PER_SEGMENT
            + plan.payload_bytes
        )

    def _assembly(self, plan: TransferPlan):
        """``(wire_bytes, mode, aggregation)`` — the per-plan driver
        queries, computed exactly once per scoring pass."""
        driver = plan.driver
        size = self.wire_bytes(plan)
        if plan.kind.is_control:
            aggregation = driver.choose_aggregation([size])
        else:
            aggregation = driver.choose_aggregation(
                [item.take for item in plan.items]
            )
        mode = driver.choose_mode(plan.payload_bytes)
        return size, mode, aggregation

    def occupancy(self, plan: TransferPlan) -> float:
        """Predicted sender-side NIC busy time of the plan."""
        size, mode, aggregation = self._assembly(plan)
        return plan.driver.occupancy(size, mode, aggregation)

    def score(self, plan: TransferPlan, now: float) -> float:
        """Value density of the plan (higher is better); see module docs."""
        driver = plan.driver
        size, mode, aggregation = self._assembly(plan)
        occupancy = driver.occupancy(size, mode, aggregation)
        payload = float(plan.payload_bytes)
        if plan.kind.is_control:
            payload += self.control_bonus_bytes
        link = driver.nic.link
        startup_equivalent = link.startup(mode) * link.bandwidth(mode)
        saved = len(plan.items) * startup_equivalent
        density = (payload + saved) / occupancy
        oldest_wait = max(
            (now - item.entry.submit_time for item in plan.items), default=0.0
        )
        boost = 1.0 + min(max(oldest_wait, 0.0) / self.starvation_horizon, 1.0)
        return density * boost

    def score_packed(
        self,
        consts,
        n_items: int,
        payload_bytes: int,
        oldest_submit: float,
        now: float,
    ) -> float:
        """:meth:`score` for an EAGER data plan, from packed aggregates.

        ``consts`` is the driver's folded
        :class:`~repro.core.kernel.DriverConstants`; the remaining
        arguments are the prefix aggregates a
        :class:`~repro.core.kernel.SeedBuild` maintains.  Bit-identical
        with :meth:`score` on the materialized plan (the kernel
        hypothesis tests pin this), so the batched search ranks
        candidates exactly as the scalar model would — without building
        them.
        """
        return _score_eager_packed(
            consts, n_items, payload_bytes, oldest_submit, now,
            self.starvation_horizon,
        )

    def breakdown(self, plan: TransferPlan, now: float) -> dict[str, float]:
        """The :meth:`score` computation, term by term.

        Explainability only (the ``optimizer.decide`` trace record) —
        never called on the NullTracer fast path, so it repeats the
        arithmetic instead of complicating :meth:`score`.
        """
        driver = plan.driver
        size, mode, aggregation = self._assembly(plan)
        occupancy = driver.occupancy(size, mode, aggregation)
        payload = float(plan.payload_bytes)
        control_bonus = self.control_bonus_bytes if plan.kind.is_control else 0.0
        link = driver.nic.link
        saved = len(plan.items) * link.startup(mode) * link.bandwidth(mode)
        density = (payload + control_bonus + saved) / occupancy
        oldest_wait = max(
            (now - item.entry.submit_time for item in plan.items), default=0.0
        )
        boost = 1.0 + min(max(oldest_wait, 0.0) / self.starvation_horizon, 1.0)
        return {
            "wire_bytes": float(size),
            "payload_bytes": payload,
            "control_bonus_bytes": control_bonus,
            "startup_saved_bytes": saved,
            "occupancy_s": occupancy,
            "density": density,
            "oldest_wait_s": oldest_wait,
            "staleness_boost": boost,
            "score": density * boost,
        }
