"""Waiting packet lists — the collect layer's output (Figure 1).

Each channel (multiplexing unit) owns one :class:`ChannelQueue` holding
submit entries in arrival order.  While a NIC is busy the queues simply
grow — that accumulation *is* the lookahead pool the paper builds its
optimization opportunities from (§3: "While the NIC is busy sending a
packet, the scheduler simply accumulates a backlog of packets").

Queues never reorder anything themselves; strategies read an ordered
snapshot and pick.  Entries leave a queue when fully dispatched, or are
*parked* out of it while a rendezvous handshake is in flight.

Complexity
----------
The optimizer runs once per NIC-idle transition and must stay
O(lookahead window) per decision regardless of backlog depth, so every
aggregate this module exposes is *incrementally maintained* rather than
recomputed:

* ``len(queue)``, ``queue.pending_bytes``, ``WaitingLists.total_pending``
  and ``total_pending_bytes`` are O(1) counters, updated by the entries
  themselves: :class:`~repro.madeleine.submit.SubmitEntry` notifies its
  owning queue on every state transition and byte consumption;
* :meth:`ChannelQueue.remove` is O(1): entries live in a lazily
  compacted slot list (``entry_id`` → slot index), removal blanks the
  slot, and compaction runs only when dead slots outnumber live ones;
* ``oldest_submit_time`` and windowed :meth:`ChannelQueue.pending`
  snapshots are memoized against the queue's **version stamp**, which
  every mutation bumps — a scheduling decision that evaluates dozens of
  candidate plans over an unchanged queue pays for one walk, not one
  per candidate.

The brute-force definitions these counters must agree with are kept in
:meth:`ChannelQueue.recount` (exercised by the hypothesis property
tests).
"""

from __future__ import annotations

from typing import Iterator

from repro.madeleine.submit import (
    PENDING_ENTRY_STATES,
    EntryState,
    SubmitEntry,
)
from repro.util.errors import InternalError

__all__ = ["ChannelQueue", "WaitingLists"]

_PENDING_STATES = PENDING_ENTRY_STATES
_WAITING = EntryState.WAITING
_RDV_READY = EntryState.RDV_READY
_SENT = EntryState.SENT

#: Dead-slot count below which compaction is never attempted (tiny
#: queues are cheaper to leave fragmented than to rebuild).
_COMPACT_MIN_GARBAGE = 64


class ChannelQueue:
    """Arrival-ordered pending entries of one channel.

    ``lists`` is the owning :class:`WaitingLists`, whose cross-channel
    totals this queue keeps in sync (``None`` for standalone queues in
    tests and micro-benchmarks).
    """

    __slots__ = (
        "channel_id",
        "_slots",
        "_head",
        "_index",
        "_garbage",
        "_pending_count",
        "_pending_bytes",
        "_version",
        "_lists",
        "_snap_version",
        "_snap_window",
        "_snap",
        "_oldest_version",
        "_oldest",
        "_arrays_version",
        "_arrays_window",
        "_arrays",
    )

    def __init__(self, channel_id: int, *, lists: "WaitingLists | None" = None) -> None:
        self.channel_id = channel_id
        #: Arrival-ordered slots; ``None`` marks a lazily removed entry.
        self._slots: list[SubmitEntry | None] = []
        self._head = 0  # slots before this index are all dead
        self._index: dict[int, int] = {}  # entry_id -> slot position
        self._garbage = 0  # dead slots at or after _head
        self._pending_count = 0
        self._pending_bytes = 0
        self._version = 0
        self._lists = lists
        self._snap_version = -1
        self._snap_window: int | None = None
        self._snap: tuple[SubmitEntry, ...] = ()
        self._oldest_version = -1
        self._oldest: float | None = None
        self._arrays_version = -1
        self._arrays_window: int | None = None
        self._arrays = None  # kernel.PendingArrays mirror of the snapshot

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append(self, entry: SubmitEntry) -> None:
        """Add an entry at the tail (arrival order)."""
        if entry._owner is not None:
            raise InternalError(
                f"entry #{entry.entry_id} already belongs to channel "
                f"{entry._owner.channel_id}, cannot append to {self.channel_id}"
            )
        entry._owner = self
        self._index[entry.entry_id] = len(self._slots)
        self._slots.append(entry)
        if entry._state in _PENDING_STATES:
            self._account(1, entry.remaining)
        self._version += 1

    def remove(self, entry: SubmitEntry) -> None:
        """Remove a specific entry (dispatch or rendezvous parking)."""
        position = self._index.pop(entry.entry_id, None)
        if position is None or self._slots[position] is not entry:
            raise InternalError(
                f"entry #{entry.entry_id} not in channel {self.channel_id}"
            )
        self._slots[position] = None
        self._garbage += 1
        entry._owner = None
        if entry._state in _PENDING_STATES:
            self._account(-1, -entry.remaining)
        self._version += 1
        self._maybe_compact()

    # ------------------------------------------------------------------
    # entry notifications (called by SubmitEntry on owned entries)
    # ------------------------------------------------------------------
    def _note_state_change(
        self, entry: SubmitEntry, old: EntryState, new: EntryState
    ) -> None:
        was_pending = old in _PENDING_STATES
        now_pending = new in _PENDING_STATES
        if was_pending and not now_pending:
            self._account(-1, -entry.remaining)
        elif now_pending and not was_pending:
            self._account(1, entry.remaining)
        self._version += 1

    def _note_bytes_consumed(self, n_bytes: int) -> None:
        self._account(0, -n_bytes)
        self._version += 1

    def _account(self, count_delta: int, bytes_delta: int) -> None:
        self._pending_count += count_delta
        self._pending_bytes += bytes_delta
        lists = self._lists
        if lists is not None:
            lists._total_pending += count_delta
            lists._total_pending_bytes += bytes_delta

    # ------------------------------------------------------------------
    # lazy cleanup
    # ------------------------------------------------------------------
    def _prune(self) -> None:
        # Advance past dead slots and entries fully consumed elsewhere
        # (striping finished their last bytes).  Entries parked by a
        # direct state flip stay in place — skipped by walks, invisible
        # to the counters — so a later flip back to a pending state
        # restores them without losing arrival order.
        slots = self._slots
        head = self._head
        n = len(slots)
        while head < n:
            entry = slots[head]
            if entry is None:
                self._garbage -= 1
            elif entry._state is EntryState.SENT:
                del self._index[entry.entry_id]
                entry._owner = None
                slots[head] = None
            else:
                break
            head += 1
        self._head = head
        # A workload whose entries only ever exit by state transition
        # (no remove() calls) retires everything right here, so the
        # compaction check must run here too or _slots grows without
        # bound — remove() alone triggering it is not enough.
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        dead = self._head + self._garbage
        if dead < _COMPACT_MIN_GARBAGE or dead * 2 < len(self._slots):
            return
        self._slots = [e for e in self._slots[self._head :] if e is not None]
        self._head = 0
        self._garbage = 0
        self._index = {e.entry_id: i for i, e in enumerate(self._slots)}

    # ------------------------------------------------------------------
    # reads (all memoized against the version stamp)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic stamp bumped by every mutation (cache key)."""
        return self._version

    def invalidate_caches(self) -> None:
        """Force the next read to re-walk (benchmarks use this to defeat
        cross-decision memoization; never needed in normal operation)."""
        self._version += 1

    def pending(self, window: int | None = None) -> list[SubmitEntry]:
        """The first ``window`` pending entries in arrival order.

        ``window`` is the paper's *lookahead window*: how many waiting
        packets the optimizer may examine per decision.  ``None`` means
        unbounded.  Returns a fresh list; the underlying snapshot is
        cached until the queue changes.
        """
        return list(self._snapshot(window))

    def pending_view(self, window: int | None = None) -> tuple[SubmitEntry, ...]:
        """Like :meth:`pending` but returns the cached immutable
        snapshot without a defensive copy — for hot-path readers (the
        packet builders) that only iterate it."""
        return self._snapshot(window)

    def _snapshot(self, window: int | None) -> tuple[SubmitEntry, ...]:
        if self._snap_version == self._version:
            snap, cached_window = self._snap, self._snap_window
            if cached_window is None or len(snap) < cached_window:
                # Complete snapshot of everything pending: serves any window.
                return snap if window is None else snap[:window]
            if window is not None and window <= cached_window:
                return snap[:window]
        self._prune()
        result: list[SubmitEntry] = []
        slots = self._slots
        for position in range(self._head, len(slots)):
            entry = slots[position]
            if entry is None:
                continue
            # ``_state`` read directly: the property indirection is
            # measurable at snapshot-walk frequency — as is frozenset
            # membership (enum hashing), hence the identity compares.
            state = entry._state
            if state is not _WAITING and state is not _RDV_READY:
                if state is _SENT:
                    # Retired mid-queue (striping finished its bytes on
                    # another rail): blank it now so the dead slot counts
                    # toward compaction instead of lingering until the
                    # head happens to pass it.
                    del self._index[entry.entry_id]
                    entry._owner = None
                    slots[position] = None
                    self._garbage += 1
                continue
            result.append(entry)
            if window is not None and len(result) >= window:
                break
        self._snap = tuple(result)
        self._snap_window = window
        self._snap_version = self._version
        return self._snap

    def pending_arrays(self, window: int | None = None):
        """Flat-array mirror of :meth:`pending_view` (same window).

        Returns the active kernel backend's ``PendingArrays``: the
        window's entries decomposed into parallel ``remaining`` /
        ``submit_time`` / ``flow_id`` / ``dst`` / ``aggregatable`` /
        ``state`` lists, so the decision kernel's candidate loop reads
        list slots instead of chasing :class:`SubmitEntry` attributes.

        Coherence rides the same version stamp as every other cached
        read: any observable entry mutation notifies the queue (state
        transitions, byte consumption) or passes through it (append /
        remove), bumping ``_version`` and invalidating the mirror.  The
        one meta flag the kernel consumes (``no_rdv``) is only ever set
        while its entry is parked *outside* any queue, so re-enqueueing
        it bumps the version too.
        """
        if self._arrays_version == self._version and self._arrays_window == window:
            return self._arrays
        from repro.core.kernel import PendingArrays

        arrays = PendingArrays(self._snapshot(window))
        self._arrays = arrays
        self._arrays_window = window
        self._arrays_version = self._version
        return arrays

    @property
    def oldest_submit_time(self) -> float | None:
        """Submit time of the oldest pending entry (None when empty)."""
        if self._oldest_version != self._version:
            self._prune()
            oldest = None
            slots = self._slots
            for position in range(self._head, len(slots)):
                entry = slots[position]
                if entry is not None and entry._state in _PENDING_STATES:
                    oldest = entry.submit_time
                    break
            self._oldest = oldest
            self._oldest_version = self._version
        return self._oldest

    @property
    def pending_bytes(self) -> int:
        """Total remaining bytes over all pending entries (O(1))."""
        return self._pending_bytes

    def __len__(self) -> int:
        return self._pending_count

    def __bool__(self) -> bool:
        return self._pending_count > 0

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def recount(self) -> tuple[int, int, float | None]:
        """Brute-force ``(count, bytes, oldest)`` over the live entries.

        The ground truth the incremental counters must equal; used by
        the property tests, never by the hot path.
        """
        count = 0
        total = 0
        oldest: float | None = None
        for entry in self._slots[self._head :]:
            if entry is None or entry._state not in _PENDING_STATES:
                continue
            count += 1
            total += entry.remaining
            if oldest is None:
                oldest = entry.submit_time
        return count, total, oldest


class WaitingLists:
    """All channel queues of one engine.

    Cross-channel totals are maintained by the queues themselves (see
    :meth:`ChannelQueue._account`), so backlog probes — the engine's
    activation trace, the auto strategy's regime switch, the runtime
    sampler — are O(1) instead of O(backlog).
    """

    __slots__ = ("_queues", "_total_pending", "_total_pending_bytes", "_order")

    def __init__(self) -> None:
        self._queues: dict[int, ChannelQueue] = {}
        self._total_pending = 0
        self._total_pending_bytes = 0
        self._order: list[ChannelQueue] | None = None  # channel-id order

    def queue(self, channel_id: int) -> ChannelQueue:
        """The queue for a channel, created on first use."""
        q = self._queues.get(channel_id)
        if q is None:
            q = ChannelQueue(channel_id, lists=self)
            self._queues[channel_id] = q
            self._order = None
        return q

    def enqueue(self, entry: SubmitEntry, channel_id: int) -> None:
        """Append an entry to its channel's queue."""
        self.queue(channel_id).append(entry)

    def queues(self) -> list[ChannelQueue]:
        """Every queue ever created (empty ones included), in channel-id
        order — the observability sampler's per-channel walk."""
        return [self._queues[channel_id] for channel_id in sorted(self._queues)]

    def non_empty(self) -> Iterator[ChannelQueue]:
        """Queues with at least one pending entry, in channel-id order."""
        order = self._order
        if order is None:
            order = self._order = [
                self._queues[channel_id] for channel_id in sorted(self._queues)
            ]
        for q in order:
            if q._pending_count:
                yield q

    @property
    def total_pending(self) -> int:
        """Pending entries across all channels (O(1))."""
        return self._total_pending

    @property
    def total_pending_bytes(self) -> int:
        """Pending bytes across all channels (O(1))."""
        return self._total_pending_bytes

    @property
    def oldest_submit_time(self) -> float | None:
        """Oldest pending submit time across all channels."""
        times = [
            t
            for q in self._queues.values()
            if q._pending_count and (t := q.oldest_submit_time) is not None
        ]
        return min(times) if times else None

    def __bool__(self) -> bool:
        return self._total_pending > 0
