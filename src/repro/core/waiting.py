"""Waiting packet lists — the collect layer's output (Figure 1).

Each channel (multiplexing unit) owns one :class:`ChannelQueue` holding
submit entries in arrival order.  While a NIC is busy the queues simply
grow — that accumulation *is* the lookahead pool the paper builds its
optimization opportunities from (§3: "While the NIC is busy sending a
packet, the scheduler simply accumulates a backlog of packets").

Queues never reorder anything themselves; strategies read an ordered
snapshot and pick.  Entries leave a queue when fully dispatched, or are
*parked* out of it while a rendezvous handshake is in flight.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.madeleine.submit import EntryState, SubmitEntry
from repro.util.errors import ConfigurationError

__all__ = ["ChannelQueue", "WaitingLists"]

_PENDING_STATES = (EntryState.WAITING, EntryState.RDV_READY)


class ChannelQueue:
    """Arrival-ordered pending entries of one channel."""

    def __init__(self, channel_id: int) -> None:
        self.channel_id = channel_id
        self._entries: deque[SubmitEntry] = deque()

    def append(self, entry: SubmitEntry) -> None:
        """Add an entry at the tail (arrival order)."""
        self._entries.append(entry)

    def remove(self, entry: SubmitEntry) -> None:
        """Remove a specific entry (dispatch or rendezvous parking)."""
        try:
            self._entries.remove(entry)
        except ValueError:
            raise ConfigurationError(
                f"entry #{entry.entry_id} not in channel {self.channel_id}"
            ) from None

    def _prune(self) -> None:
        # Entries fully consumed elsewhere (striping finished their last
        # bytes) or parked are dropped lazily from the head.
        while self._entries and self._entries[0].state not in _PENDING_STATES:
            self._entries.popleft()

    def pending(self, window: int | None = None) -> list[SubmitEntry]:
        """The first ``window`` pending entries in arrival order.

        ``window`` is the paper's *lookahead window*: how many waiting
        packets the optimizer may examine per decision.  ``None`` means
        unbounded.
        """
        self._prune()
        result = []
        for entry in self._entries:
            if entry.state not in _PENDING_STATES:
                continue
            result.append(entry)
            if window is not None and len(result) >= window:
                break
        return result

    @property
    def oldest_submit_time(self) -> float | None:
        """Submit time of the oldest pending entry (None when empty)."""
        self._prune()
        for entry in self._entries:
            if entry.state in _PENDING_STATES:
                return entry.submit_time
        return None

    @property
    def pending_bytes(self) -> int:
        """Total remaining bytes over all pending entries."""
        return sum(e.remaining for e in self.pending())

    def __len__(self) -> int:
        return len(self.pending())

    def __bool__(self) -> bool:
        self._prune()
        return any(e.state in _PENDING_STATES for e in self._entries)


class WaitingLists:
    """All channel queues of one engine."""

    def __init__(self) -> None:
        self._queues: dict[int, ChannelQueue] = {}

    def queue(self, channel_id: int) -> ChannelQueue:
        """The queue for a channel, created on first use."""
        if channel_id not in self._queues:
            self._queues[channel_id] = ChannelQueue(channel_id)
        return self._queues[channel_id]

    def enqueue(self, entry: SubmitEntry, channel_id: int) -> None:
        """Append an entry to its channel's queue."""
        self.queue(channel_id).append(entry)

    def non_empty(self) -> Iterator[ChannelQueue]:
        """Queues with at least one pending entry, in channel-id order."""
        for channel_id in sorted(self._queues):
            q = self._queues[channel_id]
            if q:
                yield q

    @property
    def total_pending(self) -> int:
        """Pending entries across all channels."""
        return sum(len(q) for q in self._queues.values())

    @property
    def total_pending_bytes(self) -> int:
        """Pending bytes across all channels."""
        return sum(q.pending_bytes for q in self._queues.values())

    @property
    def oldest_submit_time(self) -> float | None:
        """Oldest pending submit time across all channels."""
        times = [
            t
            for q in self._queues.values()
            if (t := q.oldest_submit_time) is not None
        ]
        return min(times) if times else None

    def __bool__(self) -> bool:
        return any(q for q in self._queues.values())
