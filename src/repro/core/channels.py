"""Channel assignment policies (paper §2).

The scheduler has "global control on the network multiplexing resources"
and may assign them "to different classes of traffic", rebalance, or
fall back to one-to-one flow mapping.  A :class:`ChannelPolicy` decides

* which channel each submit entry queues on (``channel_for_entry``), and
* the order in which an idle driver visits non-empty channel queues
  (``service_order``) — this is where class priorities live.

Policies may be swapped or re-parameterized at run time; entries already
queued keep their channel, new entries follow the new mapping — the
paper's "dynamically change the assignment of networking resources to
traffic classes".
"""

from __future__ import annotations

import abc
from typing import ClassVar, Sequence

from repro.core.waiting import ChannelQueue
from repro.madeleine.submit import SubmitEntry
from repro.network.virtual import ChannelPool, TrafficClass
from repro.util.errors import ConfigurationError

__all__ = ["ChannelPolicy", "PooledChannels", "WeightedChannels", "OneToOneChannels"]


class ChannelPolicy(abc.ABC):
    """Maps entries to channels and orders channel service."""

    name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def setup(self, pool: ChannelPool, max_channels: int) -> None:
        """Create this policy's channels in the node's pool."""

    @abc.abstractmethod
    def channel_for_entry(self, entry: SubmitEntry) -> int:
        """The channel id an entry should queue on."""

    def service_order(self, queues: Sequence[ChannelQueue]) -> list[ChannelQueue]:
        """Order in which an idle driver visits non-empty queues.

        Default: channel-id order (no priorities).
        """
        return sorted(queues, key=lambda q: q.channel_id)

    def note_dispatch(
        self, channel_id: int, items: Sequence[tuple[TrafficClass, int]]
    ) -> None:
        """Feedback hook: the engine dispatched one packet.

        ``items`` lists ``(traffic_class, bytes)`` per included entry.
        Policies that account service (weighted fairness) or adapt the
        assignment at run time (paper §2) override this; the default is
        a no-op.
        """

    def bind(self, engine) -> None:
        """Give the policy a back-reference to its engine.

        Called once by the engine after ``setup``.  Policies that
        rewrite the assignment at run time use it to migrate pending
        entries (``engine.reassign_class``); the default keeps nothing.
        """

    def note_rail_event(self, engine, nic, up: bool) -> None:
        """Feedback hook: a rail went down (``up=False``) or came back.

        Policies that dedicate channels to rails or classes override
        this to rebalance the assignment (multirail failover, paper §2's
        dynamic resource re-assignment); the default is a no-op — with
        pooled service the surviving NICs drain every queue anyway.
        """


class PooledChannels(ChannelPolicy):
    """Class-based pooling: one channel per traffic class, priority service.

    With ``by_class=False`` every entry shares a single channel — pure
    multiplexing with no class separation (useful as an ablation).
    Service order follows ``priority`` (default: control first, bulk
    last, so small signalling traffic never waits behind bulk backlog).
    """

    name = "pooled"

    #: Default service priority, most urgent first.
    DEFAULT_PRIORITY = (
        TrafficClass.CONTROL,
        TrafficClass.PUTGET,
        TrafficClass.DEFAULT,
        TrafficClass.BULK,
    )

    def __init__(
        self,
        by_class: bool = True,
        priority: Sequence[TrafficClass] = DEFAULT_PRIORITY,
    ) -> None:
        if sorted(priority, key=lambda c: c.value) != sorted(
            TrafficClass, key=lambda c: c.value
        ):
            raise ConfigurationError(
                "priority must list every traffic class exactly once"
            )
        self.by_class = by_class
        self.priority = tuple(priority)
        self._pool: ChannelPool | None = None
        self._rank_by_channel: dict[int, int] = {}

    def setup(self, pool: ChannelPool, max_channels: int) -> None:
        self._pool = pool
        if not self.by_class or max_channels < len(TrafficClass):
            shared = pool.create("shared")
            for traffic_class in TrafficClass:
                pool.assign(traffic_class, shared.channel_id)
            self._rank_by_channel = {shared.channel_id: 0}
            return
        for rank, traffic_class in enumerate(self.priority):
            channel = pool.create(f"class:{traffic_class.value}")
            pool.assign(traffic_class, channel.channel_id)
            self._rank_by_channel[channel.channel_id] = rank

    def channel_for_entry(self, entry: SubmitEntry) -> int:
        if self._pool is None:
            raise ConfigurationError("PooledChannels.setup() not called")
        return self._pool.channel_for(entry.traffic_class).channel_id

    def service_order(self, queues: Sequence[ChannelQueue]) -> list[ChannelQueue]:
        return sorted(
            queues,
            key=lambda q: (self._rank_by_channel.get(q.channel_id, len(TrafficClass)), q.channel_id),
        )


class WeightedChannels(PooledChannels):
    """Weighted fair service over class channels.

    Instead of strict priorities, channels are served in order of
    *weighted bytes served*: the channel whose ``served_bytes / weight``
    is lowest goes first, so a high-weight class gets a proportionally
    larger share of NIC time without starving anyone.  Weights default
    to 1; control traffic usually deserves a large weight relative to
    its tiny byte volume.
    """

    name = "weighted"

    #: Default weights: control bytes count 1/64th, bulk bytes full.
    DEFAULT_WEIGHTS = {
        TrafficClass.CONTROL: 64.0,
        TrafficClass.PUTGET: 4.0,
        TrafficClass.DEFAULT: 2.0,
        TrafficClass.BULK: 1.0,
    }

    def __init__(self, weights: dict[TrafficClass, float] | None = None) -> None:
        super().__init__(by_class=True)
        self.weights = dict(self.DEFAULT_WEIGHTS)
        if weights:
            for traffic_class, weight in weights.items():
                if weight <= 0:
                    raise ConfigurationError(
                        f"weight for {traffic_class} must be > 0, got {weight}"
                    )
                self.weights[traffic_class] = weight
        self._served_bytes: dict[int, float] = {}
        self._weight_by_channel: dict[int, float] = {}

    def setup(self, pool: ChannelPool, max_channels: int) -> None:
        super().setup(pool, max_channels)
        for traffic_class in TrafficClass:
            channel = pool.channel_for(traffic_class)
            self._weight_by_channel[channel.channel_id] = self.weights[traffic_class]
            self._served_bytes.setdefault(channel.channel_id, 0.0)

    def note_dispatch(self, channel_id, items) -> None:
        # Account at least one byte per packet so zero-byte control
        # packets still consume a share of service.
        total = max(sum(size for _cls, size in items), 1)
        self._served_bytes[channel_id] = self._served_bytes.get(channel_id, 0.0) + total

    def service_order(self, queues: Sequence[ChannelQueue]) -> list[ChannelQueue]:
        def key(queue: ChannelQueue):
            weight = self._weight_by_channel.get(queue.channel_id, 1.0)
            return (self._served_bytes.get(queue.channel_id, 0.0) / weight, queue.channel_id)

        return sorted(queues, key=key)


class OneToOneChannels(ChannelPolicy):
    """The fallback policy of §2: each flow gets its own channel.

    Channels are allocated on demand up to the hardware's
    ``max_channels``; beyond that, flows wrap around (hashing) — exactly
    the degradation the paper's pooling argument predicts.  Service is
    round-robin with no class awareness.
    """

    name = "one-to-one"

    def __init__(self) -> None:
        self._pool: ChannelPool | None = None
        self._max_channels = 0
        self._flow_to_channel: dict[int, int] = {}
        self._rr_offset = 0

    def setup(self, pool: ChannelPool, max_channels: int) -> None:
        self._pool = pool
        self._max_channels = max_channels

    def channel_for_entry(self, entry: SubmitEntry) -> int:
        if self._pool is None:
            raise ConfigurationError("OneToOneChannels.setup() not called")
        if entry.flow is None:
            # Engine-generated control traffic has no flow; it shares the
            # first channel (one-to-one has no class concept to help it).
            if len(self._pool) == 0:
                self._pool.create("flowchan0")
            return self._pool.channels[0].channel_id
        flow_id = entry.flow.flow_id
        if flow_id not in self._flow_to_channel:
            if len(self._pool) < self._max_channels:
                channel = self._pool.create(f"flowchan{len(self._pool)}")
                self._flow_to_channel[flow_id] = channel.channel_id
            else:
                channels = self._pool.channels
                self._flow_to_channel[flow_id] = channels[
                    flow_id % len(channels)
                ].channel_id
        return self._flow_to_channel[flow_id]

    def service_order(self, queues: Sequence[ChannelQueue]) -> list[ChannelQueue]:
        ordered = sorted(queues, key=lambda q: q.channel_id)
        if not ordered:
            return []
        # Rotate so no channel is structurally favoured.
        self._rr_offset = (self._rr_offset + 1) % len(ordered)
        return ordered[self._rr_offset :] + ordered[: self._rr_offset]
