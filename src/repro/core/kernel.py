"""Decision-kernel backend selection and driver-constant folding.

The hot functions live in :mod:`repro.core._kernel_hot` (one module, no
engine imports, so an ahead-of-time compiler can translate it whole).
This facade picks which copy of that module the strategies actually run,
driven by the ``REPRO_KERNEL`` environment variable:

``python`` (default)
    The batched pure-Python kernel — flat-array candidate builds and
    packed scoring.  This is the reference implementation.
``compiled``
    A mypyc-built clone of the kernel module
    (``repro.core._kernel_hot_c``, produced by ``tools/build_kernel.py``).
    Falls back to ``python`` with a warning when no compiled module is
    importable — the container toolchain is never required.
``reference``
    Disables array batching entirely: strategies walk ``SubmitEntry``
    objects and score materialized plans exactly as before the batching
    refactor.  Kept as the semantic oracle for the equivalence tests.

The batched path additionally requires the driver/link/cost types to use
the *stock* method implementations (:func:`constants_for` checks this);
an exotic subclass silently gets the reference walk, never wrong scores.
"""

from __future__ import annotations

import os
import warnings
from typing import TYPE_CHECKING

from repro.core import _kernel_hot as _pure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.drivers.base import Driver

__all__ = [
    "ACTIVE_BACKEND",
    "KERNEL_BACKENDS",
    "PendingArrays",
    "DriverConstants",
    "SeedBuild",
    "build_eager_arrays",
    "probe_uniform_seeds",
    "oversized_waiting_indices",
    "score_eager_packed",
    "constants_for",
]

KERNEL_BACKENDS = ("python", "compiled", "reference")

_ENV_VAR = "REPRO_KERNEL"


def _resolve_backend() -> tuple[str, object]:
    requested = os.environ.get(_ENV_VAR, "python").strip().lower() or "python"
    if requested not in KERNEL_BACKENDS:
        warnings.warn(
            f"{_ENV_VAR}={requested!r} is not one of {KERNEL_BACKENDS}; "
            "using the default pure-Python kernel",
            RuntimeWarning,
            stacklevel=2,
        )
        return "python", _pure
    if requested == "compiled":
        try:
            from repro.core import _kernel_hot_c as compiled  # type: ignore[attr-defined]
        except ImportError:
            warnings.warn(
                f"{_ENV_VAR}=compiled requested but no compiled kernel module "
                "is installed (run tools/build_kernel.py); falling back to "
                "the pure-Python kernel",
                RuntimeWarning,
                stacklevel=2,
            )
            return "python", _pure
        return "compiled", compiled
    return requested, _pure


ACTIVE_BACKEND, _impl = _resolve_backend()

PendingArrays = _impl.PendingArrays  # type: ignore[attr-defined]
DriverConstants = _impl.DriverConstants  # type: ignore[attr-defined]
SeedBuild = _impl.SeedBuild  # type: ignore[attr-defined]
build_eager_arrays = _impl.build_eager_arrays  # type: ignore[attr-defined]
probe_uniform_seeds = _impl.probe_uniform_seeds  # type: ignore[attr-defined]
oversized_waiting_indices = _impl.oversized_waiting_indices  # type: ignore[attr-defined]
score_eager_packed = _impl.score_eager_packed  # type: ignore[attr-defined]


def batching_enabled() -> bool:
    """Whether strategies should take the array fast path at all."""
    return ACTIVE_BACKEND != "reference"


def constants_for(driver: "Driver"):
    """The driver's :class:`DriverConstants`, folded once and cached.

    Everything in the result is derived from frozen capability/link
    dataclasses, so the fold is valid for the driver's lifetime; the
    only live callable retained is the NIC's ``reaches`` bound method
    (reachability can change under fault injection and must be
    re-queried per build).

    ``exact`` is ``False`` when the driver (or its link model, or a
    subclass) overrides any method the fold replicates — callers must
    then use the scalar reference path, because the folded arithmetic
    would no longer match the overridden behaviour.
    """
    consts = getattr(driver, "_kernel_constants", None)
    if consts is not None:
        return consts
    from repro.drivers.base import Driver as DriverBase
    from repro.network.model import LinkModel, TransferMode

    caps = driver.caps
    link = driver.nic.link
    cls = type(driver)
    exact = (
        cls.choose_mode is DriverBase.choose_mode
        and cls.wants_rendezvous is DriverBase.wants_rendezvous
        and cls.choose_aggregation is DriverBase.choose_aggregation
        and cls.occupancy is DriverBase.occupancy
        and cls.max_segments_per_packet is DriverBase.max_segments_per_packet
        and type(link) is LinkModel
    )
    if not caps.supports_pio:
        pio_limit = float("-inf")  # choose_mode: DMA always
    elif not caps.supports_dma:
        pio_limit = float("inf")  # choose_mode: PIO always
    else:
        pio_limit = min(float(caps.pio_threshold), link.pio_dma_crossover())
    startup_pio = link.startup(TransferMode.PIO)
    bandwidth_pio = link.bandwidth(TransferMode.PIO)
    startup_dma = link.startup(TransferMode.DMA)
    bandwidth_dma = link.bandwidth(TransferMode.DMA)
    consts = DriverConstants(
        max_aggregate_size=caps.max_aggregate_size,
        max_items_cap=driver.max_segments_per_packet(),
        rdv_threshold=caps.eager_threshold if caps.supports_rdv else None,
        supports_gather=caps.supports_gather,
        max_gather_entries=caps.max_gather_entries,
        gather_entry_cost=link.gather_entry_cost,
        copy_bandwidth=link.copy_bandwidth,
        pio_limit=pio_limit,
        startup_pio=startup_pio,
        bandwidth_pio=bandwidth_pio,
        startup_equiv_pio=startup_pio * bandwidth_pio,
        startup_dma=startup_dma,
        bandwidth_dma=bandwidth_dma,
        startup_equiv_dma=startup_dma * bandwidth_dma,
        reaches=driver.nic.reaches,
        exact=exact,
    )
    driver._kernel_constants = consts
    return consts
