"""Adaptive channel assignment (paper §2).

"Finally, the scheduler may also choose to dynamically change the
assignment of networking resources to traffic classes, thus selecting
different policies, as the needs of the application evolve during the
execution."

:class:`AdaptiveChannels` implements that: it starts with a *single*
shared channel (multiplexing units are scarce hardware resources — MX
exposes 8), observes per-class traffic through the ``note_dispatch``
feedback hook, and **promotes** a traffic class to a dedicated channel
once its byte volume shows it interferes with the others.  Promotion
rewrites the class → channel assignment in place; entries already
queued stay where they are, new entries follow the new mapping.  A
class whose traffic dries up is **demoted** back to the shared channel,
releasing its multiplexing unit.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.channels import ChannelPolicy
from repro.core.waiting import ChannelQueue
from repro.madeleine.submit import SubmitEntry
from repro.network.virtual import ChannelPool, TrafficClass
from repro.util.errors import ConfigurationError
from repro.util.units import KiB

__all__ = ["AdaptiveChannels"]


class AdaptiveChannels(ChannelPolicy):
    """Single shared channel that grows dedicated class channels on demand.

    Parameters
    ----------
    promote_bytes:
        A class is promoted once it has moved this many bytes since the
        last adaptation window.
    window_dispatches:
        Adaptation is evaluated every this-many dispatched packets.
    demote_after_windows:
        A promoted class is demoted after this many consecutive windows
        with zero traffic.
    min_dwell_windows:
        Hysteresis: once a class flips (promote or demote), it may not
        flip again for this many adaptation windows.  ``1`` (the
        default) allows a flip every window — the exact pre-hysteresis
        behaviour; larger values stop an oscillating workload from
        thrashing a class between its dedicated channel and the shared
        one every window.
    """

    name = "adaptive"

    #: Service priority among promoted channels (control first).
    PRIORITY = (
        TrafficClass.CONTROL,
        TrafficClass.PUTGET,
        TrafficClass.DEFAULT,
        TrafficClass.BULK,
    )

    def __init__(
        self,
        promote_bytes: int = 64 * KiB,
        window_dispatches: int = 32,
        demote_after_windows: int = 4,
        min_dwell_windows: int = 1,
    ) -> None:
        if promote_bytes < 1 or window_dispatches < 1 or demote_after_windows < 1:
            raise ConfigurationError("adaptive thresholds must be >= 1")
        if min_dwell_windows < 1:
            raise ConfigurationError(
                f"min_dwell_windows must be >= 1, got {min_dwell_windows}"
            )
        self.promote_bytes = promote_bytes
        self.window_dispatches = window_dispatches
        self.demote_after_windows = demote_after_windows
        self.min_dwell_windows = min_dwell_windows
        self._windows_seen = 0
        self._last_flip: dict[TrafficClass, int] = {}
        self._pool: ChannelPool | None = None
        self._max_channels = 1
        self._shared_id: int | None = None
        self._dedicated: dict[TrafficClass, int] = {}
        self._free_channels: list[int] = []
        self._window_bytes: dict[TrafficClass, int] = {}
        self._idle_windows: dict[TrafficClass, int] = {}
        self._dispatches_in_window = 0
        self._engine = None
        #: (time-ordered) log of adaptation decisions, for tests/benches.
        self.adaptations: list[tuple[str, TrafficClass]] = []

    def bind(self, engine) -> None:
        self._engine = engine

    # ------------------------------------------------------------------
    # ChannelPolicy interface
    # ------------------------------------------------------------------
    def setup(self, pool: ChannelPool, max_channels: int) -> None:
        self._pool = pool
        self._max_channels = max_channels
        shared = pool.create("shared")
        self._shared_id = shared.channel_id
        for traffic_class in TrafficClass:
            pool.assign(traffic_class, shared.channel_id)

    def channel_for_entry(self, entry: SubmitEntry) -> int:
        if self._pool is None:
            raise ConfigurationError("AdaptiveChannels.setup() not called")
        return self._pool.channel_for(entry.traffic_class).channel_id

    #: ``service_order`` rank of the shared channel: strictly after the
    #: dedicated CONTROL/PUTGET channels (ranks 0, 1) and strictly
    #: before dedicated DEFAULT/BULK (ranks 3, 4) — mixed traffic must
    #: not overtake latency-critical classes, but beats pure background
    #: classes.  Dedicated ranks leave this slot free (see below), so no
    #: dedicated channel can ever tie with the shared one.
    _SHARED_RANK = 2

    def service_order(self, queues: Sequence[ChannelQueue]) -> list[ChannelQueue]:
        rank: dict[int, int] = {}
        for position, traffic_class in enumerate(self.PRIORITY):
            channel_id = self._dedicated.get(traffic_class)
            if channel_id is not None:
                # Skip over _SHARED_RANK so a promoted DEFAULT channel
                # (PRIORITY position 2) cannot collide with the shared
                # channel's rank — a tie would fall through to
                # channel-id order and service shared (mixed) traffic
                # ahead of the dedicated class it lost to.
                rank[channel_id] = (
                    position if position < self._SHARED_RANK else position + 1
                )
        if self._shared_id is not None:
            rank.setdefault(self._shared_id, self._SHARED_RANK)
        unknown = len(self.PRIORITY) + 1
        return sorted(
            queues, key=lambda q: (rank.get(q.channel_id, unknown), q.channel_id)
        )

    def note_dispatch(self, channel_id, items) -> None:
        for traffic_class, size in items:
            self._window_bytes[traffic_class] = (
                self._window_bytes.get(traffic_class, 0) + size
            )
        self._dispatches_in_window += 1
        if self._dispatches_in_window >= self.window_dispatches:
            self._adapt()

    def note_rail_event(self, engine, nic, up: bool) -> None:
        """Collapse onto the shared channel when a rail dies.

        Losing a NIC shrinks the serviceable multiplexing capacity;
        folding every dedicated class back into the shared channel lets
        the surviving rails drain one queue under class priorities
        instead of starving per-class channels the dead rail may have
        been serving (under static rail binding).  Classes re-earn their
        dedicated channels through the normal promotion path once
        traffic proves they still interfere.
        """
        if up:
            return
        for traffic_class in list(self._dedicated):
            self._demote(traffic_class)

    # ------------------------------------------------------------------
    # adaptation
    # ------------------------------------------------------------------
    def _adapt(self) -> None:
        assert self._pool is not None
        window = self._window_bytes
        self._window_bytes = {}
        self._dispatches_in_window = 0
        self._windows_seen += 1

        for traffic_class in TrafficClass:
            bytes_moved = window.get(traffic_class, 0)
            if traffic_class in self._dedicated:
                if bytes_moved == 0:
                    idle = self._idle_windows.get(traffic_class, 0) + 1
                    self._idle_windows[traffic_class] = idle
                    if idle >= self.demote_after_windows and self._dwelled(
                        traffic_class
                    ):
                        self._demote(traffic_class)
                else:
                    self._idle_windows[traffic_class] = 0
            elif bytes_moved >= self.promote_bytes and self._dwelled(traffic_class):
                self._promote(traffic_class)

    def _dwelled(self, traffic_class: TrafficClass) -> bool:
        """Whether the class's last flip is old enough to flip again."""
        last = self._last_flip.get(traffic_class)
        return last is None or self._windows_seen - last >= self.min_dwell_windows

    def _promote(self, traffic_class: TrafficClass) -> None:
        assert self._pool is not None
        if len(self._pool) >= self._max_channels and not self._free_channels:
            return  # out of multiplexing units: keep sharing
        if self._free_channels:
            channel_id = self._free_channels.pop()
        else:
            channel_id = self._pool.create(f"dyn:{traffic_class.value}").channel_id
        self._pool.assign(traffic_class, channel_id)
        self._dedicated[traffic_class] = channel_id
        self._idle_windows[traffic_class] = 0
        self._last_flip[traffic_class] = self._windows_seen
        self.adaptations.append(("promote", traffic_class))
        if self._engine is not None:
            # Pending entries of the class follow the new assignment.
            self._engine.reassign_class(traffic_class, channel_id)

    def _demote(self, traffic_class: TrafficClass) -> None:
        assert self._pool is not None and self._shared_id is not None
        channel_id = self._dedicated.pop(traffic_class)
        self._pool.assign(traffic_class, self._shared_id)
        self._free_channels.append(channel_id)
        self._idle_windows.pop(traffic_class, None)
        self._last_flip[traffic_class] = self._windows_seen
        self.adaptations.append(("demote", traffic_class))
        if self._engine is not None:
            self._engine.reassign_class(traffic_class, self._shared_id)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def dedicated_classes(self) -> frozenset[TrafficClass]:
        """Classes currently owning a dedicated channel."""
        return frozenset(self._dedicated)

    @property
    def channels_in_use(self) -> int:
        """Channels carrying an assignment right now (shared + dedicated)."""
        return 1 + len(self._dedicated)
