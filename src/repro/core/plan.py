"""Transfer plans: what a strategy hands to the engine for dispatch.

A :class:`TransferPlan` is the blueprint of exactly one NIC request —
one wire packet on one driver.  A plan combining several
:class:`PlanItem` entries *is* the paper's aggregation: each item
contributes a slice of one waiting-list entry to the packet.

Strategies may instead return :class:`Hold` ("wait a little — a better
aggregation may form", the Nagle device of §3) or ``None`` ("nothing
sensible to send on this driver right now").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.drivers.base import Driver
from repro.madeleine.submit import SubmitEntry
from repro.network.wire import PacketKind
from repro.util.errors import ConfigurationError

__all__ = ["PlanItem", "TransferPlan", "Hold"]


@dataclass(frozen=True, slots=True)
class PlanItem:
    """One entry slice included in a plan.

    ``take`` is how many of the entry's remaining bytes this packet
    carries — less than ``entry.remaining`` when a large rendezvous body
    is striped across rails.
    """

    entry: SubmitEntry
    take: int

    def __post_init__(self) -> None:
        if self.take <= 0 or self.take > self.entry.remaining:
            raise ConfigurationError(
                f"plan item takes {self.take} B of entry #{self.entry.entry_id} "
                f"with {self.entry.remaining} B remaining"
            )


@dataclass(slots=True)
class TransferPlan:
    """Blueprint of one wire packet on one driver."""

    driver: Driver
    kind: PacketKind
    dst: str
    channel_id: int
    items: list[PlanItem]
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.items:
            raise ConfigurationError("a transfer plan needs at least one item")
        for item in self.items:
            if item.entry.dst != self.dst:
                raise ConfigurationError(
                    f"entry #{item.entry.entry_id} targets {item.entry.dst!r}, "
                    f"plan targets {self.dst!r}"
                )

    @property
    def payload_bytes(self) -> int:
        """Data bytes this packet will carry (control plans carry none)."""
        if self.kind.is_control:
            return 0
        return sum(item.take for item in self.items)

    @property
    def entries(self) -> list[SubmitEntry]:
        """The entries contributing to this plan, in wire order."""
        return [item.entry for item in self.items]

    @property
    def segment_count(self) -> int:
        """Number of payload segments the packet will contain."""
        return 0 if self.kind.is_control else len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransferPlan({self.kind.value} ->{self.dst} ch={self.channel_id} "
            f"items={len(self.items)} bytes={self.payload_bytes} on {self.driver.name})"
        )


@dataclass(frozen=True, slots=True)
class Hold:
    """Strategy decision: send nothing now, re-evaluate at ``wake_at``."""

    wake_at: float
