"""The optimizer–scheduler engine (the middle layer of Figure 1).

:class:`CommEngineBase` holds everything both engines share — waiting
lists, dispatch mechanics, the rendezvous protocol state machine —
while :class:`OptimizingEngine` adds the paper's activation discipline:

* the application ``submit_message``\\ s and *immediately returns to
  computing*; packets pile up in the waiting lists;
* the scheduler runs when a NIC becomes **idle** (``nic.on_idle``), not
  per submission — while a NIC is busy, the backlog (lookahead pool)
  grows and aggregation opportunities widen;
* if every NIC is idle when work arrives, the engine pumps immediately
  ("send packets as they become available"), possibly holding small
  backlogs for a Nagle-style delay when so configured.

The deterministic Madeleine-3 baseline reuses the same base class; see
:mod:`repro.baseline.legacy`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.channels import ChannelPolicy, PooledChannels
from repro.core.config import EngineConfig
from repro.core.constraints import ConstraintChecker
from repro.core.cost import CostModel
from repro.core.plan import Hold, TransferPlan
from repro.core.strategies.aggregation import AggregationStrategy
from repro.core.strategies.base import Strategy
from repro.core.waiting import ChannelQueue, WaitingLists
from repro.drivers.base import Driver
from repro.madeleine.message import Message
from repro.madeleine.submit import EntryKind, EntryState, SubmitEntry
from repro.network.fabric import Node
from repro.network.wire import PacketKind, WirePacket, WireSegment
from repro.sim.engine import Simulator
from repro.sim.event import Event
from repro.util.errors import ConfigurationError, InternalError, ProtocolError

__all__ = ["EngineStats", "CommEngineBase", "OptimizingEngine"]


@dataclass(slots=True)
class EngineStats:
    """Cumulative engine counters (per node)."""

    messages_submitted: int = 0
    entries_enqueued: int = 0
    activations: dict[str, int] = field(default_factory=dict)
    dispatches: int = 0
    packets_by_kind: dict[str, int] = field(default_factory=dict)
    payload_bytes: int = 0
    data_packets: int = 0
    data_segments: int = 0
    aggregated_packets: int = 0
    holds: int = 0
    rdv_parked: int = 0
    rdv_ready: int = 0
    rdv_timeouts: int = 0
    acks_sent: int = 0
    failovers: int = 0

    def note_activation(self, trigger: str) -> None:
        """Count one optimizer activation by its trigger kind."""
        self.activations[trigger] = self.activations.get(trigger, 0) + 1

    @property
    def aggregation_ratio(self) -> float:
        """Mean payload segments per data packet (1.0 = no aggregation)."""
        return self.data_segments / self.data_packets if self.data_packets else 0.0


class CommEngineBase:
    """Shared mechanics: waiting lists, dispatch, rendezvous protocol."""

    _rdv_tokens = itertools.count()

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        drivers: Iterable[Driver],
        *,
        strategy: Strategy | None = None,
        policy: ChannelPolicy | None = None,
        config: EngineConfig | None = None,
        cost: CostModel | None = None,
        checker: ConstraintChecker | None = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.node_name = node.name
        self.drivers: list[Driver] = list(drivers)
        if not self.drivers:
            raise ConfigurationError(f"engine on {node.name!r} needs at least one driver")
        for driver in self.drivers:
            if driver.nic not in node.nics:
                raise ConfigurationError(
                    f"driver {driver.name!r} is not attached to node {node.name!r}"
                )
        self.strategy = strategy if strategy is not None else AggregationStrategy()
        self.policy = policy if policy is not None else PooledChannels()
        self.config = config if config is not None else EngineConfig()
        self.cost = cost if cost is not None else CostModel()
        self.checker = checker if checker is not None else ConstraintChecker()
        self.waiting = WaitingLists()
        self.stats = EngineStats()

        self._driver_index = {id(d): i for i, d in enumerate(self.drivers)}
        self._rdv_pending: dict[int, tuple[SubmitEntry, int]] = {}
        self._rdv_timers: dict[int, Event] = {}
        self._rdv_abandoned: set[int] = set()
        self._recv_credits: dict[int | None, int] = {}
        self._deferred_reqs: dict[int | None, list[WirePacket]] = {}
        self._granted_messages: set[int] = set()
        self._ack_delay = min(d.caps.rdv_ack_delay for d in self.drivers)
        self._enqueue_epoch = 0
        self._pumping = False
        self._hold_timer: Event | None = None
        self._hold_wake = float("inf")
        #: Read-only tail statistics, set by the observability plane at
        #: install time (None without a plane).  Consulted only on the
        #: tracing-gated decide-record path: strategies do not act on
        #: it yet, so dispatch stays identical with or without it.
        self.tail_view = None
        #: Optional driver-iteration reorderer (``order(drivers)``),
        #: installed by the tuner's tail-acting rail selection.  None —
        #: the default — iterates ``self.drivers`` exactly as built, so
        #: dispatch without a selector is byte-identical to before the
        #: hook existed.
        self.rail_selector = None

        self.policy.setup(node.channels, min(d.caps.max_channels for d in self.drivers))
        self.policy.bind(self)
        for driver in self.drivers:
            driver.nic.on_idle(self._nic_idle)
            driver.nic.on_fail(self._nic_failed)
            driver.nic.on_recover(self._nic_recovered)
        node.receiver.register_control_handler(PacketKind.RDV_REQ, self._handle_rdv_req)
        node.receiver.register_control_handler(PacketKind.RDV_ACK, self._handle_rdv_ack)

    # ------------------------------------------------------------------
    # collect layer: the packing API lands here
    # ------------------------------------------------------------------
    def submit_message(self, message: Message) -> None:
        """Accept a flushed message; enqueue one entry per fragment."""
        now = self.sim.now
        message.mark_flushed(now)
        self.stats.messages_submitted += 1
        for fragment in message.fragments:
            entry = SubmitEntry(
                EntryKind.DATA,
                message.flow.dst,
                now,
                fragment=fragment,
                flow=message.flow,
            )
            self._enqueue(entry)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                now,
                f"engine:{self.node_name}",
                "collect.enqueue",
                message=message.message_id,
                flow=message.flow.name,
                dst=message.flow.dst,
                fragments=len(message.fragments),
                bytes=message.total_size,
            )
        self._after_submit()

    def _enqueue(self, entry: SubmitEntry) -> None:
        channel_id = self.policy.channel_for_entry(entry)
        self.waiting.enqueue(entry, channel_id)
        self.stats.entries_enqueued += 1
        self._enqueue_epoch += 1

    # ------------------------------------------------------------------
    # activation hooks (subclasses define the discipline)
    # ------------------------------------------------------------------
    def _after_submit(self) -> None:
        raise NotImplementedError

    def _nic_idle(self, nic) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # rail outages (multirail failover)
    # ------------------------------------------------------------------
    def _nic_failed(self, nic) -> None:
        """A rail went down: re-route its traffic onto the survivors.

        With pooled binding nothing needs migrating — the surviving NICs
        already drain every queue; with static binding ``queues_for``
        remaps the dead rail's channels onto the alive drivers.  Either
        way the policy gets a chance to rebalance and the survivors are
        kicked so backlog bound for the dead rail starts moving now
        rather than at their next natural idle transition.
        """
        self.stats.failovers += 1
        self.policy.note_rail_event(self, nic, up=False)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                self.sim.now,
                f"engine:{self.node_name}",
                "engine.failover",
                nic=nic.name,
                survivors=sum(1 for d in self.drivers if not d.nic.failed),
            )
        self._kick("rail-down")

    def _nic_recovered(self, nic) -> None:
        """A rail came back: let the policy rebalance and resume on it."""
        self.policy.note_rail_event(self, nic, up=True)
        self._kick("rail-up")

    # ------------------------------------------------------------------
    # the dispatch loop
    # ------------------------------------------------------------------
    def queues_for(self, driver: Driver) -> list[ChannelQueue]:
        """Non-empty channel queues this driver may serve, in service order.

        Static rail binding partitions channels over the *alive* drivers
        only: when a rail dies its channels remap onto the survivors
        (multirail failover), and with every rail up the mapping is the
        original ``channel_id % n_drivers`` partition.
        """
        queues = list(self.waiting.non_empty())
        if self.config.rail_binding == "static" and len(self.drivers) > 1:
            alive = [d for d in self.drivers if not d.nic.failed]
            if driver.nic.failed or not alive:
                return []
            n = len(alive)
            index = alive.index(driver)
            queues = [q for q in queues if q.channel_id % n == index]
        return self.policy.service_order(queues)

    def _pump(self, trigger: str) -> None:
        """Feed every idle NIC until strategies run out of plans."""
        if self._pumping:
            return
        self._pumping = True
        self.stats.note_activation(trigger)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                self.sim.now,
                f"engine:{self.node_name}",
                "optimizer.activate",
                trigger=trigger,
                backlog=self.waiting.total_pending,
            )
        selector = self.rail_selector
        drivers = self.drivers if selector is None else selector.order(self.drivers)
        try:
            for driver in drivers:
                while driver.idle:
                    epoch = self._enqueue_epoch
                    decision = self.strategy.make_plan(self, driver)
                    if isinstance(decision, TransferPlan):
                        if tracer.enabled:
                            self._emit_decide(decision, tracer)
                        self._dispatch(decision)
                    elif isinstance(decision, Hold):
                        self.stats.holds += 1
                        self._arm_hold(decision.wake_at)
                        break
                    else:
                        if self._enqueue_epoch != epoch:
                            continue  # planning parked work; re-plan
                        break
        finally:
            self._pumping = False

    def _emit_decide(self, plan: TransferPlan, tracer) -> None:
        """One ``optimizer.decide`` record per dispatch (tracing only).

        Emitted *before* :meth:`_dispatch` consumes the plan's entries so
        the score breakdown reflects the state the decision was made in.
        Never reached on the NullTracer fast path — callers guard on
        ``tracer.enabled``.
        """
        detail: dict = {
            "strategy": type(self.strategy).name,
            "packet_kind": plan.kind.value,
            "channel": plan.channel_id,
            "items": len(plan.items),
            "bytes": plan.payload_bytes,
            "nic": plan.driver.name,
            "dst": plan.dst,
            "score": self.cost.breakdown(plan, self.sim.now),
        }
        explain = self.strategy.explain_last()
        if explain:
            detail.update(explain)
        if self.tail_view is not None:
            hint = self.tail_view.hint(self.node_name, plan.dst, plan.driver.name)
            if hint is not None:
                detail["tail_hint"] = hint
        tracer.emit(
            self.sim.now, f"engine:{self.node_name}", "optimizer.decide", **detail
        )

    def _dispatch(self, plan: TransferPlan) -> None:
        """Turn a plan into a wire packet and hand it to the driver."""
        queue = self.waiting.queue(plan.channel_id)
        if self.config.validate_plans:
            # Plan items can only come from the lookahead window, and the
            # FIFO rule is decided by entries at or before the last taken
            # one, so a window-bounded snapshot suffices (and keeps the
            # check O(window) instead of O(queue) under deep backlogs).
            self.checker.check(plan, queue.pending_view(self.config.lookahead_window))
        segments: list[WireSegment] = []
        for item in plan.items:
            entry = item.entry
            offset = entry.consume(item.take)
            if entry.kind is EntryKind.DATA:
                segments.append(WireSegment(entry.fragment, offset, item.take))
            if entry.state is EntryState.SENT:
                queue.remove(entry)
        packet = WirePacket(
            kind=plan.kind,
            src=self.node_name,
            dst=plan.dst,
            channel_id=plan.channel_id,
            segments=tuple(segments),
            meta=plan.meta,
        )
        plan.driver.send(packet)
        self.policy.note_dispatch(
            plan.channel_id,
            [(item.entry.traffic_class, item.take) for item in plan.items],
        )
        stats = self.stats
        stats.dispatches += 1
        kind = plan.kind.value
        stats.packets_by_kind[kind] = stats.packets_by_kind.get(kind, 0) + 1
        stats.payload_bytes += packet.payload_bytes
        if plan.kind in (PacketKind.EAGER, PacketKind.RDV_DATA):
            stats.data_packets += 1
            stats.data_segments += len(segments)
            if len(segments) > 1:
                stats.aggregated_packets += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                self.sim.now,
                f"engine:{self.node_name}",
                "engine.dispatch",
                packet_kind=kind,
                packet=packet.packet_id,
                dst=plan.dst,
                segments=len(segments),
                bytes=packet.payload_bytes,
                nic=plan.driver.name,
                messages=[
                    [
                        seg.payload.message.message_id,
                        seg.payload.fragment_id,
                        seg.length,
                    ]
                    for seg in segments
                ],
            )

    # ------------------------------------------------------------------
    # Nagle hold timer
    # ------------------------------------------------------------------
    def _arm_hold(self, wake_at: float) -> None:
        if wake_at <= self.sim.now:
            # A Hold with a past deadline is a strategy implementation
            # bug, not a user configuration problem.
            raise InternalError(
                f"hold deadline {wake_at} not in the future (now={self.sim.now})"
            )
        if self._hold_timer is not None and self._hold_wake <= wake_at:
            return  # an earlier wake-up is already armed
        if self._hold_timer is not None:
            self.sim.cancel(self._hold_timer)
        self._hold_wake = wake_at
        self._hold_timer = self.sim.at(wake_at, self._hold_expired)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                self.sim.now,
                f"engine:{self.node_name}",
                "hold.arm",
                wake_at=wake_at,
                backlog=self.waiting.total_pending,
            )

    def _hold_expired(self) -> None:
        self._hold_timer = None
        self._hold_wake = float("inf")
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                self.sim.now, f"engine:{self.node_name}", "hold.fire"
            )
        self._pump("nagle")

    # ------------------------------------------------------------------
    # rendezvous protocol
    # ------------------------------------------------------------------
    def park_for_rendezvous(self, entry: SubmitEntry, channel_id: int) -> None:
        """Take an oversized entry out of its queue and send a RDV_REQ.

        The entry re-enters the waiting lists as dispatchable bulk when
        the peer's acknowledgement arrives.  Other packets keep flowing
        meanwhile — rendezvous never head-of-line-blocks this engine.
        """
        if entry.state is not EntryState.WAITING:
            raise ProtocolError(
                f"cannot park entry #{entry.entry_id} in state {entry.state.value}"
            )
        self.waiting.queue(channel_id).remove(entry)
        entry.state = EntryState.RDV_PENDING
        token = next(self._rdv_tokens)
        self._rdv_pending[token] = (entry, channel_id)
        request = SubmitEntry(
            EntryKind.RDV_REQ,
            entry.dst,
            self.sim.now,
            meta={
                "token": token,
                "size": entry.remaining,
                "reply_to": self.node_name,
                "flow_id": entry.flow.flow_id if entry.flow is not None else None,
                "message_id": (
                    entry.message.message_id if entry.message is not None else None
                ),
            },
        )
        self._enqueue(request)
        self.stats.rdv_parked += 1
        if self.config.rdv_timeout is not None:
            self._rdv_timers[token] = self.sim.schedule(
                self.config.rdv_timeout, self._rdv_timeout, token
            )
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                self.sim.now,
                f"engine:{self.node_name}",
                "rdv.park",
                entry=entry.entry_id,
                token=token,
                bytes=entry.remaining,
                message=(
                    entry.message.message_id if entry.message is not None else None
                ),
            )

    def _handle_rdv_req(self, packet: WirePacket) -> None:
        """Peer wants to push bulk data: prepare, then acknowledge.

        With ``config.rdv_requires_recv`` the acknowledgement is gated
        on a posted receive (:meth:`post_receive`): one receive credit
        admits one *message* — several oversized fragments of the same
        message consume a single credit.
        """
        if not self.config.rdv_requires_recv:
            self.sim.schedule(self._ack_delay, self._send_rdv_ack, packet)
            return
        message_id = packet.meta.get("message_id")
        flow_id = packet.meta.get("flow_id")
        if message_id is not None and message_id in self._granted_messages:
            self.sim.schedule(self._ack_delay, self._send_rdv_ack, packet)
            return
        if self._recv_credits.get(flow_id, 0) > 0:
            self._recv_credits[flow_id] -= 1
            if message_id is not None:
                self._granted_messages.add(message_id)
            self.sim.schedule(self._ack_delay, self._send_rdv_ack, packet)
            return
        self._deferred_reqs.setdefault(flow_id, []).append(packet)

    def post_receive(self, flow, count: int = 1) -> None:
        """Grant ``count`` receive credits on an incoming flow.

        Each credit admits one rendezvous message; deferred requests are
        acknowledged immediately, surplus credits are banked.  A no-op
        protocol-wise unless ``config.rdv_requires_recv`` is set (eager
        traffic never needs credits).
        """
        if flow.dst != self.node_name:
            raise ConfigurationError(
                f"flow {flow.name!r} does not terminate at {self.node_name!r}"
            )
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        flow_id = flow.flow_id
        for _ in range(count):
            deferred = self._deferred_reqs.get(flow_id)
            if deferred:
                packet = deferred.pop(0)
                message_id = packet.meta.get("message_id")
                self.sim.schedule(self._ack_delay, self._send_rdv_ack, packet)
                if message_id is not None:
                    self._granted_messages.add(message_id)
                    # Sibling requests of the same message ride the same
                    # credit (one posted receive admits one message).
                    siblings = [
                        p for p in deferred if p.meta.get("message_id") == message_id
                    ]
                    for sibling in siblings:
                        deferred.remove(sibling)
                        self.sim.schedule(self._ack_delay, self._send_rdv_ack, sibling)
            else:
                self._recv_credits[flow_id] = self._recv_credits.get(flow_id, 0) + 1

    def _send_rdv_ack(self, packet: WirePacket) -> None:
        ack = SubmitEntry(
            EntryKind.RDV_ACK,
            packet.meta["reply_to"],
            self.sim.now,
            meta={"token": packet.meta["token"]},
        )
        self._enqueue(ack)
        self.stats.acks_sent += 1
        self._kick("rdv-ack")

    def _handle_rdv_ack(self, packet: WirePacket) -> None:
        """Our earlier request was acknowledged: bulk data may go."""
        token = packet.meta["token"]
        try:
            entry, channel_id = self._rdv_pending.pop(token)
        except KeyError:
            if token in self._rdv_abandoned:
                # The handshake timed out and the entry already fell back
                # to eager transmission; a late ACK is stale, not a bug.
                return
            raise ProtocolError(f"unmatched rendezvous ACK (token {token})") from None
        timer = self._rdv_timers.pop(token, None)
        if timer is not None:
            self.sim.cancel(timer)
        entry.state = EntryState.RDV_READY
        self.waiting.enqueue(entry, channel_id)
        self.stats.rdv_ready += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                self.sim.now,
                f"engine:{self.node_name}",
                "rdv.ready",
                entry=entry.entry_id,
                token=token,
                message=(
                    entry.message.message_id if entry.message is not None else None
                ),
            )
        self._kick("rdv-ready")

    def _rdv_timeout(self, token: int) -> None:
        """Abandon a rendezvous handshake whose ACK never came.

        The parked entry re-enters its waiting list marked ``no_rdv``, so
        strategies chunk it into eager packets instead of re-parking it —
        slower than zero-copy bulk, but it keeps the message moving on a
        fabric that is losing control packets (graceful degradation
        instead of a hang).
        """
        pending = self._rdv_pending.pop(token, None)
        self._rdv_timers.pop(token, None)
        if pending is None:
            return  # ACK won the race with the timer
        entry, channel_id = pending
        self._rdv_abandoned.add(token)
        entry.state = EntryState.WAITING
        entry.meta["no_rdv"] = True
        self.waiting.enqueue(entry, channel_id)
        self.stats.rdv_timeouts += 1
        self._rendezvous_abandoned(entry, channel_id)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                self.sim.now,
                f"engine:{self.node_name}",
                "rdv.timeout",
                entry=entry.entry_id,
                token=token,
                bytes=entry.remaining,
                message=(
                    entry.message.message_id if entry.message is not None else None
                ),
            )
        self._kick("rdv-timeout")

    def _rendezvous_abandoned(self, entry: SubmitEntry, channel_id: int) -> None:
        """Subclass hook: a parked rendezvous fell back to eager.

        The base engine needs no extra bookkeeping; engines that block
        channels behind a handshake (the Madeleine-3 baseline) override
        this to unblock them.
        """

    def _kick(self, trigger: str) -> None:
        """Pump if any NIC can take work right now."""
        if any(d.idle for d in self.drivers):
            self._pump(trigger)

    # ------------------------------------------------------------------
    # dynamic reassignment (paper §2)
    # ------------------------------------------------------------------
    def reassign_class(self, traffic_class, channel_id: int) -> int:
        """Move pending entries of a traffic class to another channel.

        The mechanism behind "dynamically change the assignment of
        networking resources to traffic classes": when an adaptive
        policy rewrites the class → channel mapping, entries already
        waiting migrate too (per-flow arrival order is preserved — a
        flow's entries share one class and therefore one source queue).
        Returns the number of entries moved.
        """
        moved: list[SubmitEntry] = []
        for queue in list(self.waiting.non_empty()):
            if queue.channel_id == channel_id:
                continue
            for entry in queue.pending():
                if entry.traffic_class is traffic_class:
                    queue.remove(entry)
                    moved.append(entry)
        for entry in moved:
            self.waiting.enqueue(entry, channel_id)
        if moved:
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.emit(
                    self.sim.now,
                    f"engine:{self.node_name}",
                    "engine.reassign",
                    traffic_class=traffic_class.value,
                    channel=channel_id,
                    moved=len(moved),
                )
        return len(moved)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def backlog(self) -> int:
        """Pending entries across all waiting lists."""
        return self.waiting.total_pending

    @property
    def rendezvous_in_flight(self) -> int:
        """Rendezvous handshakes awaiting acknowledgement."""
        return len(self._rdv_pending)

    @property
    def hold_timer_armed(self) -> bool:
        """Whether a Nagle hold timer is currently pending."""
        return self._hold_timer is not None

    @property
    def deferred_rendezvous(self) -> int:
        """Incoming rendezvous requests waiting for a posted receive."""
        return sum(len(reqs) for reqs in self._deferred_reqs.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.node_name!r}, "
            f"{len(self.drivers)} driver(s), backlog={self.backlog})"
        )


class OptimizingEngine(CommEngineBase):
    """The paper's engine: NIC-idle-triggered optimization.

    Activation discipline (§3): a busy NIC lets the backlog accumulate;
    the idle transition triggers a full optimization pass.  A submission
    arriving while some NIC is idle is pumped immediately so the engine
    degenerates gracefully to a classic library under light load.
    """

    def _after_submit(self) -> None:
        if any(d.idle for d in self.drivers):
            self._pump("submit")

    def _nic_idle(self, nic) -> None:
        self._pump("idle")
