"""Message-structure constraints on optimizer decisions.

Paper §3: message internal dependencies "are taken into account as
limiting factors — or constraints — by the scheduler while estimating the
value of a given packet reordering operation".  This module centralizes
those rules so every strategy (greedy aggregation, bounded search, …)
enforces exactly the same semantics, and so property tests can check
plans independently of the strategy that produced them.

The rules
---------
1. **Single destination / single channel** — a plan maps to one wire
   packet.
2. **Flow FIFO with LATER skips** — the DATA entries a plan takes from
   one flow must be that flow's oldest pending entries, except that
   ``PackMode.LATER`` entries may be skipped (overtaken).
3. **SAFER isolation** — a SAFER fragment travels alone (no other item
   in the same plan).
4. **Rendezvous isolation** — RDV_READY bulk data is never aggregated
   with anything else.
5. **Capability fit** — an EAGER plan's payload must fit the driver's
   ``max_aggregate_size``; oversized entries must go through rendezvous
   instead.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.plan import TransferPlan
from repro.madeleine.message import PackMode
from repro.madeleine.submit import EntryKind, EntryState, SubmitEntry
from repro.network.wire import PacketKind
from repro.util.errors import ConstraintViolation

__all__ = ["ConstraintChecker"]


class ConstraintChecker:
    """Validates transfer plans against the constraint rules above."""

    def check(self, plan: TransferPlan, channel_pending: Sequence[SubmitEntry]) -> None:
        """Raise :class:`ConstraintViolation` if the plan is illegal.

        ``channel_pending`` is the arrival-ordered pending snapshot of
        the plan's channel *at decision time* (what the strategy saw).
        """
        self._check_single_target(plan)
        self._check_isolation(plan)
        self._check_capabilities(plan)
        self._check_flow_fifo(plan, channel_pending)

    # ------------------------------------------------------------------
    # individual rules
    # ------------------------------------------------------------------
    def _check_single_target(self, plan: TransferPlan) -> None:
        for entry in plan.entries:
            if entry.dst != plan.dst:
                raise ConstraintViolation(
                    f"plan mixes destinations {plan.dst!r} and {entry.dst!r}"
                )

    def _check_isolation(self, plan: TransferPlan) -> None:
        if len(plan.items) == 1:
            return
        for entry in plan.entries:
            if not entry.aggregatable:
                reason = (
                    "SAFER fragment"
                    if entry.fragment is not None and entry.fragment.mode is PackMode.SAFER
                    else "non-aggregatable entry"
                )
                raise ConstraintViolation(
                    f"{reason} #{entry.entry_id} aggregated with "
                    f"{len(plan.items) - 1} other item(s)"
                )

    def _check_capabilities(self, plan: TransferPlan) -> None:
        caps = plan.driver.caps
        if plan.kind is PacketKind.EAGER:
            if plan.payload_bytes > caps.max_aggregate_size:
                raise ConstraintViolation(
                    f"eager plan of {plan.payload_bytes} B exceeds "
                    f"max_aggregate_size={caps.max_aggregate_size}"
                )
            for item in plan.items:
                entry = item.entry
                if (
                    entry.kind is EntryKind.DATA
                    and entry.state is EntryState.WAITING
                    and item.take == entry.remaining
                    and entry.remaining > caps.eager_threshold
                    and caps.supports_rdv
                ):
                    raise ConstraintViolation(
                        f"entry #{entry.entry_id} ({entry.remaining} B) must use "
                        f"rendezvous on {plan.driver.name} "
                        f"(eager_threshold={caps.eager_threshold})"
                    )
        if plan.kind is PacketKind.RDV_DATA:
            for entry in plan.entries:
                if entry.state is not EntryState.RDV_READY:
                    raise ConstraintViolation(
                        f"RDV_DATA plan includes entry #{entry.entry_id} in state "
                        f"{entry.state.value}"
                    )

    def _check_flow_fifo(
        self, plan: TransferPlan, channel_pending: list[SubmitEntry]
    ) -> None:
        taken = {item.entry.entry_id for item in plan.items}
        skipped_flows: set[int] = set()
        for entry in channel_pending:
            if entry.flow is None or entry.kind is not EntryKind.DATA:
                continue  # control entries carry no FIFO obligation
            if entry.state is EntryState.RDV_READY:
                continue  # parked bulk re-entered the queue; exempt from FIFO
            flow_id = entry.flow.flow_id
            if entry.entry_id in taken:
                if flow_id in skipped_flows:
                    raise ConstraintViolation(
                        f"plan takes entry #{entry.entry_id} of flow "
                        f"{entry.flow.name!r} after skipping a non-deferrable "
                        f"earlier entry of the same flow"
                    )
            else:
                if not entry.deferrable:
                    skipped_flows.add(flow_id)
