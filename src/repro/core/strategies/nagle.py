"""The ``nagle`` strategy wrapper: artificial small-backlog delay.

Paper §3: when the NIC never stays busy long enough for a backlog to
accumulate, the scheduler "may artificially delay [packets] for a short
time to increase the potential of interesting aggregations (in a TCP
Nagle's algorithm fashion)".

This wrapper delegates to an inner strategy and *holds* small eager
plans while they are younger than ``nagle_delay`` and smaller than
``nagle_min_bytes``.  Control and rendezvous traffic is never held —
delaying a handshake stalls a bulk transfer end to end.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.plan import Hold, TransferPlan
from repro.core.strategies.aggregation import AggregationStrategy
from repro.core.strategies.base import Strategy, register_strategy
from repro.drivers.base import Driver
from repro.network.wire import PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import CommEngineBase

__all__ = ["NagleStrategy"]


@register_strategy("nagle")
class NagleStrategy(Strategy):
    """Hold small young eager plans hoping for better aggregations."""

    def __init__(
        self,
        inner: Strategy | None = None,
        delay: float | None = None,
        min_bytes: int | None = None,
    ) -> None:
        #: Strategy producing the candidate plan (default: ``aggregate``).
        self.inner = inner if inner is not None else AggregationStrategy()
        #: Overrides of the engine-config values (None: use the config).
        self.delay = delay
        self.min_bytes = min_bytes

    def make_plan(
        self, engine: "CommEngineBase", driver: Driver
    ) -> TransferPlan | Hold | None:
        decision = self.inner.make_plan(engine, driver)
        if not isinstance(decision, TransferPlan):
            return decision
        if decision.kind is not PacketKind.EAGER:
            return decision
        delay = self.delay if self.delay is not None else engine.config.nagle_delay
        if delay <= 0:
            # Holding disabled (the default): skip the byte-count probe
            # entirely — ``payload_bytes`` sums the plan's items, and
            # this wrapper sits on the per-decision hot path.
            return decision
        min_bytes = (
            self.min_bytes if self.min_bytes is not None else engine.config.nagle_min_bytes
        )
        if decision.payload_bytes >= min_bytes:
            return decision
        oldest = min(item.entry.submit_time for item in decision.items)
        deadline = oldest + delay
        if engine.sim.now >= deadline:
            return decision
        return Hold(wake_at=deadline)
