"""The ``aggregate`` strategy: greedy cross-flow aggregation.

The paper's headline optimization (§4: "the aggregation of eager
segments collected from several independent communication flows brings
huge performance gains").  For each idle NIC, walk the highest-priority
non-empty channel queue in arrival order and pack as many eligible
eager entries — *regardless of which flow they belong to* — into one
wire packet as the driver's capabilities allow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.plan import Hold, TransferPlan
from repro.core.strategies._builder import build_from_queue
from repro.core.strategies.base import Strategy, register_strategy
from repro.drivers.base import Driver

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import CommEngineBase

__all__ = ["AggregationStrategy"]


@register_strategy("aggregate")
class AggregationStrategy(Strategy):
    """Greedy capability-bounded cross-flow aggregation."""

    def __init__(self, max_items: int | None = None) -> None:
        #: Optional cap on segments per packet (None: the driver's bound).
        self.max_items = max_items

    def make_plan(
        self, engine: "CommEngineBase", driver: Driver
    ) -> TransferPlan | Hold | None:
        limit = (
            self.max_items
            if self.max_items is not None
            else driver.max_segments_per_packet()
        )
        for queue in engine.queues_for(driver):
            # O(1) emptiness probe; the builder materializes the window
            # itself (array mirror when batching is enabled, object
            # snapshot otherwise).
            if not len(queue):
                continue
            plan = build_from_queue(engine, driver, queue, max_items=limit)
            if plan is not None:
                return plan
        return None
