"""The ``auto`` meta-strategy: dynamic policy selection.

Paper §2: the scheduler may "dynamically change the assignment of
networking resources …, thus **selecting different policies**, as the
needs of the application evolve during the execution."  Beyond channel
assignment (see :mod:`repro.core.adaptive`), the same idea applies to
the packet-building policy itself:

* under a **deep backlog** the plain greedy aggregation is optimal —
  the lookahead pool is already full of opportunities;
* under **sparse arrivals** a Nagle-style hold harvests aggregations
  the backlog alone would miss;
* with **very few** waiting packets and recent holds not paying off,
  just send immediately (the "regular communication library" fallback
  of §3).

``AutoStrategy`` watches the waiting lists and recent activity and
delegates each decision to the matching inner strategy.  Its
``selections`` counter shows which regimes a run visited.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.plan import Hold, TransferPlan
from repro.core.strategies.aggregation import AggregationStrategy
from repro.core.strategies.base import Strategy, register_strategy
from repro.core.strategies.nagle import NagleStrategy
from repro.drivers.base import Driver
from repro.util.errors import ConfigurationError
from repro.util.units import KiB, us

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import CommEngineBase

__all__ = ["AutoStrategy"]


@register_strategy("auto")
class AutoStrategy(Strategy):
    """Backlog-aware selection between aggregation and Nagle holding.

    Parameters
    ----------
    deep_backlog:
        Pending entries at or above this count mean the lookahead pool
        is rich: use plain greedy aggregation, never hold.
    hold_delay / hold_min_bytes:
        Nagle parameters used in the sparse regime (defaults chosen for
        MX-scale latencies; ``EngineConfig`` values are *not* used so
        the meta-strategy is self-contained).
    min_dwell:
        Hysteresis: the backlog test must contradict the current regime
        for this many *consecutive* decisions before the strategy
        switches.  ``1`` (the default) switches immediately — the exact
        pre-hysteresis behaviour; larger values stop an alternating
        workload from thrashing the policy every few decisions.
    """

    def __init__(
        self,
        deep_backlog: int = 8,
        hold_delay: float = 6 * us,
        hold_min_bytes: int = 2 * KiB,
        min_dwell: int = 1,
    ) -> None:
        if deep_backlog < 1:
            raise ConfigurationError(f"deep_backlog must be >= 1, got {deep_backlog}")
        if hold_delay < 0 or hold_min_bytes < 0:
            raise ConfigurationError("hold parameters must be >= 0")
        if min_dwell < 1:
            raise ConfigurationError(f"min_dwell must be >= 1, got {min_dwell}")
        self.deep_backlog = deep_backlog
        self.min_dwell = min_dwell
        self._aggregate = AggregationStrategy()
        self._nagle = NagleStrategy(
            inner=self._aggregate, delay=hold_delay, min_bytes=hold_min_bytes
        )
        #: regime name → times selected (for tests and reporting).
        self.selections: dict[str, int] = {"deep": 0, "sparse": 0}
        self._last_regime = "sparse"
        # Consecutive decisions whose raw backlog label contradicted
        # ``_last_regime`` (drives the min_dwell hysteresis).
        self._contrary = 0

    def _resolve_regime(self, backlog: int) -> tuple[str, int]:
        """The regime this decision serves, plus the new contrary count.

        Pure: callers commit the returned state themselves (the tuner's
        specialized fast path must be able to probe without mutating).
        """
        raw = "deep" if backlog >= self.deep_backlog else "sparse"
        if raw == self._last_regime:
            return raw, 0
        contrary = self._contrary + 1
        if contrary >= self.min_dwell:
            return raw, 0
        return self._last_regime, contrary

    def make_plan(
        self, engine: "CommEngineBase", driver: Driver
    ) -> TransferPlan | Hold | None:
        regime, self._contrary = self._resolve_regime(engine.waiting.total_pending)
        self.selections[regime] += 1
        self._last_regime = regime
        if regime == "deep":
            return self._aggregate.make_plan(engine, driver)
        return self._nagle.make_plan(engine, driver)

    def explain_last(self):
        inner = (
            self._aggregate if self._last_regime == "deep" else self._nagle
        ).explain_last()
        explain = {"regime": self._last_regime}
        if inner:
            explain.update(inner)
        return explain
