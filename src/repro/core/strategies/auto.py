"""The ``auto`` meta-strategy: dynamic policy selection.

Paper §2: the scheduler may "dynamically change the assignment of
networking resources …, thus **selecting different policies**, as the
needs of the application evolve during the execution."  Beyond channel
assignment (see :mod:`repro.core.adaptive`), the same idea applies to
the packet-building policy itself:

* under a **deep backlog** the plain greedy aggregation is optimal —
  the lookahead pool is already full of opportunities;
* under **sparse arrivals** a Nagle-style hold harvests aggregations
  the backlog alone would miss;
* with **very few** waiting packets and recent holds not paying off,
  just send immediately (the "regular communication library" fallback
  of §3).

``AutoStrategy`` watches the waiting lists and recent activity and
delegates each decision to the matching inner strategy.  Its
``selections`` counter shows which regimes a run visited.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.plan import Hold, TransferPlan
from repro.core.strategies.aggregation import AggregationStrategy
from repro.core.strategies.base import Strategy, register_strategy
from repro.core.strategies.nagle import NagleStrategy
from repro.drivers.base import Driver
from repro.util.errors import ConfigurationError
from repro.util.units import KiB, us

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import CommEngineBase

__all__ = ["AutoStrategy"]


@register_strategy("auto")
class AutoStrategy(Strategy):
    """Backlog-aware selection between aggregation and Nagle holding.

    Parameters
    ----------
    deep_backlog:
        Pending entries at or above this count mean the lookahead pool
        is rich: use plain greedy aggregation, never hold.
    hold_delay / hold_min_bytes:
        Nagle parameters used in the sparse regime (defaults chosen for
        MX-scale latencies; ``EngineConfig`` values are *not* used so
        the meta-strategy is self-contained).
    """

    def __init__(
        self,
        deep_backlog: int = 8,
        hold_delay: float = 6 * us,
        hold_min_bytes: int = 2 * KiB,
    ) -> None:
        if deep_backlog < 1:
            raise ConfigurationError(f"deep_backlog must be >= 1, got {deep_backlog}")
        if hold_delay < 0 or hold_min_bytes < 0:
            raise ConfigurationError("hold parameters must be >= 0")
        self.deep_backlog = deep_backlog
        self._aggregate = AggregationStrategy()
        self._nagle = NagleStrategy(
            inner=self._aggregate, delay=hold_delay, min_bytes=hold_min_bytes
        )
        #: regime name → times selected (for tests and reporting).
        self.selections: dict[str, int] = {"deep": 0, "sparse": 0}
        self._last_regime = "sparse"

    def make_plan(
        self, engine: "CommEngineBase", driver: Driver
    ) -> TransferPlan | Hold | None:
        if engine.waiting.total_pending >= self.deep_backlog:
            self.selections["deep"] += 1
            self._last_regime = "deep"
            return self._aggregate.make_plan(engine, driver)
        self.selections["sparse"] += 1
        self._last_regime = "sparse"
        return self._nagle.make_plan(engine, driver)

    def explain_last(self):
        inner = (
            self._aggregate if self._last_regime == "deep" else self._nagle
        ).explain_last()
        explain = {"regime": self._last_regime}
        if inner:
            explain.update(inner)
        return explain
