"""The ``eager`` strategy: one entry per packet, arrival order.

The no-optimization reference point inside the new architecture: every
eligible entry becomes its own wire packet.  Useful as an ablation (what
does NIC-idle triggering buy *without* aggregation?) and as the policy
of last resort the paper mentions ("may send packets as they become
available, as a regular communication library would do").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.plan import Hold, TransferPlan
from repro.core.strategies._builder import build_from_queue
from repro.core.strategies.base import Strategy, register_strategy
from repro.drivers.base import Driver

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import CommEngineBase

__all__ = ["EagerStrategy"]


@register_strategy("eager")
class EagerStrategy(Strategy):
    """Send waiting entries one per packet, in arrival order."""

    def make_plan(
        self, engine: "CommEngineBase", driver: Driver
    ) -> TransferPlan | Hold | None:
        for queue in engine.queues_for(driver):
            plan = build_from_queue(engine, driver, queue, max_items=1)
            if plan is not None:
                return plan
        return None
