"""The extendable strategy database (paper abstract).

Each strategy is one way of turning the waiting-packet backlog into the
next wire packet for an idle NIC.  The registry maps names to strategy
types so scenarios select strategies declaratively and downstream users
can plug in their own ("The database of predefined strategies can be
easily extended"):

>>> from repro.core.strategies import register_strategy, Strategy
>>> @register_strategy("mine")
... class MyStrategy(Strategy):
...     def make_plan(self, engine, driver):
...         ...

Predefined strategies:

* ``eager`` — send entries one per packet in arrival order (the
  no-optimization reference point);
* ``aggregate`` — greedy cross-flow aggregation under driver
  capabilities (the paper's headline optimization);
* ``search`` — bounded best-first search over candidate rearrangements,
  scored by the cost model (§4 future work);
* ``nagle`` — wrapper adding the artificial small-backlog delay (§3);
* ``auto`` — meta-strategy that selects between the above per decision,
  based on the observed backlog (§2: "selecting different policies, as
  the needs of the application evolve").
"""

from repro.core.strategies.aggregation import AggregationStrategy
from repro.core.strategies.auto import AutoStrategy
from repro.core.strategies.base import (
    STRATEGY_TYPES,
    Strategy,
    make_strategy,
    register_strategy,
)
from repro.core.strategies.eager import EagerStrategy
from repro.core.strategies.nagle import NagleStrategy
from repro.core.strategies.search import BoundedSearchStrategy

__all__ = [
    "AggregationStrategy",
    "AutoStrategy",
    "BoundedSearchStrategy",
    "EagerStrategy",
    "NagleStrategy",
    "STRATEGY_TYPES",
    "Strategy",
    "make_strategy",
    "register_strategy",
]
