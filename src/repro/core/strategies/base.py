"""Strategy interface and registry."""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, ClassVar

from repro.core.plan import Hold, TransferPlan
from repro.drivers.base import Driver
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import CommEngineBase

__all__ = ["Strategy", "STRATEGY_TYPES", "register_strategy", "make_strategy"]


class Strategy(abc.ABC):
    """One packet-building policy.

    ``make_plan`` is called by the engine whenever a NIC is idle and
    work may be pending.  It must return

    * a :class:`~repro.core.plan.TransferPlan` for exactly one packet on
      ``driver``,
    * a :class:`~repro.core.plan.Hold` to postpone the decision, or
    * ``None`` when nothing should be sent on this driver now.

    Strategies may *park* oversized entries for rendezvous via
    ``engine.park_for_rendezvous`` while planning; the engine re-plans
    when parking added new control work.
    """

    name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def make_plan(
        self, engine: "CommEngineBase", driver: Driver
    ) -> TransferPlan | Hold | None:
        """Build the next packet for an idle driver (see class docs)."""

    def explain_last(self) -> "dict[str, Any] | None":
        """Explainability fields of the most recent ``make_plan`` call.

        The engine merges the result into the ``optimizer.decide`` trace
        record it emits per dispatch — only when tracing is enabled, so
        implementations may (and should) skip collecting anything while
        ``engine.sim.tracer.enabled`` is false.  The base returns
        ``None``: no strategy-specific fields.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


#: Registry: strategy name → strategy type.
STRATEGY_TYPES: dict[str, type[Strategy]] = {}


def register_strategy(name: str):
    """Class decorator adding a strategy to the database.

    Re-registering a name is an error — the database is a shared
    namespace and silent replacement would make scenarios ambiguous.
    """

    def decorator(cls: type[Strategy]) -> type[Strategy]:
        if name in STRATEGY_TYPES:
            raise ConfigurationError(f"strategy {name!r} already registered")
        if not issubclass(cls, Strategy):
            raise ConfigurationError(f"{cls!r} is not a Strategy subclass")
        STRATEGY_TYPES[name] = cls
        cls.name = name
        return cls

    return decorator


def make_strategy(name: str, **params: Any) -> Strategy:
    """Instantiate a registered strategy by name."""
    try:
        cls = STRATEGY_TYPES[name]
    except KeyError:
        known = ", ".join(sorted(STRATEGY_TYPES))
        raise ConfigurationError(
            f"unknown strategy {name!r} (known: {known})"
        ) from None
    return cls(**params)
