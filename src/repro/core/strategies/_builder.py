"""Shared greedy packet builder used by the predefined strategies.

One walk over a channel queue's pending snapshot, in arrival order,
maintaining per-flow blocking state so the result always satisfies the
:class:`~repro.core.constraints.ConstraintChecker` rules:

* taking an entry after skipping a non-deferrable earlier entry of the
  same flow is forbidden → skipped flows are blocked for the rest of
  the walk (``PackMode.LATER`` entries don't block);
* SAFER fragments and rendezvous bulk travel alone;
* oversized entries are parked for rendezvous (when allowed) instead of
  riding the packet;
* the aggregate payload never exceeds the driver's
  ``max_aggregate_size`` and the item count never exceeds
  ``max_items``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core import kernel
from repro.core.plan import PlanItem, TransferPlan
from repro.core.waiting import ChannelQueue
from repro.drivers.base import Driver
from repro.madeleine.submit import EntryKind, EntryState, SubmitEntry
from repro.network.wire import PacketKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import CommEngineBase

__all__ = ["build_from_queue", "park_oversized"]

_CONTROL_PACKET_KIND = {
    EntryKind.RDV_REQ: PacketKind.RDV_REQ,
    EntryKind.RDV_ACK: PacketKind.RDV_ACK,
}

_BATCHING_ENABLED = kernel.batching_enabled()


def park_oversized(engine: "CommEngineBase", driver: Driver, queue: ChannelQueue) -> int:
    """Park every pending oversized entry of a queue for rendezvous.

    Returns the number of entries parked.  Used by the search strategy
    to make candidate generation side-effect free.
    """
    parked = 0
    for entry in queue.pending_view(engine.config.lookahead_window):
        if (
            entry.kind is EntryKind.DATA
            and entry._state is EntryState.WAITING
            and not entry.meta.get("no_rdv")
            and driver.wants_rendezvous(entry.remaining)
            and driver.nic.reaches(entry.dst)
        ):
            engine.park_for_rendezvous(entry, queue.channel_id)
            parked += 1
    return parked


def build_from_queue(
    engine: "CommEngineBase",
    driver: Driver,
    queue: ChannelQueue,
    *,
    max_items: int,
    same_message_only: bool = False,
    skip_seeds: int = 0,
    allow_park: bool = True,
    protocol_only: bool = False,
    pending: Sequence[SubmitEntry] | None = None,
) -> TransferPlan | None:
    """Greedily build one packet from a channel queue (see module docs).

    ``skip_seeds`` makes the builder pass over the first *n* would-be
    seed entries, producing alternative legal plans for the bounded
    search; ``same_message_only`` restricts aggregation to fragments of
    the seed's message (the legacy Madeleine behaviour);
    ``protocol_only`` ignores plain waiting data and only emits control
    or rendezvous-bulk packets (used while a legacy channel is stalled
    behind a rendezvous); ``pending`` lets a caller evaluating many
    candidates over an unchanged queue reuse one window snapshot
    instead of re-materializing it per candidate.
    """
    config = engine.config
    if (
        pending is None
        and not same_message_only
        and not protocol_only
        and _BATCHING_ENABLED
    ):
        # Array fast path: walk the queue's flat mirror instead of the
        # entry objects.  Only taken when the driver's constant fold is
        # exact (stock driver/link methods); the object walk below stays
        # the reference for every mode the arrays cannot express.
        consts = kernel.constants_for(driver)
        if consts.exact:
            built = kernel.build_eager_arrays(
                queue.pending_arrays(config.lookahead_window),
                consts,
                engine,
                driver,
                queue.channel_id,
                max_items,
                skip_seeds,
                allow_park,
                config.stripe_chunk,
                len(engine.drivers) > 1,
            )
            if built is None:
                return None
            if type(built) is kernel.SeedBuild:
                return built.plan(built.n_items)
            return built
    if pending is None:
        # The lookahead window bounds *optimization* lookahead; a
        # protocol-only pass must reach control/rendezvous entries
        # wherever they sit, or a stalled channel with a deep data
        # backlog deadlocks (the protocol entry that would unblock it
        # hides beyond the window).
        pending = queue.pending_view(None if protocol_only else config.lookahead_window)
    items: list[PlanItem] = []
    taken_bytes = 0
    blocked_flows: set[int] = set()
    dst: str | None = None
    first_message = None
    seeds_skipped = 0
    budget = driver.caps.max_aggregate_size

    def block(entry) -> None:
        if entry.flow is not None and not entry.deferrable:
            blocked_flows.add(entry.flow.flow_id)

    for entry in pending:
        flow_id = entry.flow.flow_id if entry.flow is not None else None
        if flow_id is not None and flow_id in blocked_flows:
            continue
        if not driver.nic.reaches(entry.dst):
            block(entry)
            continue
        if not items and seeds_skipped < skip_seeds:
            seeds_skipped += 1
            block(entry)
            continue

        # Rendezvous bulk: always alone, exempt from FIFO blocking.
        # (``_state`` read directly: the property indirection costs at
        # per-entry walk frequency.)
        if entry._state is EntryState.RDV_READY:
            if items:
                continue
            take = entry.remaining
            if config.stripe_chunk is not None and len(engine.drivers) > 1:
                take = min(take, config.stripe_chunk)
            return TransferPlan(
                driver,
                PacketKind.RDV_DATA,
                entry.dst,
                queue.channel_id,
                [PlanItem(entry, take)],
            )

        # Engine-generated control traffic: always alone, no flow.
        if entry.is_control:
            if items:
                continue
            return TransferPlan(
                driver,
                _CONTROL_PACKET_KIND[entry.kind],
                entry.dst,
                queue.channel_id,
                [PlanItem(entry, entry.remaining)],
                meta=dict(entry.meta),
            )

        if protocol_only:
            # Plain waiting data stays queued (stalled legacy channel);
            # it is not a reordering, so it must not block later picks.
            continue

        # Oversized data must negotiate a rendezvous first — unless the
        # handshake already timed out (``no_rdv``): then the entry is
        # chunked into eager packets below, like on a rendezvous-less
        # driver.
        if driver.wants_rendezvous(entry.remaining) and not entry.meta.get("no_rdv"):
            if allow_park:
                # Parked out of band (removed from the queue); later
                # same-flow eager entries may proceed — the documented
                # FIFO relaxation for rendezvous.
                engine.park_for_rendezvous(entry, queue.channel_id)
            else:
                # Not parked: it stays queued, so it blocks its flow
                # like any other skipped non-deferrable entry.
                block(entry)
            continue

        # SAFER fragments travel alone.
        if not entry.aggregatable:
            if items:
                block(entry)
                continue
            return TransferPlan(
                driver,
                PacketKind.EAGER,
                entry.dst,
                queue.channel_id,
                [PlanItem(entry, entry.remaining)],
            )

        if dst is None:
            dst = entry.dst
            first_message = entry.message
        elif entry.dst != dst or (
            same_message_only and entry.message is not first_message
        ):
            block(entry)
            continue

        space = budget - taken_bytes
        if entry.remaining <= space:
            take = entry.remaining
        elif not items:
            # Chunk an over-budget entry (drivers without rendezvous).
            take = min(entry.remaining, budget)
        else:
            block(entry)
            continue
        items.append(PlanItem(entry, take))
        taken_bytes += take
        if len(items) >= max_items or taken_bytes >= budget:
            break

    if items:
        assert dst is not None
        return TransferPlan(driver, PacketKind.EAGER, dst, queue.channel_id, items)
    return None
