"""The ``search`` strategy: bounded rearrangement search.

The paper's §4 announces the need "to bound the number of data
rearrangements the optimizer has to evaluate so as to determine the best
combination of optimization techniques".  This strategy makes the bound
explicit: it evaluates up to ``search_budget`` candidate plans (greedy
builds started from different seed entries of different channel queues,
with different aggregation widths), scores each with the
:class:`~repro.core.cost.CostModel`, and dispatches the best.

``search_budget = 1`` degenerates to the plain greedy aggregation plan;
the E5 experiment sweeps the budget to show the gain-vs-cost plateau.

Hot-path structure (one decision stays O(window), not O(backlog)):

* the pending snapshot is materialized **once per queue** and shared by
  every candidate build over it;
* per seed, only the **widest** candidate is built; narrower widths are
  prefixes of it (a greedy walk stopped at *k* items takes exactly the
  first *k* items of the wider walk, and stopping early cannot change
  any earlier take/skip decision), so two of three builds disappear;
* scores are memoized per ``(driver, channel, queue version, seed,
  item count)`` — distinct widths that truncate to the same plan (a
  control packet, a lone SAFER fragment, a two-entry queue) are scored
  once.  The queue version stamp keys the cache, so any queue mutation
  invalidates it for free; the cache itself is dropped whenever
  simulated time moves (scores depend on waiting-time staleness).

Budget accounting is unchanged from the naive enumeration — each
(seed, width) candidate costs one evaluation whether it was built or
derived — so a given budget explores exactly the same candidates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.plan import Hold, TransferPlan
from repro.core.strategies._builder import build_from_queue, park_oversized
from repro.core.strategies.base import Strategy, register_strategy
from repro.drivers.base import Driver

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import CommEngineBase

__all__ = ["BoundedSearchStrategy"]


@register_strategy("search")
class BoundedSearchStrategy(Strategy):
    """Best-of-K legal rearrangements, scored by the cost model."""

    def __init__(self, budget: int | None = None) -> None:
        #: Optional override of ``EngineConfig.search_budget``.
        self.budget = budget
        #: Candidates evaluated over the strategy's lifetime (the
        #: kernel benchmarks and budget-accounting tests read this).
        self.candidates_evaluated = 0
        #: Candidates evaluated by the most recent ``make_plan`` call.
        self.last_evaluated = 0
        # (driver id, channel, queue version, seed, items) -> (score, plan),
        # valid for one instant of simulated time.
        self._score_cache: dict[tuple, tuple[float, TransferPlan]] = {}
        self._cache_now: float | None = None
        self._last_explain: dict | None = None

    def make_plan(
        self, engine: "CommEngineBase", driver: Driver
    ) -> TransferPlan | Hold | None:
        budget = self.budget if self.budget is not None else engine.config.search_budget
        queues = engine.queues_for(driver)
        # Rendezvous parking is a protocol action, not a rearrangement;
        # do it once up front so candidate generation has no side effects.
        for queue in queues:
            park_oversized(engine, driver, queue)

        now = engine.sim.now
        if now != self._cache_now:
            self._score_cache.clear()
            self._cache_now = now
        cache = self._score_cache
        cost = engine.cost
        window_limit = engine.config.lookahead_window

        best: TransferPlan | None = None
        best_score = float("-inf")
        best_meta: tuple | None = None
        widest_seen = 0
        evaluated = 0
        out_of_budget = False
        # Explainability is collected only while a trace sink is live;
        # with the NullTracer the extra work is two dead branches.
        explain = engine.sim.tracer.enabled
        full_width = driver.max_segments_per_packet()
        widths = self._widths(full_width)
        try:
            for queue in queues:
                # One snapshot per queue, shared by every candidate build.
                pending = queue.pending_view(window_limit)
                version = queue.version
                for seed in range(len(pending)):
                    if evaluated >= budget:
                        out_of_budget = True
                        break
                    base = build_from_queue(
                        engine,
                        driver,
                        queue,
                        max_items=full_width,
                        skip_seeds=seed,
                        allow_park=False,
                        pending=pending,
                    )
                    evaluated += 1
                    if base is None:
                        # Nothing is dispatchable even with every earlier
                        # seed blocked; deeper seeds only block more, so
                        # this whole queue is exhausted — move to the next
                        # queue instead of burning budget on impossible
                        # seeds.
                        break
                    base_items = len(base.items)
                    if explain and base_items > widest_seen:
                        widest_seen = base_items
                    first = True
                    for width in widths:
                        if not first:
                            if evaluated >= budget:
                                out_of_budget = True
                                break
                            evaluated += 1
                        first = False
                        n_items = base_items if width >= base_items else width
                        key = (id(driver), queue.channel_id, version, seed, n_items)
                        cached = cache.get(key)
                        if cached is None:
                            if n_items == base_items:
                                candidate = base
                            else:
                                candidate = TransferPlan(
                                    base.driver,
                                    base.kind,
                                    base.dst,
                                    base.channel_id,
                                    base.items[:n_items],
                                )
                            cached = (cost.score(candidate, now), candidate)
                            cache[key] = cached
                        score, candidate = cached
                        if score > best_score:
                            best, best_score = candidate, score
                            if explain:
                                best_meta = (queue.channel_id, seed, n_items)
                    if out_of_budget:
                        break
                if out_of_budget:
                    break
            return best
        finally:
            self.last_evaluated = evaluated
            self.candidates_evaluated += evaluated
            if explain:
                self._last_explain = {
                    "candidates": evaluated,
                    "budget": budget,
                    "truncation": "budget" if out_of_budget else "exhausted",
                    "widest_items": widest_seen,
                    "best_score": best_score if best is not None else None,
                    "seed_channel": best_meta[0] if best_meta else None,
                    "seed": best_meta[1] if best_meta else None,
                }
            else:
                self._last_explain = None

    def explain_last(self) -> dict | None:
        return self._last_explain

    @staticmethod
    def _widths(full_width: int) -> tuple[int, ...]:
        """Aggregation widths to try per seed: full, half, single."""
        widths = {full_width, max(full_width // 2, 1), 1}
        return tuple(sorted(widths, reverse=True))
