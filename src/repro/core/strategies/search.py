"""The ``search`` strategy: bounded rearrangement search.

The paper's §4 announces the need "to bound the number of data
rearrangements the optimizer has to evaluate so as to determine the best
combination of optimization techniques".  This strategy makes the bound
explicit: it evaluates up to ``search_budget`` candidate plans (greedy
builds started from different seed entries of different channel queues,
with different aggregation widths), scores each with the
:class:`~repro.core.cost.CostModel`, and dispatches the best.

``search_budget = 1`` degenerates to the plain greedy aggregation plan;
the E5 experiment sweeps the budget to show the gain-vs-cost plateau.

Hot-path structure (one decision stays O(window), not O(backlog)):

* candidates are generated and scored over the queue's **flat-array
  mirror** (:meth:`~repro.core.waiting.ChannelQueue.pending_arrays`)
  with the driver's cost constants folded out of the loop — see
  :mod:`repro.core.kernel`.  A candidate only becomes a
  :class:`~repro.core.plan.TransferPlan` object if it *wins*; losing
  (seed, width) combinations are scored from prefix aggregates and
  discarded as plain floats;
* per seed, only the **widest** candidate is built; narrower widths are
  prefixes of it (a greedy walk stopped at *k* items takes exactly the
  first *k* items of the wider walk, and stopping early cannot change
  any earlier take/skip decision), so two of three builds disappear;
* scores are memoized per ``(driver, channel, queue version, seed,
  item count)`` — distinct widths that truncate to the same plan (a
  control packet, a lone SAFER fragment, a two-entry queue) are scored
  once.  The queue version stamp keys the cache, so any queue mutation
  invalidates it for free; the cache itself is dropped whenever
  simulated time moves (scores depend on waiting-time staleness).

Budget accounting is unchanged from the naive enumeration — each
(seed, width) candidate costs one evaluation whether it was built,
derived, or score-only — so a given budget explores exactly the same
candidates, and the packed scorer reproduces the scalar model's floats
bit for bit, so the same candidate wins.  ``REPRO_KERNEL=reference``
(or a driver/cost subclass the constant fold cannot represent) selects
:meth:`BoundedSearchStrategy._make_plan_reference`, the pre-batching
object walk kept as the semantic oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import kernel
from repro.core.cost import CostModel
from repro.core.plan import Hold, TransferPlan
from repro.core.strategies._builder import build_from_queue, park_oversized
from repro.core.strategies.base import Strategy, register_strategy
from repro.drivers.base import Driver

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import CommEngineBase

__all__ = ["BoundedSearchStrategy"]

_BATCHING_ENABLED = kernel.batching_enabled()


@register_strategy("search")
class BoundedSearchStrategy(Strategy):
    """Best-of-K legal rearrangements, scored by the cost model."""

    def __init__(self, budget: int | None = None) -> None:
        #: Optional override of ``EngineConfig.search_budget``.
        self.budget = budget
        #: Candidates evaluated over the strategy's lifetime (the
        #: kernel benchmarks and budget-accounting tests read this).
        self.candidates_evaluated = 0
        #: Candidates evaluated by the most recent ``make_plan`` call.
        self.last_evaluated = 0
        # (driver id, channel, queue version, seed, items) -> (score, plan),
        # valid for one instant of simulated time.  ``plan`` is None for
        # batched candidates that were scored without being materialized;
        # the winning candidate's plan is always stored (replays return
        # the identical object).
        self._score_cache: dict[tuple, tuple[float, TransferPlan | None]] = {}
        self._cache_now: float | None = None
        self._last_explain: dict | None = None

    def make_plan(
        self, engine: "CommEngineBase", driver: Driver
    ) -> TransferPlan | Hold | None:
        budget = self.budget if self.budget is not None else engine.config.search_budget
        queues = engine.queues_for(driver)
        if (
            _BATCHING_ENABLED
            and type(engine.cost) is CostModel
            and kernel.constants_for(driver).exact
        ):
            return self._make_plan_batched(engine, driver, budget, queues)
        return self._make_plan_reference(engine, driver, budget, queues)

    # ------------------------------------------------------------------
    # batched kernel path (default)
    # ------------------------------------------------------------------
    def _make_plan_batched(
        self, engine: "CommEngineBase", driver: Driver, budget: int, queues
    ) -> TransferPlan | None:
        consts = kernel.constants_for(driver)
        config = engine.config
        window_limit = config.lookahead_window
        stripe_chunk = config.stripe_chunk
        multirail = len(engine.drivers) > 1
        cost = engine.cost
        driver_key = id(driver)

        # Rendezvous parking is a protocol action, not a rearrangement;
        # do it once up front so candidate generation has no side
        # effects.  The sweep runs over the array mirror: cheap integer
        # compares instead of per-entry capability calls.
        for queue in queues:
            arrays = queue.pending_arrays(window_limit)
            if arrays.n:
                for i in kernel.oversized_waiting_indices(arrays, consts):
                    engine.park_for_rendezvous(arrays.entries[i], queue.channel_id)

        now = engine.sim.now
        if now != self._cache_now:
            self._score_cache.clear()
            self._cache_now = now
        cache = self._score_cache

        best_plan: TransferPlan | None = None
        best_score = float("-inf")
        best_key: tuple | None = None
        best_build = None  # the winning SeedBuild awaiting materialization
        best_probe: tuple | None = None  # (arrays, channel, seed) probe winner
        best_n = 0
        best_meta: tuple | None = None
        widest_seen = 0
        evaluated = 0
        out_of_budget = False
        explain = engine.sim.tracer.enabled
        full_width = consts.max_items_cap
        widths = self._widths(full_width)
        SeedBuild = kernel.SeedBuild
        score_packed = cost.score_packed
        try:
            for queue in queues:
                # One array mirror per queue (rebuilt only if the park
                # sweep above mutated it), shared by every seed build.
                arrays = queue.pending_arrays(window_limit)
                version = queue.version
                channel_id = queue.channel_id

                # Uniform-window queues (the loaded steady state) are
                # probed in one pass: per-seed aggregates straight off
                # the arrays, no builder call and no plan object per
                # candidate.  Budget accounting is identical to the
                # per-seed walk below — the equivalence tests hold the
                # two together.
                stats = kernel.probe_uniform_seeds(
                    arrays, consts, full_width, widths, budget - evaluated
                )
                if stats is not None:
                    for seed, (base_items, payload, oldest, snaps) in enumerate(
                        stats
                    ):
                        if evaluated >= budget:
                            out_of_budget = True
                            break
                        evaluated += 1  # the seed's base build
                        if explain and base_items > widest_seen:
                            widest_seen = base_items
                        first = True
                        for width in widths:
                            if not first:
                                if evaluated >= budget:
                                    out_of_budget = True
                                    break
                                evaluated += 1
                            first = False
                            n_items = base_items if width >= base_items else width
                            key = (driver_key, channel_id, version, seed, n_items)
                            cached = cache.get(key)
                            if cached is None:
                                if n_items == base_items:
                                    p, o = payload, oldest
                                else:
                                    p = -1
                                    o = 0.0
                                    for cut_n, cut_p, cut_o in snaps:
                                        if cut_n == n_items:
                                            p, o = cut_p, cut_o
                                            break
                                    assert p >= 0, "probe width cut missing"
                                cached = (
                                    score_packed(consts, n_items, p, o, now),
                                    None,
                                )
                                cache[key] = cached
                            score, plan = cached
                            if score > best_score:
                                best_score = score
                                best_plan = plan
                                best_key = key
                                best_build = None
                                best_probe = (arrays, channel_id, seed)
                                best_n = n_items
                                if explain:
                                    best_meta = (channel_id, seed, n_items)
                        if out_of_budget:
                            break
                    else:
                        # Seeds exhausted mid-queue: the per-seed walk
                        # would try one deeper seed, find nothing
                        # dispatchable, and charge that probe.
                        if len(stats) < arrays.n:
                            if evaluated >= budget:
                                out_of_budget = True
                            else:
                                evaluated += 1
                    if out_of_budget:
                        break
                    continue

                for seed in range(arrays.n):
                    if evaluated >= budget:
                        out_of_budget = True
                        break
                    base = kernel.build_eager_arrays(
                        arrays,
                        consts,
                        engine,
                        driver,
                        channel_id,
                        full_width,
                        seed,
                        False,  # allow_park: parking happened up front
                        stripe_chunk,
                        multirail,
                    )
                    evaluated += 1
                    if base is None:
                        # Nothing is dispatchable even with every earlier
                        # seed blocked; deeper seeds only block more, so
                        # this whole queue is exhausted — move to the next
                        # queue instead of burning budget on impossible
                        # seeds.
                        break
                    is_prefix_family = type(base) is SeedBuild
                    base_items = (
                        base.n_items if is_prefix_family else len(base.items)
                    )
                    if explain and base_items > widest_seen:
                        widest_seen = base_items
                    first = True
                    for width in widths:
                        if not first:
                            if evaluated >= budget:
                                out_of_budget = True
                                break
                            evaluated += 1
                        first = False
                        n_items = base_items if width >= base_items else width
                        key = (driver_key, channel_id, version, seed, n_items)
                        cached = cache.get(key)
                        if cached is None:
                            if is_prefix_family:
                                # Score the prefix from its aggregates;
                                # no plan object unless it wins.
                                cached = (
                                    cost.score_packed(
                                        consts,
                                        n_items,
                                        base.payload_prefix[n_items - 1],
                                        base.oldest_prefix[n_items - 1],
                                        now,
                                    ),
                                    None,
                                )
                            else:
                                # Control / rendezvous / lone-SAFER plans
                                # come out of the builder materialized.
                                cached = (cost.score(base, now), base)
                            cache[key] = cached
                        score, plan = cached
                        if score > best_score:
                            best_score = score
                            best_plan = plan
                            best_key = key
                            best_build = base if is_prefix_family else None
                            best_probe = None
                            best_n = n_items
                            if explain:
                                best_meta = (channel_id, seed, n_items)
                    if out_of_budget:
                        break
                if out_of_budget:
                    break
            if best_key is None:
                return None
            if best_plan is None:
                # Materialize the winner (exactly one plan per decision)
                # and store it back so an unchanged-queue replay returns
                # this very object.
                if best_build is None:
                    # Probe winner: rebuild its seed over the same (still
                    # coherent) arrays — deterministic, so the prefix is
                    # exactly what the probe scored.
                    assert best_probe is not None
                    p_arrays, p_channel, p_seed = best_probe
                    best_build = kernel.build_eager_arrays(
                        p_arrays,
                        consts,
                        engine,
                        driver,
                        p_channel,
                        full_width,
                        p_seed,
                        False,
                        stripe_chunk,
                        multirail,
                    )
                    assert type(best_build) is SeedBuild
                best_plan = best_build.plan(best_n)
                cache[best_key] = (best_score, best_plan)
            return best_plan
        finally:
            self.last_evaluated = evaluated
            self.candidates_evaluated += evaluated
            if explain:
                self._last_explain = {
                    "candidates": evaluated,
                    "budget": budget,
                    "truncation": "budget" if out_of_budget else "exhausted",
                    "widest_items": widest_seen,
                    "best_score": best_score if best_key is not None else None,
                    "seed_channel": best_meta[0] if best_meta else None,
                    "seed": best_meta[1] if best_meta else None,
                }
            else:
                self._last_explain = None

    # ------------------------------------------------------------------
    # scalar reference path (REPRO_KERNEL=reference, exotic subclasses)
    # ------------------------------------------------------------------
    def _make_plan_reference(
        self, engine: "CommEngineBase", driver: Driver, budget: int, queues
    ) -> TransferPlan | None:
        # Rendezvous parking is a protocol action, not a rearrangement;
        # do it once up front so candidate generation has no side effects.
        for queue in queues:
            park_oversized(engine, driver, queue)

        now = engine.sim.now
        if now != self._cache_now:
            self._score_cache.clear()
            self._cache_now = now
        cache = self._score_cache
        cost = engine.cost
        window_limit = engine.config.lookahead_window

        best: TransferPlan | None = None
        best_score = float("-inf")
        best_meta: tuple | None = None
        widest_seen = 0
        evaluated = 0
        out_of_budget = False
        # Explainability is collected only while a trace sink is live;
        # with the NullTracer the extra work is two dead branches.
        explain = engine.sim.tracer.enabled
        full_width = driver.max_segments_per_packet()
        widths = self._widths(full_width)
        try:
            for queue in queues:
                # One snapshot per queue, shared by every candidate build.
                pending = queue.pending_view(window_limit)
                version = queue.version
                for seed in range(len(pending)):
                    if evaluated >= budget:
                        out_of_budget = True
                        break
                    base = build_from_queue(
                        engine,
                        driver,
                        queue,
                        max_items=full_width,
                        skip_seeds=seed,
                        allow_park=False,
                        pending=pending,
                    )
                    evaluated += 1
                    if base is None:
                        # Nothing is dispatchable even with every earlier
                        # seed blocked; deeper seeds only block more, so
                        # this whole queue is exhausted — move to the next
                        # queue instead of burning budget on impossible
                        # seeds.
                        break
                    base_items = len(base.items)
                    if explain and base_items > widest_seen:
                        widest_seen = base_items
                    first = True
                    for width in widths:
                        if not first:
                            if evaluated >= budget:
                                out_of_budget = True
                                break
                            evaluated += 1
                        first = False
                        n_items = base_items if width >= base_items else width
                        key = (id(driver), queue.channel_id, version, seed, n_items)
                        cached = cache.get(key)
                        if cached is None:
                            if n_items == base_items:
                                candidate = base
                            else:
                                candidate = TransferPlan(
                                    base.driver,
                                    base.kind,
                                    base.dst,
                                    base.channel_id,
                                    base.items[:n_items],
                                )
                            cached = (cost.score(candidate, now), candidate)
                            cache[key] = cached
                        score, candidate = cached
                        if score > best_score:
                            best, best_score = candidate, score
                            if explain:
                                best_meta = (queue.channel_id, seed, n_items)
                    if out_of_budget:
                        break
                if out_of_budget:
                    break
            return best
        finally:
            self.last_evaluated = evaluated
            self.candidates_evaluated += evaluated
            if explain:
                self._last_explain = {
                    "candidates": evaluated,
                    "budget": budget,
                    "truncation": "budget" if out_of_budget else "exhausted",
                    "widest_items": widest_seen,
                    "best_score": best_score if best is not None else None,
                    "seed_channel": best_meta[0] if best_meta else None,
                    "seed": best_meta[1] if best_meta else None,
                }
            else:
                self._last_explain = None

    def explain_last(self) -> dict | None:
        return self._last_explain

    @staticmethod
    def _widths(full_width: int) -> tuple[int, ...]:
        """Aggregation widths to try per seed: full, half, single."""
        widths = {full_width, max(full_width // 2, 1), 1}
        return tuple(sorted(widths, reverse=True))
