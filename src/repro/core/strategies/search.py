"""The ``search`` strategy: bounded rearrangement search.

The paper's §4 announces the need "to bound the number of data
rearrangements the optimizer has to evaluate so as to determine the best
combination of optimization techniques".  This strategy makes the bound
explicit: it generates up to ``search_budget`` *legal* candidate plans
(greedy builds started from different seed entries of different channel
queues, with different aggregation widths), scores each with the
:class:`~repro.core.cost.CostModel`, and dispatches the best.

``search_budget = 1`` degenerates to the plain greedy aggregation plan;
the E5 experiment sweeps the budget to show the gain-vs-cost plateau.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.plan import Hold, TransferPlan
from repro.core.strategies._builder import build_from_queue, park_oversized
from repro.core.strategies.base import Strategy, register_strategy
from repro.drivers.base import Driver

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import CommEngineBase

__all__ = ["BoundedSearchStrategy"]


@register_strategy("search")
class BoundedSearchStrategy(Strategy):
    """Best-of-K legal rearrangements, scored by the cost model."""

    def __init__(self, budget: int | None = None) -> None:
        #: Optional override of ``EngineConfig.search_budget``.
        self.budget = budget

    def make_plan(
        self, engine: "CommEngineBase", driver: Driver
    ) -> TransferPlan | Hold | None:
        budget = self.budget if self.budget is not None else engine.config.search_budget
        queues = engine.queues_for(driver)
        # Rendezvous parking is a protocol action, not a rearrangement;
        # do it once up front so candidate generation has no side effects.
        for queue in queues:
            park_oversized(engine, driver, queue)

        best: TransferPlan | None = None
        best_score = float("-inf")
        evaluated = 0
        full_width = driver.max_segments_per_packet()
        for queue in queues:
            window = min(engine.config.lookahead_window, len(queue.pending(engine.config.lookahead_window)))
            for seed in range(window):
                for width in self._widths(full_width):
                    if evaluated >= budget:
                        return best if best is not None else None
                    plan = build_from_queue(
                        engine,
                        driver,
                        queue,
                        max_items=width,
                        skip_seeds=seed,
                        allow_park=False,
                    )
                    evaluated += 1
                    if plan is None:
                        break  # deeper seeds in this queue yield nothing either
                    score = engine.cost.score(plan, engine.sim.now)
                    if score > best_score:
                        best, best_score = plan, score
        return best

    @staticmethod
    def _widths(full_width: int) -> tuple[int, ...]:
        """Aggregation widths to try per seed: full, half, single."""
        widths = {full_width, max(full_width // 2, 1), 1}
        return tuple(sorted(widths, reverse=True))
