"""Engine configuration knobs.

These are the tunables the paper discusses or announces as future work:
the lookahead window size (§4), the Nagle-style artificial delay (§3),
the bound on rearrangement evaluations (§4), multirail striping
granularity (§2), and rail binding (pooled scheduling vs static
channel→NIC partitioning).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError
from repro.util.units import KiB

__all__ = ["EngineConfig", "RAIL_BINDINGS"]

#: Valid values of :attr:`EngineConfig.rail_binding`.
RAIL_BINDINGS = ("pooled", "static")


@dataclass(slots=True)
class EngineConfig:
    """Tunable parameters of an optimizing engine.

    Parameters
    ----------
    lookahead_window:
        Maximum waiting packets examined per scheduling decision (per
        channel).  ``1`` degenerates to send-in-arrival-order.
    nagle_delay:
        Artificial delay (s) a small backlog may be held for, hoping for
        a better aggregation (§3, "in a TCP Nagle's algorithm fashion").
        ``0`` disables holding.
    nagle_min_bytes:
        A backlog at or above this many bytes is never held.
    stripe_chunk:
        Slice size for striping rendezvous bulk data across idle rails;
        ``None`` disables striping (each bulk transfer rides one NIC).
    search_budget:
        Maximum candidate rearrangements the bounded-search strategy
        evaluates per decision (§4 future work).
    rail_binding:
        ``"pooled"`` — any idle NIC may serve any channel (the paper's
        pooled multiplexing units); ``"static"`` — channel *i* is bound
        to NIC ``i mod n`` (the naive comparator in E6).
    rdv_requires_recv:
        When true, a rendezvous request is only acknowledged once the
        receiving application has posted a matching receive
        (``MadAPI.post_receive``) — the flow-controlled Madeleine
        semantics.  Default false: the receiver acknowledges after its
        pinning delay (anonymous pre-posted buffers).
    rdv_timeout:
        Seconds a parked rendezvous entry waits for its acknowledgement
        before abandoning the handshake and falling back to eager/split
        transmission (graceful degradation on a faulty fabric).
        ``None`` (default) waits forever — the lossless-network
        behaviour.
    validate_plans:
        Run the :class:`~repro.core.constraints.ConstraintChecker` on
        every dispatched plan (cheap; keep on outside hot benchmarks).
    """

    lookahead_window: int = 16
    nagle_delay: float = 0.0
    nagle_min_bytes: int = 0
    stripe_chunk: int | None = 64 * KiB
    search_budget: int = 32
    rail_binding: str = "pooled"
    rdv_requires_recv: bool = False
    rdv_timeout: float | None = None
    validate_plans: bool = True

    def __post_init__(self) -> None:
        if self.lookahead_window < 1:
            raise ConfigurationError(
                f"lookahead_window must be >= 1, got {self.lookahead_window}"
            )
        if self.nagle_delay < 0:
            raise ConfigurationError(f"nagle_delay must be >= 0, got {self.nagle_delay}")
        if self.nagle_min_bytes < 0:
            raise ConfigurationError(
                f"nagle_min_bytes must be >= 0, got {self.nagle_min_bytes}"
            )
        if self.stripe_chunk is not None and self.stripe_chunk < 1 * KiB:
            raise ConfigurationError(
                f"stripe_chunk must be >= 1 KiB or None, got {self.stripe_chunk}"
            )
        if self.search_budget < 1:
            raise ConfigurationError(
                f"search_budget must be >= 1, got {self.search_budget}"
            )
        if self.rail_binding not in RAIL_BINDINGS:
            raise ConfigurationError(
                f"rail_binding must be one of {RAIL_BINDINGS}, got {self.rail_binding!r}"
            )
        if self.rdv_timeout is not None and self.rdv_timeout <= 0:
            raise ConfigurationError(
                f"rdv_timeout must be > 0 or None, got {self.rdv_timeout}"
            )
