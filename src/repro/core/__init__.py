"""The Madeleine optimization engine — the paper's contribution.

This package implements the middle layer of Figure 1: the
optimizer–scheduler that sits between the collect layer (waiting packet
lists fed by the packing API) and the transfer layer (drivers/NICs).

Key pieces:

* :mod:`~repro.core.engine` — :class:`OptimizingEngine`: NIC-idle-
  triggered activation, backlog accumulation, dispatch loop;
* :mod:`~repro.core.waiting` — per-channel waiting packet lists with
  flow-frontier eligibility;
* :mod:`~repro.core.strategies` — the extendable strategy database
  (aggregation, bounded reordering search, multirail striping, Nagle
  delay, …);
* :mod:`~repro.core.channels` — channel assignment policies (traffic
  classes vs one-to-one fallback, paper §2);
* :mod:`~repro.core.constraints` — the message-structure constraints the
  optimizer must respect (paper §3);
* :mod:`~repro.core.cost` — capability-parameterized plan cost/score
  model.
"""

from repro.core.adaptive import AdaptiveChannels
from repro.core.channels import (
    ChannelPolicy,
    OneToOneChannels,
    PooledChannels,
    WeightedChannels,
)
from repro.core.config import EngineConfig
from repro.core.constraints import ConstraintChecker
from repro.core.cost import CostModel
from repro.core.engine import CommEngineBase, EngineStats, OptimizingEngine
from repro.core.plan import Hold, PlanItem, TransferPlan
from repro.core.strategies import (
    AggregationStrategy,
    AutoStrategy,
    BoundedSearchStrategy,
    EagerStrategy,
    NagleStrategy,
    STRATEGY_TYPES,
    Strategy,
    make_strategy,
    register_strategy,
)
from repro.core.waiting import ChannelQueue, WaitingLists

__all__ = [
    "AdaptiveChannels",
    "AggregationStrategy",
    "AutoStrategy",
    "BoundedSearchStrategy",
    "ChannelPolicy",
    "ChannelQueue",
    "CommEngineBase",
    "ConstraintChecker",
    "CostModel",
    "EagerStrategy",
    "EngineConfig",
    "EngineStats",
    "Hold",
    "NagleStrategy",
    "OneToOneChannels",
    "OptimizingEngine",
    "PlanItem",
    "PooledChannels",
    "STRATEGY_TYPES",
    "Strategy",
    "TransferPlan",
    "WaitingLists",
    "WeightedChannels",
    "make_strategy",
    "register_strategy",
]
