"""Deterministic random-number streams.

Every stochastic component of a scenario (arrival processes, message-size
distributions, load-balancing tie breaks, …) draws from its own named
:class:`RngStream`.  All streams are derived from a single session seed
through :class:`SeedSequenceRegistry`, so

* a whole experiment is reproducible from one integer, and
* adding a new random component does not perturb the draws of existing
  ones (streams are keyed by name, not by creation order).
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngStream", "SeedSequenceRegistry"]


class RngStream:
    """A named wrapper around :class:`numpy.random.Generator`.

    Exposes the handful of draw primitives the library needs, with
    explicit, validated parameters, so workload code stays readable.
    """

    __slots__ = ("name", "_gen")

    def __init__(self, name: str, generator: np.random.Generator) -> None:
        self.name = name
        self._gen = generator

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream({self.name!r})"

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator, for bulk/vectorised draws."""
        return self._gen

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """A single uniform draw in ``[low, high)``."""
        return float(self._gen.uniform(low, high))

    def exponential(self, mean: float) -> float:
        """A single exponential draw with the given mean (> 0)."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be > 0, got {mean}")
        return float(self._gen.exponential(mean))

    def integers(self, low: int, high: int) -> int:
        """A single integer draw in ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError(f"empty integer range [{low}, {high}]")
        return int(self._gen.integers(low, high + 1))

    def choice(self, items):
        """Pick one element of a non-empty sequence uniformly."""
        seq = list(items)
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self._gen.integers(0, len(seq)))]

    def lognormal_size(self, median: float, sigma: float, lo: int, hi: int) -> int:
        """A lognormal byte-size draw clamped to ``[lo, hi]``.

        Used for realistic heavy-tailed middleware payload sizes.
        """
        if median <= 0 or sigma < 0:
            raise ValueError("median must be > 0 and sigma >= 0")
        if hi < lo:
            raise ValueError(f"empty size range [{lo}, {hi}]")
        value = float(self._gen.lognormal(mean=np.log(median), sigma=sigma))
        return int(min(max(value, lo), hi))

    def shuffle(self, items: list) -> None:
        """Shuffle a list in place."""
        self._gen.shuffle(items)


class SeedSequenceRegistry:
    """Derives independent, name-keyed :class:`RngStream` objects.

    The child seed for a stream is ``(session_seed, crc32(name))``, which
    is stable across runs and across unrelated code changes.
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = int(seed)
        self._streams: dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* stream object
        (state is shared), so a component can re-acquire its stream
        without resetting it.
        """
        if name not in self._streams:
            child = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(zlib.crc32(name.encode("utf-8")),)
            )
            self._streams[name] = RngStream(name, np.random.Generator(np.random.PCG64(child)))
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)
