"""Timeline reconstruction from trace events.

Turns a :class:`~repro.util.tracing.TraceRecorder` into per-component
busy intervals (NIC send → idle pairs) and renders them as an ASCII
Gantt chart — the executable counterpart of Figure 1's "keep the NICs
adequately busy" claim, and a handy debugging view.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError
from repro.util.tracing import TraceRecorder
from repro.util.units import format_time

__all__ = ["Interval", "Timeline"]


@dataclass(frozen=True, slots=True)
class Interval:
    """One busy interval on a component's lane."""

    start: float
    end: float
    label: str

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ConfigurationError(
                f"interval ends ({self.end}) before it starts ({self.start})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Per-lane busy intervals over a common time axis."""

    def __init__(self) -> None:
        self._lanes: dict[str, list[Interval]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, lane: str, interval: Interval) -> None:
        """Append one interval to a lane (append order = time order)."""
        intervals = self._lanes.setdefault(lane, [])
        if intervals and interval.start < intervals[-1].end - 1e-12:
            raise ConfigurationError(
                f"overlapping interval on lane {lane!r}: "
                f"{interval.start} < {intervals[-1].end}"
            )
        intervals.append(interval)

    @classmethod
    def from_trace(cls, recorder: TraceRecorder) -> "Timeline":
        """Reconstruct NIC busy intervals from ``nic.send``/``nic.idle``.

        Each ``nic.send`` opens an interval on its source lane, closed
        by the next ``nic.idle`` from the same source; an interval still
        open at the end of the trace is closed at the last event time.
        """
        timeline = cls()
        open_since: dict[str, tuple[float, str]] = {}
        last_time = recorder.events[-1].time if recorder.events else 0.0
        for event in recorder.events:
            if event.kind == "nic.send":
                open_since[event.source] = (
                    event.time,
                    str(event.detail.get("packet_kind", "send")),
                )
            elif event.kind == "nic.idle" and event.source in open_since:
                start, label = open_since.pop(event.source)
                timeline.add(event.source, Interval(start, event.time, label))
        for source, (start, label) in open_since.items():
            timeline.add(source, Interval(start, last_time, label))
        return timeline

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def lanes(self) -> list[str]:
        """Lane names in first-appearance order."""
        return list(self._lanes)

    def intervals(self, lane: str) -> list[Interval]:
        """The intervals of one lane (empty list for unknown lanes)."""
        return list(self._lanes.get(lane, []))

    @property
    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) over all lanes; (0, 0) if empty."""
        starts = [iv.start for ivs in self._lanes.values() for iv in ivs]
        ends = [iv.end for ivs in self._lanes.values() for iv in ivs]
        if not starts:
            return (0.0, 0.0)
        return (min(starts), max(ends))

    def busy_fraction(self, lane: str) -> float:
        """Busy time of a lane divided by the full timeline span."""
        start, end = self.span
        total = end - start
        if total <= 0:
            return 0.0
        return sum(iv.duration for iv in self._lanes.get(lane, [])) / total

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, width: int = 72) -> str:
        """ASCII Gantt: one row per lane, ``#`` where the lane is busy."""
        if width < 10:
            raise ConfigurationError(f"width must be >= 10, got {width}")
        start, end = self.span
        total = end - start
        if total <= 0:
            return "(empty timeline)"
        name_width = max((len(name) for name in self._lanes), default=4)
        lines = []
        for lane, intervals in self._lanes.items():
            cells = [" "] * width
            for interval in intervals:
                first = int((interval.start - start) / total * (width - 1))
                last = int((interval.end - start) / total * (width - 1))
                for i in range(first, last + 1):
                    cells[i] = "#"
            busy = self.busy_fraction(lane)
            lines.append(f"{lane:<{name_width}} |{''.join(cells)}| {busy:5.1%}")
        axis = (
            f"{'':<{name_width}}  {format_time(start)}"
            f"{'':>{max(width - 24, 1)}}{format_time(end)}"
        )
        lines.append(axis)
        return "\n".join(lines)
