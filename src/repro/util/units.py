"""Unit constants and formatting helpers.

Conventions used throughout the library:

* **time** is virtual seconds stored as ``float``;
* **sizes** are bytes stored as ``int``;
* **rates** are bytes per second stored as ``float``.

The constants below make scenario definitions read like the paper's own
numbers (``4 * KiB``, ``3 * us``, ``250 * mb_per_s``).
"""

from __future__ import annotations

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "ns",
    "us",
    "ms",
    "mb_per_s",
    "gbit_per_s",
    "parse_size",
    "format_size",
    "format_time",
    "format_rate",
]

#: One kibibyte (1024 bytes).
KiB: int = 1024
#: One mebibyte (1024 KiB).
MiB: int = 1024 * KiB
#: One gibibyte (1024 MiB).
GiB: int = 1024 * MiB

#: One nanosecond in seconds.
ns: float = 1e-9
#: One microsecond in seconds.
us: float = 1e-6
#: One millisecond in seconds.
ms: float = 1e-3

#: One megabyte per second (10^6 bytes/s, the unit used by MX microbenchmarks).
mb_per_s: float = 1e6
#: One gigabit per second in bytes per second.
gbit_per_s: float = 1e9 / 8.0

_SIZE_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
}


def parse_size(text: str | int) -> int:
    """Parse a human-readable size (``"4KiB"``, ``"1M"``, ``"512"``) to bytes.

    Integers pass through unchanged.  Raises :class:`ValueError` for
    malformed strings or negative sizes.
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text}")
        return text
    s = text.strip().lower().replace(" ", "")
    idx = len(s)
    while idx > 0 and not s[idx - 1].isdigit():
        idx -= 1
    number, suffix = s[:idx], s[idx:]
    if not number:
        raise ValueError(f"cannot parse size {text!r}")
    try:
        factor = _SIZE_SUFFIXES[suffix]
    except KeyError:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}") from None
    return int(number) * factor


def format_size(n_bytes: float) -> str:
    """Render a byte count with a binary suffix (``"4.0 KiB"``)."""
    value = float(n_bytes)
    for unit, threshold in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(value) >= threshold:
            return f"{value / threshold:.1f} {unit}"
    return f"{value:.0f} B"


def format_time(seconds: float) -> str:
    """Render a duration with the natural engineering unit."""
    a = abs(seconds)
    if a >= 1.0:
        return f"{seconds:.3f} s"
    if a >= ms:
        return f"{seconds / ms:.3f} ms"
    if a >= us:
        return f"{seconds / us:.3f} us"
    return f"{seconds / ns:.1f} ns"


def format_rate(bytes_per_second: float) -> str:
    """Render a throughput in MB/s (the paper-era convention)."""
    return f"{bytes_per_second / mb_per_s:.2f} MB/s"
