"""Lightweight structured tracing for simulated components.

A :class:`Tracer` receives ``(time, source, kind, detail)`` tuples.  The
default :class:`NullTracer` discards them at near-zero cost; tests and
the E1 architecture benchmark install a :class:`TraceRecorder` to assert
on the *sequence* of layer interactions (collect → optimize → transfer),
which is how we validate Figure 1 executably.

The observability plane (:mod:`repro.obs`) builds on the same hook: it
*subscribes sinks* to whatever tracer the simulator already has, which
flips :attr:`Tracer.enabled` to true and lets every guarded emit site
start producing events without reconstructing the cluster.

Hot-path contract: ``tracer.enabled`` is a plain attribute, not a
property — emit sites check it before building any detail dict, so a
production run with no sinks pays one attribute read and one branch per
potential event, nothing more.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "TraceRecorder",
    "event_to_dict",
    "events_to_jsonl",
]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One trace record.

    ``source`` identifies the emitting component (``"nic:myri0"``,
    ``"optimizer:node1"``); ``kind`` is a stable machine-matchable tag
    (``"nic.idle"``, ``"strategy.aggregate"``); ``detail`` carries
    kind-specific fields.
    """

    time: float
    source: str
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Base tracer interface; also usable directly as a callback fan-out."""

    def __init__(self) -> None:
        self._sinks: list[Callable[[TraceEvent], None]] = []
        #: Whether emitting is worthwhile (lets hot paths skip building
        #: detail dicts).  A plain attribute on purpose — see module docs.
        self.enabled: bool = False

    def subscribe(self, sink: Callable[[TraceEvent], None]) -> None:
        """Register a callable invoked for every future event."""
        self._sinks.append(sink)
        self.enabled = True

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> None:
        """Record one event and fan it out to subscribers."""
        event = TraceEvent(time, source, kind, detail)
        self.record(event)
        for sink in self._sinks:
            sink(event)

    def record(self, event: TraceEvent) -> None:
        """Store the event. Subclasses override; the base stores nothing."""


class NullTracer(Tracer):
    """Discards everything; the default for production runs."""

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> None:
        if self._sinks:
            super().emit(time, source, kind, **detail)


class TraceRecorder(Tracer):
    """Keeps every event in memory for post-run inspection.

    Use :meth:`to_jsonl` to export for external timeline tools.
    """

    def __init__(self) -> None:
        super().__init__()
        self.events: list[TraceEvent] = []
        self.enabled = True  # recording is itself a sink

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All recorded events with exactly this kind tag."""
        return [e for e in self.events if e.kind == kind]

    def kinds(self) -> Iterator[str]:
        """Kind tags in emission order (with repeats)."""
        return (e.kind for e in self.events)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def to_jsonl(self) -> str:
        """Serialize events as JSON Lines (one event object per line)."""
        return events_to_jsonl(self.events)

    def __len__(self) -> int:
        return len(self.events)


def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    """The canonical JSON shape of one event.

    Detail fields are nested under ``"detail"`` so a detail key named
    ``time``/``source``/``kind`` can never clobber the envelope.
    """
    return {
        "time": event.time,
        "source": event.source,
        "kind": event.kind,
        "detail": {k: _jsonable(v) for k, v in event.detail.items()},
    }


def events_to_jsonl(events: "Iterator[TraceEvent] | list[TraceEvent]") -> str:
    """Serialize events as JSON Lines (one event object per line)."""
    return "\n".join(json.dumps(event_to_dict(e)) for e in events)


def _jsonable(value: Any) -> Any:
    """Best-effort JSON coercion for trace detail values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)
