"""Shared utilities: units, errors, seeded RNG streams, statistics, tracing.

These helpers are deliberately dependency-light; everything above the
simulation kernel (:mod:`repro.sim`) builds on them.
"""

from repro.util.errors import (
    CapabilityError,
    ConfigurationError,
    ConstraintViolation,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.util.rng import RngStream, SeedSequenceRegistry
from repro.util.stats import OnlineStats, Percentiles, summarize
from repro.util.tracing import NullTracer, Tracer, TraceEvent, TraceRecorder
from repro.util.units import (
    GiB,
    KiB,
    MiB,
    format_rate,
    format_size,
    format_time,
    gbit_per_s,
    mb_per_s,
    ms,
    ns,
    parse_size,
    us,
)

__all__ = [
    "CapabilityError",
    "ConfigurationError",
    "ConstraintViolation",
    "GiB",
    "KiB",
    "MiB",
    "NullTracer",
    "OnlineStats",
    "Percentiles",
    "ProtocolError",
    "ReproError",
    "RngStream",
    "SeedSequenceRegistry",
    "SimulationError",
    "TraceEvent",
    "TraceRecorder",
    "Tracer",
    "format_rate",
    "format_size",
    "format_time",
    "gbit_per_s",
    "mb_per_s",
    "ms",
    "ns",
    "parse_size",
    "summarize",
    "us",
]
