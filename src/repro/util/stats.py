"""Streaming and batch statistics used by the metrics layer.

:class:`OnlineStats` implements Welford's algorithm so metric collectors
can accumulate millions of samples in O(1) memory; :func:`summarize` and
:class:`Percentiles` give the batch view used by the benchmark harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["OnlineStats", "Percentiles", "summarize", "ascii_histogram"]


class OnlineStats:
    """Single-pass mean/variance/min/max accumulator (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum", "total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        v = float(value)
        self.count += 1
        self.total += v
        delta = v - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (v - self._mean)
        if v < self.minimum:
            self.minimum = v
        if v > self.maximum:
            self.maximum = v

    def extend(self, values: Iterable[float]) -> None:
        """Fold an iterable of samples."""
        for v in values:
            self.add(v)

    def merge(self, other: "OnlineStats") -> None:
        """Fold another accumulator into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        total_n = n1 + n2
        self._mean += delta * n2 / total_n
        self._m2 += other._m2 + delta * delta * n1 * n2 / total_n
        self.count = total_n
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        """Sample mean (``nan`` when empty)."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``nan`` for fewer than 2 samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else math.nan

    @property
    def stddev(self) -> float:
        """Unbiased sample standard deviation."""
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else math.nan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OnlineStats(n={self.count}, mean={self.mean:.6g})"


@dataclass(frozen=True, slots=True)
class Percentiles:
    """Fixed percentile snapshot of a sample batch."""

    p50: float
    p90: float
    p99: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> "Percentiles":
        """Compute p50/p90/p99 of a non-empty sequence."""
        if len(samples) == 0:
            raise ValueError("cannot take percentiles of an empty sample")
        arr = np.asarray(samples, dtype=float)
        p50, p90, p99 = np.percentile(arr, [50.0, 90.0, 99.0])
        return cls(float(p50), float(p90), float(p99))


@dataclass(frozen=True, slots=True)
class Summary:
    """Batch summary returned by :func:`summarize`."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float
    total: float
    percentiles: Percentiles


def ascii_histogram(
    samples: Sequence[float],
    *,
    bins: int = 12,
    width: int = 40,
    fmt: str = "{:.3g}",
) -> str:
    """Render a horizontal ASCII histogram of a non-empty sample batch.

    One row per bin: ``[lo, hi) count  ####``.  Used by the CLI to show
    latency distributions without plotting dependencies.
    """
    if len(samples) == 0:
        raise ValueError("cannot histogram an empty sample")
    if bins < 1 or width < 1:
        raise ValueError("bins and width must be >= 1")
    arr = np.asarray(samples, dtype=float)
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    label_pairs = [
        f"{fmt.format(edges[i])} .. {fmt.format(edges[i + 1])}"
        for i in range(len(counts))
    ]
    label_width = max(len(s) for s in label_pairs)
    count_width = len(str(int(counts.max())))
    lines = []
    for label, count in zip(label_pairs, counts):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{label:>{label_width}}  {count:>{count_width}}  {bar}")
    return "\n".join(lines)


def summarize(samples: Sequence[float]) -> Summary:
    """Summarize a non-empty batch of samples (mean, spread, percentiles)."""
    if len(samples) == 0:
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(samples, dtype=float)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        stddev=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        total=float(arr.sum()),
        percentiles=Percentiles.of(arr),
    )
