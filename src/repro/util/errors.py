"""Exception hierarchy for the repro library.

All library-specific exceptions derive from :class:`ReproError` so callers
can catch everything this package raises with a single ``except`` clause
while still letting genuine programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "InternalError",
    "SimulationError",
    "ConstraintViolation",
    "CapabilityError",
    "ProtocolError",
    "TransportError",
    "WireError",
    "FaultInjectionError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A scenario, driver, or engine was configured inconsistently.

    Examples: a negative link bandwidth, a lookahead window of zero, a
    traffic class mapped to a channel that does not exist.
    """


class InternalError(ReproError):
    """A library invariant was violated — a bug in :mod:`repro` itself.

    Unlike :class:`ConfigurationError` this never indicates user error:
    it fires when internal bookkeeping disagrees with itself, e.g. an
    engine removing a waiting-list entry from a queue that does not hold
    it, or incremental counters drifting from the entries they summarize.
    """


class SimulationError(ReproError):
    """The discrete-event kernel detected an impossible state.

    Examples: scheduling an event in the past, running a simulator that
    was already stopped, a NIC completing a transfer it never started.
    """


class ConstraintViolation(ReproError):
    """An optimization would (or did) break a message-ordering constraint.

    The optimizer treats the structured-message dependencies expressed
    through the packing API as hard constraints (paper §3); strategies
    raise or receive this error when a candidate plan violates them.
    """


class CapabilityError(ReproError):
    """A transfer plan exceeds the capabilities of the target driver.

    Examples: more gather entries than ``max_gather_entries``, an
    aggregated packet larger than ``max_aggregate_size``, requesting DMA
    on a PIO-only device.
    """


class ProtocolError(ReproError):
    """A wire-protocol invariant was violated (duplicate delivery,
    unmatched rendezvous acknowledgement, unpack without matching pack).
    """


class TransportError(ReproError):
    """The reliability protocol gave up on a transfer.

    Examples: a packet exhausted its bounded retransmit budget without
    being acknowledged, or a retransmission was requested for a packet
    the transport no longer tracks.
    """


class WireError(ProtocolError):
    """Bytes on the wire could not be decoded into a packet.

    Raised by the :mod:`repro.network.wire` byte codec (and the live
    transport's stream decoder) on truncated input, bad magic, checksum
    mismatch, or malformed framing — never an ``IndexError`` or
    ``struct.error`` leaking from the parser.  A subclass of
    :class:`ProtocolError` so existing protocol-level handlers catch it.
    """


class FaultInjectionError(ReproError):
    """A fault-injection plan is inconsistent or cannot be applied.

    Examples: a drop probability outside ``[0, 1]``, an outage naming a
    NIC or network that does not exist in the fabric, a recovery time
    scheduled before the outage itself.
    """
