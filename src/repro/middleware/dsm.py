"""Distributed-shared-memory middleware traffic.

A page-based DSM in the PM2 lineage: a page *fault* sends a small
control request to the page's home node, which answers with the page
contents.  Faults are latency-critical (the faulting thread is stalled),
pages are medium-sized — a traffic mix that punishes head-of-line
blocking behind bulk transfers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.middleware.base import MiddlewareApp
from repro.network.virtual import TrafficClass
from repro.util.errors import ConfigurationError
from repro.util.units import KiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

__all__ = ["DsmApp"]


class DsmApp(MiddlewareApp):
    """Page-fault / page-response DSM traffic between two nodes."""

    def __init__(
        self,
        src: str = "n0",
        dst: str = "n1",
        *,
        faults: int = 50,
        page_size: int = 4 * KiB,
        request_size: int = 64,
        fault_interval: float = 0.0,
        name: str | None = None,
    ) -> None:
        super().__init__(src, dst, name)
        if faults < 1:
            raise ConfigurationError(f"faults must be >= 1, got {faults}")
        self.faults = faults
        self.page_size = page_size
        self.request_size = request_size
        self.fault_interval = fault_interval
        #: Fault-to-page-arrival latency samples.
        self.fault_latencies: list[float] = []

    def _start(self, cluster: "Cluster") -> None:
        api_src = cluster.api(self.src)
        api_dst = cluster.api(self.dst)
        # Fault requests are small control messages; page responses are
        # one-sided-style transfers (put/get class).
        fault_flow = api_src.open_flow(
            self.dst, f"{self.name}.fault", TrafficClass.CONTROL
        )
        page_flow = api_dst.open_flow(
            self.src, f"{self.name}.page", TrafficClass.PUTGET
        )
        fault_inbox = api_dst.inbox(fault_flow)
        page_inbox = api_src.inbox(page_flow)
        sim = cluster.sim
        rng = self.rng("faults")

        def faulting_thread():
            for _ in range(self.faults):
                if self.fault_interval > 0:
                    yield rng.exponential(self.fault_interval)
                start = sim.now
                api_src.send(fault_flow, self.request_size, header_size=16)
                yield page_inbox.get()  # thread stalls until the page lands
                self.fault_latencies.append(sim.now - start)

        def home_node():
            for _ in range(self.faults):
                yield fault_inbox.get()
                api_dst.send(page_flow, self.page_size, header_size=16)

        self.spawn(faulting_thread(), "fault")
        self.spawn(home_node(), "home")
