"""PadicoTM-style middleware integration (paper ref. [2]).

Modern applications run *several* middlewares at once over the same
node pair; :class:`IntegratorApp` composes any set of middleware apps
and reports on them as a unit.  :func:`uniform_small_flows` builds the
canonical multi-flow aggregation workload of experiment E2: N
independent flows of small eager messages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.middleware.base import MiddlewareApp
from repro.middleware.mpi_like import StreamApp
from repro.network.virtual import TrafficClass
from repro.sim.process import all_of
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

__all__ = ["IntegratorApp", "uniform_small_flows"]


class IntegratorApp(MiddlewareApp):
    """Runs several middleware apps between the same node pair."""

    def __init__(
        self,
        parts: Sequence[MiddlewareApp],
        *,
        name: str | None = None,
    ) -> None:
        if not parts:
            raise ConfigurationError("an integrator needs at least one part")
        endpoints = {(p.src, p.dst) for p in parts} | {(p.dst, p.src) for p in parts}
        srcs = {p.src for p in parts} | {p.dst for p in parts}
        if len(srcs) != 2:
            raise ConfigurationError(
                f"integrator parts must share one node pair, got nodes {sorted(srcs)}"
            )
        del endpoints
        super().__init__(parts[0].src, parts[0].dst, name)
        self.parts = list(parts)

    def _start(self, cluster: "Cluster") -> None:
        for part in self.parts:
            part.install(cluster)

    def install(self, cluster: "Cluster") -> "IntegratorApp":
        if self._cluster is not None:
            raise ConfigurationError(f"app {self.name!r} installed twice")
        self._cluster = cluster
        self._start(cluster)
        all_of([p.done for p in self.parts]).add_callback(
            lambda _value: self.done.resolve(None)
        )
        return self


def uniform_small_flows(
    n_flows: int,
    *,
    src: str = "n0",
    dst: str = "n1",
    size: int = 256,
    count: int = 100,
    interval: float = 0.0,
    jitter: bool = True,
    traffic_class: TrafficClass = TrafficClass.DEFAULT,
) -> list[StreamApp]:
    """N independent small-message streams between one node pair (E2)."""
    if n_flows < 1:
        raise ConfigurationError(f"n_flows must be >= 1, got {n_flows}")
    return [
        StreamApp(
            src,
            dst,
            size=size,
            count=count,
            interval=interval,
            jitter=jitter,
            traffic_class=traffic_class,
            name=f"flow{i}",
        )
        for i in range(n_flows)
    ]
