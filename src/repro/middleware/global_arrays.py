"""Global-Arrays-style one-sided put/get traffic (paper ref. [5]).

Puts are fire-and-forget one-sided writes (open loop); gets are
round-trips (request + data response).  Transfer sizes follow a
heavy-tailed distribution — array patches range from a few elements to
whole tiles.  The operation sequence is drawn up front from the app's
deterministic RNG stream, so origin and home agree on the schedule
without extra signalling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.middleware.base import MiddlewareApp
from repro.network.virtual import TrafficClass
from repro.util.errors import ConfigurationError
from repro.util.units import KiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

__all__ = ["GlobalArraysApp"]


class GlobalArraysApp(MiddlewareApp):
    """One-sided put/get workload over the PUTGET traffic class."""

    def __init__(
        self,
        src: str = "n0",
        dst: str = "n1",
        *,
        operations: int = 100,
        get_fraction: float = 0.3,
        median_size: int = 2 * KiB,
        max_size: int = 64 * KiB,
        size_sigma: float = 1.2,
        interval: float = 0.0,
        name: str | None = None,
    ) -> None:
        super().__init__(src, dst, name)
        if operations < 1:
            raise ConfigurationError(f"operations must be >= 1, got {operations}")
        if not 0.0 <= get_fraction <= 1.0:
            raise ConfigurationError(
                f"get_fraction must be in [0, 1], got {get_fraction}"
            )
        self.operations = operations
        self.get_fraction = get_fraction
        self.median_size = median_size
        self.max_size = max_size
        self.size_sigma = size_sigma
        self.interval = interval
        #: Get round-trip latency samples.
        self.get_latencies: list[float] = []
        #: (op, size) log of issued operations (filled at install time).
        self.op_log: list[tuple[str, int]] = []

    def _start(self, cluster: "Cluster") -> None:
        api_src = cluster.api(self.src)
        api_dst = cluster.api(self.dst)
        put_flow = api_src.open_flow(self.dst, f"{self.name}.put", TrafficClass.PUTGET)
        get_req_flow = api_src.open_flow(
            self.dst, f"{self.name}.getreq", TrafficClass.CONTROL
        )
        get_data_flow = api_dst.open_flow(
            self.src, f"{self.name}.getdata", TrafficClass.PUTGET
        )
        get_req_inbox = api_dst.inbox(get_req_flow)
        get_data_inbox = api_src.inbox(get_data_flow)
        sim = cluster.sim
        rng = self.rng("ops")

        # Draw the whole schedule up front (deterministic RNG): origin
        # and home then agree on the number and sizes of get responses.
        self.op_log = [
            (
                "get" if rng.uniform() < self.get_fraction else "put",
                rng.lognormal_size(
                    self.median_size, self.size_sigma, lo=64, hi=self.max_size
                ),
            )
            for _ in range(self.operations)
        ]
        get_sizes = [size for op, size in self.op_log if op == "get"]

        def origin():
            for op, size in self.op_log:
                if self.interval > 0:
                    yield rng.exponential(self.interval)
                if op == "get":
                    start = sim.now
                    session = api_src.begin(get_req_flow)
                    session.pack(24, express=True)  # patch descriptor
                    session.flush()
                    yield get_data_inbox.get()
                    self.get_latencies.append(sim.now - start)
                else:
                    api_src.send(put_flow, size, header_size=24)

        def home():
            for size in get_sizes:
                yield get_req_inbox.get()
                api_dst.send(get_data_flow, size, header_size=24)

        self.spawn(origin(), "origin")
        if get_sizes:
            self.spawn(home(), "home")
