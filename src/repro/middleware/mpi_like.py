"""MPI-style regular communication schemes.

:class:`PingPongApp` is the classic latency microbenchmark (closed
loop); :class:`StreamApp` is an open-loop unidirectional stream with
configurable arrival process and size distribution — the basic building
block of the multi-flow aggregation experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.madeleine.message import PackMode
from repro.middleware.base import MiddlewareApp
from repro.network.virtual import TrafficClass
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

__all__ = ["PingPongApp", "StreamApp"]


class PingPongApp(MiddlewareApp):
    """Closed-loop ping-pong: request, wait for echo, repeat.

    Collects one round-trip-time sample per iteration in :attr:`rtts`.
    """

    def __init__(
        self,
        src: str = "n0",
        dst: str = "n1",
        *,
        size: int = 8,
        count: int = 100,
        header_size: int = 16,
        think_time: float = 0.0,
        traffic_class: TrafficClass = TrafficClass.DEFAULT,
        name: str | None = None,
    ) -> None:
        super().__init__(src, dst, name)
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        self.size = size
        self.count = count
        self.header_size = header_size
        self.think_time = think_time
        self.traffic_class = traffic_class
        #: Round-trip time samples (one per iteration).
        self.rtts: list[float] = []

    def _start(self, cluster: "Cluster") -> None:
        api_src = cluster.api(self.src)
        api_dst = cluster.api(self.dst)
        ping = api_src.open_flow(self.dst, f"{self.name}.ping", self.traffic_class)
        pong = api_dst.open_flow(self.src, f"{self.name}.pong", self.traffic_class)
        ping_inbox = api_dst.inbox(ping)
        pong_inbox = api_src.inbox(pong)
        sim = cluster.sim

        def client():
            for _ in range(self.count):
                start = sim.now
                api_src.send(ping, self.size, header_size=self.header_size)
                yield pong_inbox.get()
                self.rtts.append(sim.now - start)
                if self.think_time > 0:
                    yield self.think_time

        def server():
            for _ in range(self.count):
                yield ping_inbox.get()
                api_dst.send(pong, self.size, header_size=self.header_size)

        self.spawn(client(), "client")
        self.spawn(server(), "server")


class StreamApp(MiddlewareApp):
    """Open-loop unidirectional message stream.

    ``interval`` is the mean inter-arrival time; with ``jitter=True``
    arrivals are exponential (Poisson process), otherwise periodic.
    ``size_sigma > 0`` draws lognormal sizes with the given spread
    around ``size`` (clamped to ``[1, 4·size]``).
    """

    def __init__(
        self,
        src: str = "n0",
        dst: str = "n1",
        *,
        size: int = 256,
        count: int = 100,
        interval: float = 0.0,
        jitter: bool = True,
        size_sigma: float = 0.0,
        header_size: int = 16,
        mode: PackMode = PackMode.CHEAPER,
        traffic_class: TrafficClass = TrafficClass.DEFAULT,
        name: str | None = None,
    ) -> None:
        super().__init__(src, dst, name)
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        if interval < 0:
            raise ConfigurationError(f"interval must be >= 0, got {interval}")
        self.size = size
        self.count = count
        self.interval = interval
        self.jitter = jitter
        self.size_sigma = size_sigma
        self.header_size = header_size
        self.mode = mode
        self.traffic_class = traffic_class
        #: Messages sent, with their completion futures.
        self.messages: list = []

    def _sample_interval(self, rng) -> float:
        if self.interval == 0:
            return 0.0
        if self.jitter:
            return rng.exponential(self.interval)
        return self.interval

    def _sample_size(self, rng) -> int:
        if self.size_sigma <= 0:
            return self.size
        return rng.lognormal_size(
            median=self.size, sigma=self.size_sigma, lo=1, hi=4 * self.size
        )

    def _start(self, cluster: "Cluster") -> None:
        api = cluster.api(self.src)
        flow = api.open_flow(self.dst, f"{self.name}.stream", self.traffic_class)
        rng = self.rng("arrivals")

        def sender():
            for _ in range(self.count):
                gap = self._sample_interval(rng)
                if gap > 0:
                    yield gap
                message = api.send(
                    flow,
                    self._sample_size(rng),
                    header_size=self.header_size,
                    mode=self.mode,
                )
                self.messages.append(message)

        self.spawn(sender(), "sender")
