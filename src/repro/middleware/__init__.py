"""Synthetic middleware workloads.

The paper's motivation (§1): modern applications stack "complex
conglomerates of multiple communication middlewares such as CORBA, JAVA
RMI or DSM", multiplying concurrent flows between node pairs.  This
package provides traffic generators with the fragment structure and
timing of those middlewares:

* :class:`~repro.middleware.mpi_like.PingPongApp` /
  :class:`~repro.middleware.mpi_like.StreamApp` — regular MPI-style
  schemes (closed-loop ping-pong, open-loop streams);
* :class:`~repro.middleware.rpc.RpcApp` — CORBA/RMI-style
  request/response with marshalled headers;
* :class:`~repro.middleware.dsm.DsmApp` — page-based distributed shared
  memory (fault → page transfer);
* :class:`~repro.middleware.global_arrays.GlobalArraysApp` — one-sided
  put/get traffic;
* :class:`~repro.middleware.control.ControlPlaneApp` — small
  latency-critical signalling messages;
* :class:`~repro.middleware.integrator.IntegratorApp` — a PadicoTM-style
  composition running several middlewares over the same node pair.

Every app exposes ``install(cluster)`` (usable directly as a
:func:`repro.runtime.session.run_session` workload) and accumulates
app-level samples (RTTs, per-op latencies) for the benches.
"""

from repro.middleware.base import AppBase, CollectiveApp, MiddlewareApp
from repro.middleware.collectives import (
    AllReduceApp,
    BarrierApp,
    BroadcastApp,
    HaloExchangeApp,
)
from repro.middleware.control import ControlPlaneApp
from repro.middleware.dsm import DsmApp
from repro.middleware.global_arrays import GlobalArraysApp
from repro.middleware.integrator import IntegratorApp, uniform_small_flows
from repro.middleware.mpi_like import PingPongApp, StreamApp
from repro.middleware.rpc import RpcApp
from repro.middleware.trace_replay import (
    TraceRecord,
    TraceReplayApp,
    load_trace,
    save_trace,
    synthesize_trace,
)

__all__ = [
    "AllReduceApp",
    "AppBase",
    "BarrierApp",
    "BroadcastApp",
    "CollectiveApp",
    "ControlPlaneApp",
    "DsmApp",
    "GlobalArraysApp",
    "HaloExchangeApp",
    "IntegratorApp",
    "MiddlewareApp",
    "PingPongApp",
    "RpcApp",
    "StreamApp",
    "TraceRecord",
    "TraceReplayApp",
    "load_trace",
    "save_trace",
    "synthesize_trace",
    "uniform_small_flows",
]
