"""RPC middleware traffic (CORBA / Java-RMI style).

Each call is a structured request — an express marshalling header
naming the method, plus an argument payload — answered by a structured
response after a server-side service time.  ``concurrency`` models a
multithreaded client runtime keeping several calls outstanding over the
same flow (the irregular scheme Madeleine targets, paper §2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.middleware.base import MiddlewareApp
from repro.network.virtual import TrafficClass
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

__all__ = ["RpcApp"]


class RpcApp(MiddlewareApp):
    """Closed-loop RPC client/server pair with configurable concurrency."""

    def __init__(
        self,
        src: str = "n0",
        dst: str = "n1",
        *,
        calls: int = 100,
        arg_size: int = 256,
        result_size: int = 256,
        header_size: int = 32,
        service_time: float = 0.0,
        think_time: float = 0.0,
        concurrency: int = 1,
        size_sigma: float = 0.8,
        traffic_class: TrafficClass = TrafficClass.DEFAULT,
        name: str | None = None,
    ) -> None:
        super().__init__(src, dst, name)
        if calls < 1 or concurrency < 1:
            raise ConfigurationError("calls and concurrency must be >= 1")
        if concurrency > calls:
            raise ConfigurationError(
                f"concurrency {concurrency} exceeds total calls {calls}"
            )
        self.calls = calls
        self.arg_size = arg_size
        self.result_size = result_size
        self.header_size = header_size
        self.service_time = service_time
        self.think_time = think_time
        self.concurrency = concurrency
        self.size_sigma = size_sigma
        self.traffic_class = traffic_class
        #: Per-call completion latency samples (request submit → response).
        self.call_latencies: list[float] = []

    def _start(self, cluster: "Cluster") -> None:
        api_src = cluster.api(self.src)
        api_dst = cluster.api(self.dst)
        requests = api_src.open_flow(self.dst, f"{self.name}.req", self.traffic_class)
        responses = api_dst.open_flow(self.src, f"{self.name}.rep", self.traffic_class)
        request_inbox = api_dst.inbox(requests)
        response_inbox = api_src.inbox(responses)
        sim = cluster.sim
        rng = self.rng("sizes")

        per_worker = self.calls // self.concurrency
        remainder = self.calls % self.concurrency

        def sample(base: int) -> int:
            if self.size_sigma <= 0:
                return base
            return rng.lognormal_size(base, self.size_sigma, lo=8, hi=16 * base)

        def client(n_calls: int):
            for _ in range(n_calls):
                start = sim.now
                session = api_src.begin(requests)
                session.pack(self.header_size, express=True)  # method id + ids
                session.pack(sample(self.arg_size))  # marshalled args
                session.flush()
                yield response_inbox.get()
                self.call_latencies.append(sim.now - start)
                if self.think_time > 0:
                    yield self.think_time

        def server():
            for _ in range(self.calls):
                yield request_inbox.get()
                if self.service_time > 0:
                    yield self.service_time
                session = api_dst.begin(responses)
                session.pack(self.header_size, express=True)  # status header
                session.pack(sample(self.result_size))  # marshalled result
                session.flush()

        for worker in range(self.concurrency):
            n = per_worker + (1 if worker < remainder else 0)
            if n:
                self.spawn(client(n), f"client{worker}")
        self.spawn(server(), "server")
