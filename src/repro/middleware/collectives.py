"""Collective operations built on the packing API.

The regular MPI-style communication schemes Madeleine has always served
(paper §2): a binomial-tree broadcast, a dissemination barrier, a
recursive-doubling allreduce, and a 1-D ring halo exchange.  Each
collective is implemented purely on flows + inboxes, so it exercises
the engine exactly like a real middleware's collective layer: many
simultaneous flows between many node pairs, mixing small control-sized
steps with payload transfers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.middleware.base import CollectiveApp
from repro.network.virtual import TrafficClass
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

__all__ = ["BroadcastApp", "BarrierApp", "AllReduceApp", "HaloExchangeApp"]


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class _PairwiseFlows:
    """Lazily opened flows + inboxes between group members."""

    def __init__(self, cluster: "Cluster", nodes: list[str], tag: str, traffic_class):
        self._cluster = cluster
        self._nodes = nodes
        self._tag = tag
        self._traffic_class = traffic_class
        self._flows: dict[tuple[int, int], object] = {}
        self._inboxes: dict[tuple[int, int], object] = {}

    def _ensure(self, src: int, dst: int):
        key = (src, dst)
        if key not in self._flows:
            api = self._cluster.api(self._nodes[src])
            flow = api.open_flow(
                self._nodes[dst],
                f"{self._tag}.{src}->{dst}",
                self._traffic_class,
            )
            self._flows[key] = flow
            self._inboxes[key] = self._cluster.api(self._nodes[dst]).inbox(flow)
        return self._flows[key], self._inboxes[key]

    def send(self, src: int, dst: int, size: int, header: int = 8):
        flow, _ = self._ensure(src, dst)
        return self._cluster.api(self._nodes[src]).send(
            flow, size, header_size=header
        )

    def recv(self, src: int, dst: int):
        _, inbox = self._ensure(src, dst)
        return inbox.get()


class BroadcastApp(CollectiveApp):
    """Binomial-tree broadcast from rank 0, repeated ``rounds`` times.

    Records the completion time of each broadcast (root send → last
    rank fully received) in :attr:`durations`.
    """

    def __init__(self, nodes, *, size: int = 4096, rounds: int = 1, name=None):
        super().__init__(nodes, name)
        if rounds < 1 or size < 1:
            raise ConfigurationError("rounds and size must be >= 1")
        self.payload = size
        self.rounds = rounds
        #: Per-broadcast completion durations.
        self.durations: list[float] = []

    def _children(self, rank: int) -> list[int]:
        """Binomial-tree children of a rank, largest subtree first.

        Sending to the deepest subtree first is the classic single-port
        optimization: the furthest forwarding chain starts as early as
        possible.
        """
        children = []
        mask = 1
        while mask < self.size:
            if rank & (mask - 1) == 0 and rank | mask != rank:
                child = rank | mask
                if child < self.size:
                    children.append(child)
            if rank & mask:
                break
            mask <<= 1
        children.reverse()
        return children

    def _start(self, cluster: "Cluster") -> None:
        pairs = _PairwiseFlows(cluster, self.nodes, self.name, TrafficClass.DEFAULT)
        sim = cluster.sim
        n = self.size

        # Rounds are delimited by tiny acks back to the root: a
        # broadcast is complete when the root has heard from every rank.
        def root_proc():
            for _ in range(self.rounds):
                start = sim.now
                for child in self._children(0):
                    pairs.send(0, child, self.payload)
                for rank in range(1, n):
                    yield pairs.recv(rank, 0)
                self.durations.append(sim.now - start)

        def leaf_proc(rank: int):
            parent = self._parent(rank)
            for _ in range(self.rounds):
                yield pairs.recv(parent, rank)
                for child in self._children(rank):
                    pairs.send(rank, child, self.payload)
                pairs.send(rank, 0, 8, header=0)  # ack

        self.spawn(root_proc(), "rank0")
        for rank in range(1, n):
            self.spawn(leaf_proc(rank), f"rank{rank}")

    def _parent(self, rank: int) -> int:
        """Binomial-tree parent: clear the lowest set bit."""
        return rank & (rank - 1)


class BarrierApp(CollectiveApp):
    """Dissemination barrier, repeated ``rounds`` times.

    In step k every rank sends a token to ``(rank + 2^k) mod n`` and
    waits for one from ``(rank - 2^k) mod n``; after ceil(log2 n) steps
    all ranks have transitively heard from everyone.
    """

    def __init__(self, nodes, *, rounds: int = 1, name=None):
        super().__init__(nodes, name)
        if rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        self.rounds = rounds
        #: Per-barrier durations measured at rank 0.
        self.durations: list[float] = []

    def _start(self, cluster: "Cluster") -> None:
        pairs = _PairwiseFlows(cluster, self.nodes, self.name, TrafficClass.CONTROL)
        sim = cluster.sim
        n = self.size
        steps = []
        k = 1
        while k < n:
            steps.append(k)
            k <<= 1

        def rank_proc(rank: int):
            for _ in range(self.rounds):
                start = sim.now
                for step in steps:
                    pairs.send(rank, (rank + step) % n, 8, header=0)
                    yield pairs.recv((rank - step) % n, rank)
                if rank == 0:
                    self.durations.append(sim.now - start)

        for rank in range(n):
            self.spawn(rank_proc(rank), f"rank{rank}")


class AllReduceApp(CollectiveApp):
    """Recursive-doubling allreduce (power-of-two groups only).

    Each of the log2(n) steps exchanges the full vector with the
    partner at distance 2^k — the classic latency-optimal scheme for
    short vectors.
    """

    def __init__(self, nodes, *, size: int = 4096, rounds: int = 1, name=None):
        super().__init__(nodes, name)
        if not _is_power_of_two(len(nodes)):
            raise ConfigurationError(
                f"recursive doubling needs a power-of-two group, got {len(nodes)}"
            )
        if rounds < 1 or size < 1:
            raise ConfigurationError("rounds and size must be >= 1")
        self.payload = size
        self.rounds = rounds
        #: Per-allreduce durations measured at rank 0.
        self.durations: list[float] = []

    def _start(self, cluster: "Cluster") -> None:
        pairs = _PairwiseFlows(cluster, self.nodes, self.name, TrafficClass.DEFAULT)
        sim = cluster.sim
        n = self.size

        def rank_proc(rank: int):
            for _ in range(self.rounds):
                start = sim.now
                distance = 1
                while distance < n:
                    partner = rank ^ distance
                    pairs.send(rank, partner, self.payload)
                    yield pairs.recv(partner, rank)
                    distance <<= 1
                if rank == 0:
                    self.durations.append(sim.now - start)

        for rank in range(n):
            self.spawn(rank_proc(rank), f"rank{rank}")


class HaloExchangeApp(CollectiveApp):
    """1-D ring halo exchange with a compute phase per iteration.

    The canonical stencil pattern: every iteration, each rank sends its
    halo to both neighbours, waits for both halos, then "computes" for
    ``compute_time``.  Records the per-iteration duration at rank 0.
    """

    def __init__(
        self,
        nodes,
        *,
        halo_size: int = 8192,
        iterations: int = 10,
        compute_time: float = 0.0,
        name=None,
    ):
        super().__init__(nodes, name)
        if iterations < 1 or halo_size < 1:
            raise ConfigurationError("iterations and halo_size must be >= 1")
        if compute_time < 0:
            raise ConfigurationError("compute_time must be >= 0")
        self.halo_size = halo_size
        self.iterations = iterations
        self.compute_time = compute_time
        #: Per-iteration durations at rank 0.
        self.durations: list[float] = []

    def _start(self, cluster: "Cluster") -> None:
        pairs = _PairwiseFlows(cluster, self.nodes, self.name, TrafficClass.DEFAULT)
        sim = cluster.sim
        n = self.size

        def rank_proc(rank: int):
            left, right = (rank - 1) % n, (rank + 1) % n
            for _ in range(self.iterations):
                start = sim.now
                pairs.send(rank, left, self.halo_size)
                pairs.send(rank, right, self.halo_size)
                yield pairs.recv(left, rank)
                yield pairs.recv(right, rank)
                if self.compute_time > 0:
                    yield self.compute_time
                if rank == 0:
                    self.durations.append(sim.now - start)

        for rank in range(n):
            self.spawn(rank_proc(rank), f"rank{rank}")
