"""Control-plane traffic: small, latency-critical signalling messages.

Heartbeats, barrier tokens, credit updates — the "control/signalling
messages" class the paper's scheduler wants on its own channel (§2).
The E7 experiment measures how much their latency suffers when bulk
traffic shares their path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.middleware.base import MiddlewareApp
from repro.network.virtual import TrafficClass
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

__all__ = ["ControlPlaneApp"]


class ControlPlaneApp(MiddlewareApp):
    """Periodic tiny control messages with per-message latency tracking."""

    def __init__(
        self,
        src: str = "n0",
        dst: str = "n1",
        *,
        count: int = 100,
        size: int = 32,
        interval: float = 5e-6,
        jitter: bool = True,
        name: str | None = None,
    ) -> None:
        super().__init__(src, dst, name)
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        if interval < 0:
            raise ConfigurationError(f"interval must be >= 0, got {interval}")
        self.count = count
        self.size = size
        self.interval = interval
        self.jitter = jitter
        #: Per-message delivery latency samples.
        self.latencies: list[float] = []

    def _start(self, cluster: "Cluster") -> None:
        api = cluster.api(self.src)
        flow = api.open_flow(self.dst, f"{self.name}.ctl", TrafficClass.CONTROL)
        rng = self.rng("ticks")
        sim = cluster.sim

        def record(message, completed_at: float) -> None:
            assert message.submit_time is not None
            self.latencies.append(completed_at - message.submit_time)

        cluster.api(self.dst).subscribe(flow, record)

        def ticker():
            for _ in range(self.count):
                if self.interval > 0:
                    yield rng.exponential(self.interval) if self.jitter else self.interval
                api.send(flow, self.size, header_size=8)

        self.spawn(ticker(), "ticker")
