"""Common machinery for middleware workload apps."""

from __future__ import annotations

import abc
import itertools
from typing import TYPE_CHECKING, Sequence

from repro.sim.process import Future, Process, all_of
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

__all__ = ["AppBase", "MiddlewareApp", "CollectiveApp"]

_app_ids = itertools.count()


class AppBase(abc.ABC):
    """Process management shared by all workload apps.

    Subclasses implement :meth:`_start`, spawning their processes with
    :meth:`spawn`; ``install`` wires the app into a cluster and is
    directly usable as a ``run_session`` workload installer.  ``done``
    resolves when every spawned process finished.
    """

    def __init__(self, name: str | None = None) -> None:
        self.name = name if name is not None else f"{type(self).__name__}{next(_app_ids)}"
        self.done: Future = Future()
        self._cluster: "Cluster | None" = None
        self._processes: list[Process] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def install(self, cluster: "Cluster") -> "AppBase":
        """Attach the app to a cluster and start its processes."""
        if self._cluster is not None:
            raise ConfigurationError(f"app {self.name!r} installed twice")
        self._cluster = cluster
        self._start(cluster)
        if not self._processes:
            raise ConfigurationError(f"app {self.name!r} started no processes")
        all_of([p.finished for p in self._processes]).add_callback(
            lambda _value: self.done.resolve(None)
        )
        return self

    @abc.abstractmethod
    def _start(self, cluster: "Cluster") -> None:
        """Open flows and spawn processes (subclass hook)."""

    def spawn(self, generator, label: str = "proc") -> Process:
        """Start one cooperative process belonging to this app."""
        assert self._cluster is not None
        process = Process(self._cluster.sim, generator, name=f"{self.name}.{label}")
        self._processes.append(process)
        return process

    # ------------------------------------------------------------------
    # conveniences for subclasses
    # ------------------------------------------------------------------
    def rng(self, label: str):
        """A deterministic RNG stream namespaced to this app."""
        assert self._cluster is not None
        return self._cluster.stream(f"{self.name}.{label}")


class MiddlewareApp(AppBase):
    """A workload between exactly two nodes (one middleware instance)."""

    def __init__(self, src: str, dst: str, name: str | None = None) -> None:
        if src == dst:
            raise ConfigurationError(f"app endpoints must differ, got {src!r} twice")
        super().__init__(name)
        self.src = src
        self.dst = dst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r} {self.src}->{self.dst})"


class CollectiveApp(AppBase):
    """A workload spanning a group of nodes (collective operations)."""

    def __init__(self, nodes: Sequence[str], name: str | None = None) -> None:
        nodes = list(nodes)
        if len(nodes) < 2:
            raise ConfigurationError(
                f"a collective needs >= 2 nodes, got {len(nodes)}"
            )
        if len(set(nodes)) != len(nodes):
            raise ConfigurationError(f"duplicate nodes in group: {nodes}")
        super().__init__(name)
        self.nodes = nodes

    @property
    def size(self) -> int:
        """Number of participating nodes."""
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r} over {self.nodes})"
