"""Trace-driven workload replay.

Real communication-middleware traces (the paper's authors would have
captured these from PadicoTM applications) are not available, so this
module provides the substitute: a trace *format* — one record per
message: ``(time, src, dst, size, traffic_class, n_fragments)`` — a
:class:`TraceReplayApp` that replays any trace faithfully against
either engine, and a synthetic-trace generator producing realistic
mixes (heavy-tailed sizes, bursty arrivals, several concurrent
middleware personalities).

Because replay is deterministic, the same trace can be run across
engines/strategies/policies for controlled comparisons — the role real
traces play in systems evaluations.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.middleware.base import AppBase
from repro.network.virtual import TrafficClass
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

__all__ = ["TraceRecord", "TraceReplayApp", "synthesize_trace", "load_trace", "save_trace"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One message in a communication trace."""

    time: float
    src: str
    dst: str
    size: int
    traffic_class: TrafficClass = TrafficClass.DEFAULT
    fragments: int = 1

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"negative trace time {self.time}")
        if self.size < 1:
            raise ConfigurationError(f"trace size must be >= 1, got {self.size}")
        if self.fragments < 1 or self.fragments > self.size:
            raise ConfigurationError(
                f"fragments must be in [1, size], got {self.fragments}"
            )
        if self.src == self.dst:
            raise ConfigurationError(f"trace record loops on {self.src!r}")


class TraceReplayApp(AppBase):
    """Replays a trace: each record becomes one message at its timestamp.

    Records are grouped into one flow per (src, dst, traffic_class); the
    record's payload is split into ``fragments`` roughly equal pieces,
    the first marked express (header-like).
    """

    def __init__(self, trace: Sequence[TraceRecord], name: str | None = None) -> None:
        if not trace:
            raise ConfigurationError("empty trace")
        super().__init__(name)
        self.trace = sorted(trace, key=lambda r: r.time)
        #: Messages sent during replay (same order as the sorted trace).
        self.messages: list = []

    def _start(self, cluster: "Cluster") -> None:
        flows: dict[tuple[str, str, TrafficClass], object] = {}
        by_src: dict[str, list[TraceRecord]] = {}
        for record in self.trace:
            by_src.setdefault(record.src, []).append(record)

        def flow_for(record: TraceRecord):
            key = (record.src, record.dst, record.traffic_class)
            if key not in flows:
                flows[key] = cluster.api(record.src).open_flow(
                    record.dst,
                    f"{self.name}.{record.src}->{record.dst}.{record.traffic_class.value}",
                    record.traffic_class,
                )
            return flows[key]

        def replayer(records: list[TraceRecord]):
            api = cluster.api(records[0].src)
            for record in records:
                gap = record.time - cluster.sim.now
                if gap > 0:
                    yield gap
                session = api.begin(flow_for(record))
                base = record.size // record.fragments
                remainder = record.size - base * record.fragments
                for i in range(record.fragments):
                    piece = base + (remainder if i == 0 else 0)
                    session.pack(piece, express=(i == 0 and record.fragments > 1))
                self.messages.append(session.flush())

        for src, records in by_src.items():
            self.spawn(replayer(records), f"replay-{src}")


def synthesize_trace(
    rng: RngStream,
    *,
    nodes: Sequence[str],
    duration: float,
    message_rate: float,
    burstiness: float = 2.0,
    small_median: int = 256,
    bulk_median: int = 32 * 1024,
    bulk_fraction: float = 0.1,
    control_fraction: float = 0.15,
) -> list[TraceRecord]:
    """Generate a realistic synthetic trace.

    Arrivals follow a two-state burst process (mean rate
    ``message_rate``, bursts ``burstiness`` times denser); sizes are
    lognormal with separate small/bulk populations; sources,
    destinations and classes are drawn per message.
    """
    if len(nodes) < 2:
        raise ConfigurationError("need >= 2 nodes for a trace")
    if duration <= 0 or message_rate <= 0:
        raise ConfigurationError("duration and message_rate must be > 0")
    if burstiness < 1.0:
        raise ConfigurationError(f"burstiness must be >= 1, got {burstiness}")
    records = []
    time = 0.0
    in_burst = False
    while time < duration:
        rate = message_rate * (burstiness if in_burst else 1.0)
        time += rng.exponential(1.0 / rate)
        if time >= duration:
            break
        if rng.uniform() < 0.1:  # state flip ~every 10 messages
            in_burst = not in_burst
        src = rng.choice(nodes)
        dst = rng.choice([n for n in nodes if n != src])
        roll = rng.uniform()
        if roll < control_fraction:
            traffic_class = TrafficClass.CONTROL
            size = rng.integers(16, 64)
            fragments = 1
        elif roll < control_fraction + bulk_fraction:
            traffic_class = TrafficClass.BULK
            size = rng.lognormal_size(bulk_median, 1.0, lo=4096, hi=1024 * 1024)
            fragments = 2
        else:
            traffic_class = TrafficClass.DEFAULT
            size = rng.lognormal_size(small_median, 1.2, lo=16, hi=16 * 1024)
            fragments = 2 if size > 256 else 1
        records.append(
            TraceRecord(time, src, dst, size, traffic_class, fragments)
        )
    if not records:
        raise ConfigurationError("trace synthesis produced no records")
    return records


def save_trace(trace: Iterable[TraceRecord], path: str | Path) -> None:
    """Write a trace as JSON Lines."""
    lines = []
    for record in trace:
        data = asdict(record)
        data["traffic_class"] = record.traffic_class.value
        lines.append(json.dumps(data))
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_trace(path: str | Path) -> list[TraceRecord]:
    """Read a JSON Lines trace written by :func:`save_trace`."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        data = json.loads(line)
        data["traffic_class"] = TrafficClass(data["traffic_class"])
        records.append(TraceRecord(**data))
    if not records:
        raise ConfigurationError(f"no trace records in {path}")
    return records
