"""repro — a NewMadeleine-style dynamic communication optimization engine.

Reproduction of *"Short Paper: Dynamic Optimization of Communications
over High Speed Networks"* (Brunet, Aumage, Namyst — HPDC-15, 2006):
a communication subsystem whose packet optimization engine is triggered
by NIC idleness, mixes several communication flows, and is parameterized
by the capabilities of the underlying network drivers — running here on
a discrete-event simulated cluster (see ``DESIGN.md`` for the
hardware-substitution rationale).

Quickstart
----------
::

    from repro import Cluster, TrafficClass

    cluster = Cluster(n_nodes=2, networks=[("mx", 1)], engine="optimizing")
    api = cluster.api("n0")
    flow = api.open_flow("n1", traffic_class=TrafficClass.BULK)
    message = api.send(flow, payload_size=4096)
    cluster.run_until_idle()
    print(message.completion.value)   # delivery time (virtual seconds)

Layer map (paper Figure 1)
--------------------------
* collect layer / packing API → :mod:`repro.madeleine`
* optimizer–scheduler → :mod:`repro.core`
* transfer layer (drivers, NICs, networks) → :mod:`repro.drivers`,
  :mod:`repro.network`
* baselines → :mod:`repro.baseline`; workloads → :mod:`repro.middleware`;
  assembly/metrics → :mod:`repro.runtime`.
"""

from repro.baseline.legacy import LegacyEngine
from repro.core.channels import OneToOneChannels, PooledChannels
from repro.core.config import EngineConfig
from repro.core.engine import OptimizingEngine
from repro.core.strategies import make_strategy, register_strategy
from repro.madeleine.api import MadAPI, PackingSession
from repro.madeleine.message import Flow, Fragment, Message, PackMode
from repro.network.faults import FaultPlane, FaultSpec, RailOutage
from repro.network.reliable import ReliabilityConfig, ReliableTransport
from repro.network.virtual import TrafficClass
from repro.runtime.cluster import Cluster
from repro.runtime.metrics import SessionReport
from repro.runtime.session import run_session
from repro.sim.engine import Simulator

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "EngineConfig",
    "FaultPlane",
    "FaultSpec",
    "Flow",
    "Fragment",
    "LegacyEngine",
    "MadAPI",
    "Message",
    "OneToOneChannels",
    "OptimizingEngine",
    "PackMode",
    "PackingSession",
    "PooledChannels",
    "RailOutage",
    "ReliabilityConfig",
    "ReliableTransport",
    "SessionReport",
    "Simulator",
    "TrafficClass",
    "__version__",
    "make_strategy",
    "register_strategy",
    "run_session",
]
