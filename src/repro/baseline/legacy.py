"""The deterministic Madeleine-3 baseline engine.

What "deterministic flow manipulations" (paper §2) means operationally,
and how this engine differs from the optimizing one:

* **application-triggered** — every submit immediately tries to send;
  there is no idle-triggered lookahead accumulation discipline (the
  backlog that *does* form while a NIC is busy is drained strictly in
  order);
* **no cross-flow optimization** — fragments are aggregated only with
  fragments *of the same message* (what one ``mad_end_packing`` flush
  produced), never across messages or flows;
* **one-to-one flow→channel mapping** — the §2 fallback policy, served
  round-robin with no traffic-class awareness;
* **rendezvous blocks its channel** — the synchronous mad3 semantics: a
  channel whose head message negotiates a rendezvous sends nothing else
  until the bulk data has left (head-of-line blocking);
* **no multirail balancing** — channels are statically bound to NICs
  (``rail_binding="static"`` behaviour) and large transfers are never
  striped.
"""

from __future__ import annotations

from repro.core.channels import ChannelPolicy, OneToOneChannels
from repro.core.config import EngineConfig
from repro.core.engine import CommEngineBase
from repro.core.strategies._builder import build_from_queue
from repro.core.strategies.base import Strategy, register_strategy
from repro.drivers.base import Driver
from repro.madeleine.submit import EntryState, SubmitEntry

__all__ = ["LegacyStrategy", "LegacyEngine"]


@register_strategy("legacy")
class LegacyStrategy(Strategy):
    """FIFO service, same-message-only aggregation, rendezvous HOL block."""

    def make_plan(self, engine: CommEngineBase, driver: Driver):
        blocked = getattr(engine, "blocked_channels", None)
        for queue in engine.queues_for(driver):
            stalled = False
            if blocked is not None and queue.channel_id in blocked:
                entry = blocked[queue.channel_id]
                if entry.state is EntryState.SENT:
                    del blocked[queue.channel_id]
                else:
                    # Rendezvous in flight: the channel sends protocol
                    # traffic only (REQ/ACK and the bulk data itself).
                    stalled = True
            plan = build_from_queue(
                engine,
                driver,
                queue,
                max_items=driver.max_segments_per_packet(),
                same_message_only=True,
                protocol_only=stalled,
            )
            if plan is not None:
                return plan
        return None


class LegacyEngine(CommEngineBase):
    """The previous Madeleine: deterministic, per-flow, app-triggered."""

    def __init__(
        self,
        sim,
        node,
        drivers,
        *,
        policy: ChannelPolicy | None = None,
        config: EngineConfig | None = None,
        **kwargs,
    ) -> None:
        if config is None:
            config = EngineConfig(
                rail_binding="static",
                stripe_chunk=None,
                nagle_delay=0.0,
            )
        super().__init__(
            sim,
            node,
            drivers,
            strategy=LegacyStrategy(),
            policy=policy if policy is not None else OneToOneChannels(),
            config=config,
            **kwargs,
        )
        #: channel_id → parked entry whose rendezvous stalls the channel.
        self.blocked_channels: dict[int, SubmitEntry] = {}

    def park_for_rendezvous(self, entry: SubmitEntry, channel_id: int) -> None:
        """Park as usual, but stall the channel until the bulk has left."""
        super().park_for_rendezvous(entry, channel_id)
        self.blocked_channels[channel_id] = entry

    def _rendezvous_abandoned(self, entry: SubmitEntry, channel_id: int) -> None:
        """An abandoned handshake must also unstall its channel.

        The entry goes back to eager transmission, so leaving the stall
        in place would filter it out (``protocol_only``) forever.
        """
        if self.blocked_channels.get(channel_id) is entry:
            del self.blocked_channels[channel_id]

    # Legacy activation: pump on every submission *and* on NIC idle
    # (the NIC-idle drain exists in any library; what legacy lacks is
    # the optimization the backlog could have enabled).
    def _after_submit(self) -> None:
        if any(d.idle for d in self.drivers):
            self._pump("submit")

    def _nic_idle(self, nic) -> None:
        self._pump("idle")
