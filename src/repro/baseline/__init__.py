"""Baseline engines the paper compares against.

:class:`~repro.baseline.legacy.LegacyEngine` models the *previous*
Madeleine (paper §2: "this previous version of Madeleine was not
designed to perform cross-flow optimization and its design was limited
to deterministic flow manipulations").
"""

from repro.baseline.legacy import LegacyEngine, LegacyStrategy

__all__ = ["LegacyEngine", "LegacyStrategy"]
