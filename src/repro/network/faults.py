"""Deterministic fault injection for the simulated fabric.

Real high-speed fabrics drop, corrupt, duplicate, and reorder packets,
and lose whole rails; the engine's scheduling claims only mean something
if they survive that.  A :class:`FaultPlane` is the single authority for
*what goes wrong*: per-NIC / per-network :class:`FaultSpec` lotteries
(packet drop, corruption, duplication, delay jitter) plus scheduled
:class:`RailOutage` events that drive :meth:`repro.network.nic.NIC.fail`
/ :meth:`~repro.network.nic.NIC.recover`.

Every decision draws from a named stream of the plane's **own**
:class:`~repro.util.rng.SeedSequenceRegistry` (one stream per NIC), so

* a whole faulty run is reproducible from one integer — identical seeds
  yield byte-identical drop/duplicate/retransmit counters, and
* enabling faults does not perturb the workload RNG streams.

The plane decides; it does not deliver.  The
:class:`~repro.network.reliable.ReliableTransport` consults
:meth:`FaultPlane.judge` on every transmission attempt and turns the
verdict into (non-)arrivals, so recovery — retransmission, dedup,
reordering repair, rail failover — lives in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.util.errors import FaultInjectionError
from repro.util.rng import RngStream, SeedSequenceRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.fabric import Fabric
    from repro.network.nic import NIC
    from repro.sim.engine import Simulator

__all__ = [
    "FaultSpec",
    "RailOutage",
    "FaultVerdict",
    "FaultPlane",
    "parse_fault_spec",
    "parse_outage",
]


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """Per-link fault probabilities and timing noise.

    ``drop``, ``corrupt`` and ``duplicate`` are independent per-packet
    probabilities; ``jitter`` is the mean of an exponential extra delay
    added to each delivery (nonzero jitter causes reordering between
    packets of the same link).
    """

    drop: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "corrupt", "duplicate"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise FaultInjectionError(
                    f"{name} probability must be in [0, 1], got {p}"
                )
        if self.jitter < 0:
            raise FaultInjectionError(f"jitter must be >= 0, got {self.jitter}")

    @property
    def is_null(self) -> bool:
        """Whether this spec never perturbs anything."""
        return (
            self.drop == 0.0
            and self.corrupt == 0.0
            and self.duplicate == 0.0
            and self.jitter == 0.0
        )


@dataclass(frozen=True, slots=True)
class RailOutage:
    """One scheduled rail failure: a NIC (or whole network) down at ``at``.

    Exactly one of ``nic`` / ``network`` names the target; ``recover``
    (optional) schedules the rail back up.
    """

    at: float
    nic: str | None = None
    network: str | None = None
    recover: float | None = None

    def __post_init__(self) -> None:
        if (self.nic is None) == (self.network is None):
            raise FaultInjectionError(
                "an outage must name exactly one of 'nic' or 'network'"
            )
        if self.at < 0:
            raise FaultInjectionError(f"outage time must be >= 0, got {self.at}")
        if self.recover is not None and self.recover <= self.at:
            raise FaultInjectionError(
                f"recovery at t={self.recover} must come after the outage at t={self.at}"
            )


@dataclass(frozen=True, slots=True)
class FaultVerdict:
    """The plane's decision for one transmission attempt."""

    drop: bool = False
    corrupt: bool = False
    duplicate: bool = False
    delay: float = 0.0  #: extra delay on the primary copy
    dup_delay: float = 0.0  #: extra delay on the duplicate copy

    @property
    def delivers(self) -> bool:
        """Whether any intact copy reaches the receiver."""
        return not self.drop


_CLEAN = FaultVerdict()

#: Keys accepted by :meth:`FaultPlane.from_spec` (scenario ``"faults"`` block).
_SPEC_KEYS = frozenset(
    {"seed", "drop", "corrupt", "duplicate", "jitter", "per_network", "per_nic", "outages"}
)
_OUTAGE_KEYS = frozenset({"nic", "network", "at", "recover"})


@dataclass(slots=True)
class FaultPlaneStats:
    """What the plane has injected so far (decisions, not recoveries)."""

    judged: int = 0
    drops: int = 0
    corruptions: int = 0
    duplicates: int = 0
    delayed: int = 0


class FaultPlane:
    """Seeded, deterministic fault decisions for a whole fabric.

    Parameters
    ----------
    default:
        Fault spec applied to every NIC without a more specific entry.
    per_network:
        Network name → :class:`FaultSpec` overriding the default.
    per_nic:
        NIC name → :class:`FaultSpec`; the most specific match wins.
    outages:
        Scheduled :class:`RailOutage` events, installed by
        :meth:`install`.
    seed:
        Seed of the plane's private RNG registry.
    """

    def __init__(
        self,
        default: FaultSpec | None = None,
        *,
        per_network: Mapping[str, FaultSpec] | None = None,
        per_nic: Mapping[str, FaultSpec] | None = None,
        outages: Sequence[RailOutage] = (),
        seed: int = 0,
    ) -> None:
        self.default = default if default is not None else FaultSpec()
        self.per_network = dict(per_network) if per_network else {}
        self.per_nic = dict(per_nic) if per_nic else {}
        self.outages = tuple(outages)
        self.seed = int(seed)
        self.stats = FaultPlaneStats()
        self._rng = SeedSequenceRegistry(self.seed)

    # ------------------------------------------------------------------
    # construction from a scenario mapping
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Mapping[str, Any], default_seed: int = 0) -> "FaultPlane":
        """Build a plane from a scenario ``"faults"`` block.

        Unknown keys are rejected loudly — a typo'd fault knob silently
        ignored would make a resilience experiment meaningless.
        """
        spec = dict(spec)
        for key in spec:
            if key not in _SPEC_KEYS:
                raise FaultInjectionError(
                    f"unknown faults key {key!r} (known: {sorted(_SPEC_KEYS)})"
                )
        default = FaultSpec(
            drop=float(spec.get("drop", 0.0)),
            corrupt=float(spec.get("corrupt", 0.0)),
            duplicate=float(spec.get("duplicate", 0.0)),
            jitter=float(spec.get("jitter", 0.0)),
        )
        per_network = {
            name: _parse_subspec(f"per_network[{name!r}]", sub)
            for name, sub in dict(spec.get("per_network", {})).items()
        }
        per_nic = {
            name: _parse_subspec(f"per_nic[{name!r}]", sub)
            for name, sub in dict(spec.get("per_nic", {})).items()
        }
        outages = [parse_outage(entry) for entry in spec.get("outages", [])]
        return cls(
            default,
            per_network=per_network,
            per_nic=per_nic,
            outages=outages,
            seed=int(spec.get("seed", default_seed)),
        )

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def spec_for(self, nic: "NIC") -> FaultSpec:
        """The effective spec for one NIC (nic > network > default)."""
        if nic.name in self.per_nic:
            return self.per_nic[nic.name]
        network = getattr(nic.network, "name", None)
        if network is not None and network in self.per_network:
            return self.per_network[network]
        return self.default

    def stream_for(self, nic: "NIC") -> RngStream:
        """The deterministic per-NIC decision stream."""
        return self._rng.stream(f"faults:{nic.name}")

    def judge(self, nic: "NIC") -> FaultVerdict:
        """Decide the fate of one transmission attempt on ``nic``."""
        spec = self.spec_for(nic)
        self.stats.judged += 1
        if spec.is_null:
            return _CLEAN
        stream = self.stream_for(nic)
        drop = spec.drop > 0 and stream.uniform() < spec.drop
        corrupt = spec.corrupt > 0 and stream.uniform() < spec.corrupt
        duplicate = spec.duplicate > 0 and stream.uniform() < spec.duplicate
        delay = stream.exponential(spec.jitter) if spec.jitter > 0 else 0.0
        dup_delay = (
            stream.exponential(spec.jitter) if duplicate and spec.jitter > 0 else 0.0
        )
        if drop:
            self.stats.drops += 1
        if corrupt:
            self.stats.corruptions += 1
        if duplicate:
            self.stats.duplicates += 1
        if delay > 0 or dup_delay > 0:
            self.stats.delayed += 1
        return FaultVerdict(
            drop=drop, corrupt=corrupt, duplicate=duplicate, delay=delay, dup_delay=dup_delay
        )

    def judge_ack(self, nic: "NIC") -> bool:
        """Whether the reverse-path acknowledgement for ``nic`` is lost."""
        spec = self.spec_for(nic)
        if spec.drop == 0:
            return False
        stream = self._rng.stream(f"faults:ack:{nic.name}")
        return stream.uniform() < spec.drop

    # ------------------------------------------------------------------
    # outages
    # ------------------------------------------------------------------
    def install(self, fabric: "Fabric", sim: "Simulator") -> None:
        """Schedule every outage against a built fabric.

        Raises :class:`FaultInjectionError` when an outage names a NIC
        or network the fabric does not have.
        """
        for outage in self.outages:
            for nic in self._resolve(fabric, outage):
                sim.at(outage.at, nic.fail)
                if outage.recover is not None:
                    sim.at(outage.recover, nic.recover)

    @staticmethod
    def _resolve(fabric: "Fabric", outage: RailOutage) -> list["NIC"]:
        if outage.nic is not None:
            for node in fabric.nodes:
                for nic in node.nics:
                    if nic.name == outage.nic:
                        return [nic]
            raise FaultInjectionError(
                f"outage names unknown NIC {outage.nic!r} "
                f"(known: {[n.name for node in fabric.nodes for n in node.nics]})"
            )
        matches = [
            nic
            for node in fabric.nodes
            for nic in node.nics
            if nic.network is not None and nic.network.name == outage.network
        ]
        if not matches:
            raise FaultInjectionError(
                f"outage names unknown network {outage.network!r} "
                f"(known: {[n.name for n in fabric.networks]})"
            )
        return matches

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlane(default={self.default}, outages={len(self.outages)}, "
            f"seed={self.seed})"
        )


def parse_fault_spec(sub: Mapping[str, Any], where: str = "spec") -> FaultSpec:
    """Parse one drop/corrupt/duplicate/jitter mapping into a :class:`FaultSpec`.

    Shared vocabulary between the simulated plane's per-NIC/per-network
    sub-specs and the live plane's chaos profile
    (:mod:`repro.live.chaos`), so a fault profile means the same thing
    in both planes.
    """
    sub = dict(sub)
    for key in sub:
        if key not in ("drop", "corrupt", "duplicate", "jitter"):
            raise FaultInjectionError(
                f"unknown key {key!r} in faults {where} "
                "(known: ['corrupt', 'drop', 'duplicate', 'jitter'])"
            )
    return FaultSpec(**{k: float(v) for k, v in sub.items()})


def _parse_subspec(where: str, sub: Mapping[str, Any]) -> FaultSpec:
    return parse_fault_spec(sub, where)


def parse_outage(entry: Mapping[str, Any]) -> RailOutage:
    """Parse one scheduled-outage entry; public so the live chaos
    layer shares the schema (and its strict unknown-key errors)."""
    entry = dict(entry)
    for key in entry:
        if key not in _OUTAGE_KEYS:
            raise FaultInjectionError(
                f"unknown key {key!r} in faults outage (known: {sorted(_OUTAGE_KEYS)})"
            )
    try:
        at = float(entry["at"])
    except KeyError:
        raise FaultInjectionError(f"outage entry missing 'at': {entry}") from None
    recover = entry.get("recover")
    return RailOutage(
        at=at,
        nic=entry.get("nic"),
        network=entry.get("network"),
        recover=float(recover) if recover is not None else None,
    )
