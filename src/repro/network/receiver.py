"""Receiver-side packet demultiplexing.

One :class:`Receiver` per node.  It implements the receive half of the
transfer layer: route control packets (rendezvous handshake, signalling)
to protocol handlers, and data packets to the per-channel sink installed
by the messaging layer — the "help the receiver in sorting out the
incoming packets" role that channel assignment buys (paper §2).

Payload reassembly is *not* done here; it belongs to
:class:`repro.madeleine.rx.MessageReassembler`, which registers itself
as a channel sink.

When a :class:`~repro.network.reliable.ReliableTransport` is active it
installs a *guard* (:meth:`Receiver.install_guard`) that intercepts
arrivals before demultiplexing — deduplicating retransmissions and
holding out-of-order packets in a reorder buffer — and feeds packets to
:meth:`Receiver.dispatch` once they are clean and in sequence.
"""

from __future__ import annotations

from typing import Callable

from repro.network.wire import META_CORR, PacketKind, WirePacket
from repro.sim.engine import Simulator
from repro.util.errors import ProtocolError

__all__ = ["Receiver"]

#: Signature of a data sink: (packet) -> None, called at delivery time.
DataSink = Callable[[WirePacket], None]
#: Signature of a control handler: (packet) -> None.
ControlHandler = Callable[[WirePacket], None]


class Receiver:
    """Demultiplexes packets delivered to one node."""

    def __init__(self, sim: Simulator, node_name: str) -> None:
        self._sim = sim
        self.node_name = node_name
        self._sinks: dict[int, DataSink] = {}
        self._default_sink: DataSink | None = None
        self._control_handlers: dict[PacketKind, ControlHandler] = {}
        self._guard: DataSink | None = None
        self.packets_received = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_sink(self, channel_id: int, sink: DataSink) -> None:
        """Install the data sink for one channel (at most one per channel)."""
        if channel_id in self._sinks:
            raise ProtocolError(
                f"channel {channel_id} already has a sink on node {self.node_name!r}"
            )
        self._sinks[channel_id] = sink

    def register_default_sink(self, sink: DataSink) -> None:
        """Install a catch-all data sink for channels with no specific one."""
        self._default_sink = sink

    def register_control_handler(self, kind: PacketKind, handler: ControlHandler) -> None:
        """Install the handler for one control packet kind."""
        if not kind.is_control:
            raise ProtocolError(f"{kind} is not a control packet kind")
        if kind in self._control_handlers:
            raise ProtocolError(
                f"{kind} already has a handler on node {self.node_name!r}"
            )
        self._control_handlers[kind] = handler

    def install_guard(self, guard: DataSink) -> None:
        """Interpose ``guard`` between arrival and demultiplexing.

        The guard receives every packet addressed to this node and is
        responsible for eventually calling :meth:`dispatch` (possibly
        later, possibly never for duplicates).  At most one guard may be
        installed per receiver.
        """
        if self._guard is not None:
            raise ProtocolError(
                f"node {self.node_name!r} already has a receive guard installed"
            )
        self._guard = guard

    # ------------------------------------------------------------------
    # delivery (called by the fabric at arrival time)
    # ------------------------------------------------------------------
    def deliver(self, packet: WirePacket) -> None:
        """Accept one arrived packet (guard first, then demultiplex)."""
        if packet.dst != self.node_name:
            raise ProtocolError(
                f"packet for {packet.dst!r} delivered to node {self.node_name!r}"
            )
        if self._guard is not None:
            self._guard(packet)
            return
        self.dispatch(packet)

    def dispatch(self, packet: WirePacket) -> None:
        """Demultiplex one clean, in-sequence packet to its handler/sink."""
        self.packets_received += 1
        self.bytes_received += packet.payload_bytes
        tracer = self._sim.tracer
        if tracer.enabled:
            tracer.emit(
                self._sim.now,
                f"rx:{self.node_name}",
                "rx.deliver",
                packet=packet.packet_id,
                packet_kind=packet.kind.value,
                channel=packet.channel_id,
                bytes=packet.payload_bytes,
                src=packet.src,
                corr=packet.meta.get(META_CORR),
            )
        if packet.kind.is_control:
            handler = self._control_handlers.get(packet.kind)
            if handler is None:
                raise ProtocolError(
                    f"no handler for {packet.kind} on node {self.node_name!r}"
                )
            handler(packet)
            return
        sink = self._sinks.get(packet.channel_id, self._default_sink)
        if sink is None:
            raise ProtocolError(
                f"no sink for channel {packet.channel_id} on node {self.node_name!r}"
            )
        sink(packet)
