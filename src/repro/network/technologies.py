"""Calibrated :class:`~repro.network.model.LinkModel` presets.

The constants follow published microbenchmarks of the paper era
(2005–2006):

* **Myrinet 2000 / MX**: ~3 µs one-sided latency, ~247 MB/s sustained
  bandwidth; PIO profitable for small messages.
* **Quadrics QsNet II / Elan4**: ~1.5–2 µs latency, ~350 MB/s per rail
  (we use conservative host-limited figures rather than the 900 MB/s
  link peak — consistent with the Madeleine test platforms).
* **InfiniBand 4x (Mellanox, 2005)**: ~5 µs latency through verbs,
  ~700 MB/s.
* **GigE / TCP**: ~50 µs latency, ~110 MB/s; no PIO/DMA distinction
  visible to the user, modelled as DMA-only with a high start-up.

Absolute values matter less than their *structure* (see
``DESIGN.md §6``); every experiment reports shapes, not microseconds.
"""

from __future__ import annotations

from typing import Callable

from repro.network.model import LinkModel
from repro.util.units import mb_per_s, us

__all__ = ["myrinet_mx", "quadrics_elan", "infiniband", "gige_tcp", "TECHNOLOGIES"]


def myrinet_mx() -> LinkModel:
    """Myrinet 2000 with the MX message layer (the paper's beta target)."""
    return LinkModel(
        name="mx",
        pio_latency=1.2 * us,
        pio_bandwidth=80 * mb_per_s,
        dma_latency=3.0 * us,
        dma_bandwidth=247 * mb_per_s,
        wire_latency=0.6 * us,
        copy_bandwidth=1500 * mb_per_s,
        gather_entry_cost=0.15 * us,
        rx_overhead=0.8 * us,
    )


def quadrics_elan() -> LinkModel:
    """Quadrics QsNet II / Elan4 (the second technology in Figure 1)."""
    return LinkModel(
        name="elan",
        pio_latency=0.9 * us,
        pio_bandwidth=100 * mb_per_s,
        dma_latency=2.0 * us,
        dma_bandwidth=350 * mb_per_s,
        wire_latency=0.4 * us,
        copy_bandwidth=1500 * mb_per_s,
        gather_entry_cost=0.10 * us,
        rx_overhead=0.6 * us,
    )


def infiniband() -> LinkModel:
    """InfiniBand 4x through verbs (a 2005-era Mellanox HCA)."""
    return LinkModel(
        name="ib",
        pio_latency=1.5 * us,  # inline sends
        pio_bandwidth=120 * mb_per_s,
        dma_latency=5.0 * us,
        dma_bandwidth=700 * mb_per_s,
        wire_latency=0.5 * us,
        copy_bandwidth=1500 * mb_per_s,
        gather_entry_cost=0.20 * us,
        rx_overhead=1.0 * us,
    )


def gige_tcp() -> LinkModel:
    """Gigabit Ethernet through the kernel TCP stack (fallback network)."""
    return LinkModel(
        name="tcp",
        pio_latency=45.0 * us,  # TCP has no true PIO; both modes go
        pio_bandwidth=110 * mb_per_s,  # through the socket path
        dma_latency=50.0 * us,
        dma_bandwidth=110 * mb_per_s,
        wire_latency=5.0 * us,
        copy_bandwidth=1500 * mb_per_s,
        gather_entry_cost=0.5 * us,
        rx_overhead=10.0 * us,
    )


#: Registry of preset factories keyed by technology tag.
TECHNOLOGIES: dict[str, Callable[[], LinkModel]] = {
    "mx": myrinet_mx,
    "elan": quadrics_elan,
    "ib": infiniband,
    "tcp": gige_tcp,
}
