"""The NIC busy/idle state machine.

This is the synchronization point the paper's whole design revolves
around (§3): *"the scheduler is not activated each time the application
submits a new packet, but rather when one of the NICs becomes idle"*.
Components subscribe to :meth:`NIC.on_idle`; the optimization engine uses
the callback as its activation trigger, so a backlog naturally
accumulates while a transfer is in flight.

The model is sender-side: a request occupies the sending NIC for
``occupancy`` seconds (computed by the driver from the
:class:`~repro.network.model.LinkModel`), and the packet is delivered to
the destination node ``one_way`` seconds after the request started.
Receive-side NIC occupancy is folded into the model's ``rx_overhead``
(the engine under study only schedules the send side — documented
simplification, DESIGN.md §6).

Fault model (:mod:`repro.network.faults`): a NIC may additionally be
**failed** — a rail outage.  A failed NIC accepts no requests and never
reports idle; a request in flight when the outage hits completes (the
packet already left for the switch), but the idle transition is
suppressed so the rail stays dark until :meth:`NIC.recover`.  Engines
subscribe to :meth:`NIC.on_fail` / :meth:`NIC.on_recover` to re-route
traffic (multirail failover).  When a
:class:`~repro.network.reliable.ReliableTransport` is installed on
``NIC.transport``, delivery is routed through it (fault lottery,
sequencing, retransmission) instead of going straight to the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.network.model import LinkModel
from repro.network.wire import WirePacket
from repro.sim.engine import Simulator
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.reliable import ReliableTransport

__all__ = ["NIC", "NicStats"]


@dataclass(slots=True)
class NicStats:
    """Cumulative counters exposed for utilisation metrics."""

    requests: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0
    busy_time: float = 0.0
    host_time: float = 0.0
    segments: int = 0
    kind_counts: dict[str, int] = field(default_factory=dict)
    #: Fault-plane outcomes attributed to this (sending) NIC.
    drops: int = 0
    corruptions: int = 0
    duplicates: int = 0
    retransmits: int = 0
    failures: int = 0  #: rail outages (``fail()`` transitions)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the NIC spent busy (0 when elapsed=0)."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0


class NIC:
    """One network interface attached to a node.

    The NIC accepts exactly one outstanding request; submitting while
    busy is a scheduler bug and raises :class:`SimulationError`.  When
    the request's occupancy elapses the NIC (1) hands the packet to the
    delivery function (the fabric routes it to the destination node) and
    (2) fires every ``on_idle`` subscriber — in subscription order — at
    the idle-transition instant.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        node_name: str,
        link: LinkModel,
        deliver: Callable[[WirePacket, float], None],
    ) -> None:
        self._sim = sim
        self.name = name
        self.node_name = node_name
        self.link = link
        self._deliver = deliver
        self._busy = False
        self._failed = False
        self._idle_subscribers: list[Callable[["NIC"], None]] = []
        self._fail_subscribers: list[Callable[["NIC"], None]] = []
        self._recover_subscribers: list[Callable[["NIC"], None]] = []
        self.stats = NicStats()
        #: Set by Network.attach; None for NICs built outside a fabric.
        self.network = None
        #: Reliability layer routing this NIC's deliveries; None = direct.
        self.transport: "ReliableTransport | None" = None

    def reaches(self, node_name: str) -> bool:
        """Whether this NIC's network connects to ``node_name``.

        NICs created without a fabric (unit tests) are permissive.
        """
        if self.network is None:
            return True
        return node_name in self.network.members

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when the NIC can accept a request right now."""
        return not self._busy and not self._failed

    @property
    def failed(self) -> bool:
        """True while a rail outage holds this NIC down."""
        return self._failed

    def on_idle(self, callback: Callable[["NIC"], None]) -> None:
        """Subscribe to idle transitions (the optimizer's trigger)."""
        self._idle_subscribers.append(callback)

    def on_fail(self, callback: Callable[["NIC"], None]) -> None:
        """Subscribe to rail outages (the failover trigger)."""
        self._fail_subscribers.append(callback)

    def on_recover(self, callback: Callable[["NIC"], None]) -> None:
        """Subscribe to rail recoveries."""
        self._recover_subscribers.append(callback)

    # ------------------------------------------------------------------
    # rail outages (driven by the fault plane, or directly in tests)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Take the rail down.  Idempotent.

        A transfer already occupying the NIC completes — the packet has
        been committed to the switch — but the idle transition that
        would normally refill the NIC is suppressed.
        """
        if self._failed:
            return
        self._failed = True
        self.stats.failures += 1
        tracer = self._sim.tracer
        if tracer.enabled:
            tracer.emit(self._sim.now, f"nic:{self.name}", "nic.fail")
        for callback in self._fail_subscribers:
            callback(self)

    def recover(self) -> None:
        """Bring the rail back up.  Idempotent."""
        if not self._failed:
            return
        self._failed = False
        tracer = self._sim.tracer
        if tracer.enabled:
            tracer.emit(self._sim.now, f"nic:{self.name}", "nic.recover")
        for callback in self._recover_subscribers:
            callback(self)
            if self._busy or self._failed:
                # A subscriber refilled (or re-failed) the NIC; later
                # subscribers must not act on a stale notification.
                break

    # ------------------------------------------------------------------
    # transfer
    # ------------------------------------------------------------------
    def submit(
        self,
        packet: WirePacket,
        occupancy: float,
        one_way: float,
        host_time: float = 0.0,
    ) -> None:
        """Start one request.

        ``occupancy`` — sender-side busy time; ``one_way`` — delay until
        the packet is delivered to the destination node; ``host_time`` —
        host CPU time the request consumes (accounting only).  All are
        computed by the driver so technology-specific policy stays out of
        the NIC.
        """
        if self._failed:
            raise SimulationError(f"NIC {self.name!r} submit while failed (rail outage)")
        if self._busy:
            raise SimulationError(f"NIC {self.name!r} submit while busy")
        if occupancy <= 0 or one_way < occupancy:
            raise SimulationError(
                f"NIC {self.name!r}: inconsistent timings occupancy={occupancy}, "
                f"one_way={one_way}"
            )
        if packet.src != self.node_name:
            raise SimulationError(
                f"NIC {self.name!r} on node {self.node_name!r} asked to send a "
                f"packet from {packet.src!r}"
            )
        self._busy = True
        self.stats.requests += 1
        self.stats.payload_bytes += packet.payload_bytes
        self.stats.wire_bytes += packet.wire_bytes
        self.stats.busy_time += occupancy
        self.stats.host_time += host_time
        self.stats.segments += packet.segment_count
        kind = packet.kind.value
        self.stats.kind_counts[kind] = self.stats.kind_counts.get(kind, 0) + 1

        tracer = self._sim.tracer
        if tracer.enabled:
            tracer.emit(
                self._sim.now,
                f"nic:{self.name}",
                "nic.send",
                packet=packet.packet_id,
                packet_kind=kind,
                bytes=packet.payload_bytes,
                segments=packet.segment_count,
                dst=packet.dst,
                occupancy=occupancy,
            )
        if self.transport is not None:
            self.transport.transmit(self, packet, one_way)
        else:
            self._sim.schedule(one_way, self._deliver, packet, occupancy)
        self._sim.schedule(occupancy, self._complete)

    def _complete(self) -> None:
        self._busy = False
        if self._failed:
            # Rail went down mid-transfer: the packet made it out, but
            # the NIC must not advertise capacity it no longer has.
            return
        tracer = self._sim.tracer
        if tracer.enabled:
            tracer.emit(self._sim.now, f"nic:{self.name}", "nic.idle")
        for callback in self._idle_subscribers:
            callback(self)
            if self._busy:
                # An earlier subscriber already refilled the NIC; later
                # subscribers must not see a stale idle notification.
                break

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "failed" if self._failed else ("idle" if self.idle else "busy")
        return f"NIC({self.name!r}, {self.link.name}, {state})"
