"""The NIC busy/idle state machine.

This is the synchronization point the paper's whole design revolves
around (§3): *"the scheduler is not activated each time the application
submits a new packet, but rather when one of the NICs becomes idle"*.
Components subscribe to :meth:`NIC.on_idle`; the optimization engine uses
the callback as its activation trigger, so a backlog naturally
accumulates while a transfer is in flight.

The model is sender-side: a request occupies the sending NIC for
``occupancy`` seconds (computed by the driver from the
:class:`~repro.network.model.LinkModel`), and the packet is delivered to
the destination node ``one_way`` seconds after the request started.
Receive-side NIC occupancy is folded into the model's ``rx_overhead``
(the engine under study only schedules the send side — documented
simplification, DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.network.model import LinkModel
from repro.network.wire import WirePacket
from repro.sim.engine import Simulator
from repro.util.errors import SimulationError

__all__ = ["NIC", "NicStats"]


@dataclass(slots=True)
class NicStats:
    """Cumulative counters exposed for utilisation metrics."""

    requests: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0
    busy_time: float = 0.0
    host_time: float = 0.0
    segments: int = 0
    kind_counts: dict[str, int] = field(default_factory=dict)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the NIC spent busy (0 when elapsed=0)."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0


class NIC:
    """One network interface attached to a node.

    The NIC accepts exactly one outstanding request; submitting while
    busy is a scheduler bug and raises :class:`SimulationError`.  When
    the request's occupancy elapses the NIC (1) hands the packet to the
    delivery function (the fabric routes it to the destination node) and
    (2) fires every ``on_idle`` subscriber — in subscription order — at
    the idle-transition instant.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        node_name: str,
        link: LinkModel,
        deliver: Callable[[WirePacket, float], None],
    ) -> None:
        self._sim = sim
        self.name = name
        self.node_name = node_name
        self.link = link
        self._deliver = deliver
        self._busy = False
        self._idle_subscribers: list[Callable[["NIC"], None]] = []
        self.stats = NicStats()
        #: Set by Network.attach; None for NICs built outside a fabric.
        self.network = None

    def reaches(self, node_name: str) -> bool:
        """Whether this NIC's network connects to ``node_name``.

        NICs created without a fabric (unit tests) are permissive.
        """
        if self.network is None:
            return True
        return node_name in self.network.members

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when the NIC can accept a request right now."""
        return not self._busy

    def on_idle(self, callback: Callable[["NIC"], None]) -> None:
        """Subscribe to idle transitions (the optimizer's trigger)."""
        self._idle_subscribers.append(callback)

    # ------------------------------------------------------------------
    # transfer
    # ------------------------------------------------------------------
    def submit(
        self,
        packet: WirePacket,
        occupancy: float,
        one_way: float,
        host_time: float = 0.0,
    ) -> None:
        """Start one request.

        ``occupancy`` — sender-side busy time; ``one_way`` — delay until
        the packet is delivered to the destination node; ``host_time`` —
        host CPU time the request consumes (accounting only).  All are
        computed by the driver so technology-specific policy stays out of
        the NIC.
        """
        if self._busy:
            raise SimulationError(f"NIC {self.name!r} submit while busy")
        if occupancy <= 0 or one_way < occupancy:
            raise SimulationError(
                f"NIC {self.name!r}: inconsistent timings occupancy={occupancy}, "
                f"one_way={one_way}"
            )
        if packet.src != self.node_name:
            raise SimulationError(
                f"NIC {self.name!r} on node {self.node_name!r} asked to send a "
                f"packet from {packet.src!r}"
            )
        self._busy = True
        self.stats.requests += 1
        self.stats.payload_bytes += packet.payload_bytes
        self.stats.wire_bytes += packet.wire_bytes
        self.stats.busy_time += occupancy
        self.stats.host_time += host_time
        self.stats.segments += packet.segment_count
        kind = packet.kind.value
        self.stats.kind_counts[kind] = self.stats.kind_counts.get(kind, 0) + 1

        tracer = self._sim.tracer
        if tracer.enabled:
            tracer.emit(
                self._sim.now,
                f"nic:{self.name}",
                "nic.send",
                packet=packet.packet_id,
                packet_kind=kind,
                bytes=packet.payload_bytes,
                segments=packet.segment_count,
                dst=packet.dst,
            )
        self._sim.schedule(one_way, self._deliver, packet, occupancy)
        self._sim.schedule(occupancy, self._complete)

    def _complete(self) -> None:
        self._busy = False
        tracer = self._sim.tracer
        if tracer.enabled:
            tracer.emit(self._sim.now, f"nic:{self.name}", "nic.idle")
        for callback in self._idle_subscribers:
            callback(self)
            if self._busy:
                # An earlier subscriber already refilled the NIC; later
                # subscribers must not see a stale idle notification.
                break

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle" if self.idle else "busy"
        return f"NIC({self.name!r}, {self.link.name}, {state})"
