"""NIC virtualization: channels (multiplexing units) and traffic classes.

The paper's §2 argument: hardware/software NIC virtualization gives you
transparent multiplexing units; instead of mapping communication flows
one-to-one onto them, pool them under a software scheduler that can
assign *traffic classes* to channels ("different channel to large
synchronous sends, put/get transfers and control/signalling messages"),
rebalance dynamically, and fall back to one-to-one mapping as a mere
policy.

A :class:`Channel` is a named multiplexing unit; packets carry its id so
the receiver can demultiplex ("help the receiver in sorting out the
incoming packets").  A :class:`ChannelPool` owns a node's channels and
the class → channel assignment, which scheduling policies may rewrite at
run time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import ConfigurationError

__all__ = ["TrafficClass", "Channel", "ChannelPool"]


class TrafficClass(enum.Enum):
    """Coarse traffic categories from paper §2."""

    BULK = "bulk"  #: large synchronous sends
    PUTGET = "putget"  #: one-sided put/get transfers
    CONTROL = "control"  #: control / signalling messages
    DEFAULT = "default"  #: everything else


@dataclass(frozen=True, slots=True)
class Channel:
    """One virtualized multiplexing unit over the NIC pool."""

    channel_id: int
    name: str

    def __post_init__(self) -> None:
        if self.channel_id < 0:
            raise ConfigurationError(f"negative channel id {self.channel_id}")


class ChannelPool:
    """A node's channels plus the traffic-class assignment.

    The default assignment maps every class to channel 0 (pure
    multiplexing).  Policies such as
    :class:`~repro.core.strategies.traffic_class.TrafficClassPolicy`
    install richer assignments and may change them while running — the
    "dynamically change the assignment of networking resources to traffic
    classes" capability of §2.
    """

    def __init__(self) -> None:
        self._channels: dict[int, Channel] = {}
        self._assignment: dict[TrafficClass, int] = {}
        self._next_id = 0

    def create(self, name: str) -> Channel:
        """Allocate a new channel with a unique id."""
        channel = Channel(self._next_id, name)
        self._channels[channel.channel_id] = channel
        self._next_id += 1
        return channel

    def get(self, channel_id: int) -> Channel:
        """Look up a channel by id."""
        try:
            return self._channels[channel_id]
        except KeyError:
            raise ConfigurationError(f"unknown channel id {channel_id}") from None

    @property
    def channels(self) -> list[Channel]:
        """All channels in creation order."""
        return [self._channels[i] for i in sorted(self._channels)]

    def __len__(self) -> int:
        return len(self._channels)

    def __contains__(self, channel_id: int) -> bool:
        return channel_id in self._channels

    # ------------------------------------------------------------------
    # traffic-class assignment
    # ------------------------------------------------------------------
    def assign(self, traffic_class: TrafficClass, channel_id: int) -> None:
        """Route a traffic class to a channel (rewritable at run time)."""
        if channel_id not in self._channels:
            raise ConfigurationError(
                f"cannot assign {traffic_class} to unknown channel {channel_id}"
            )
        self._assignment[traffic_class] = channel_id

    def channel_for(self, traffic_class: TrafficClass) -> Channel:
        """Resolve a traffic class to its channel.

        Falls back to the DEFAULT assignment, then to channel 0.
        """
        if traffic_class in self._assignment:
            return self._channels[self._assignment[traffic_class]]
        if TrafficClass.DEFAULT in self._assignment:
            return self._channels[self._assignment[TrafficClass.DEFAULT]]
        if not self._channels:
            raise ConfigurationError("channel pool is empty")
        return self._channels[min(self._channels)]

    @property
    def assignment(self) -> dict[TrafficClass, int]:
        """A copy of the current class → channel mapping."""
        return dict(self._assignment)
