"""Transfer cost models for high-speed network technologies.

The optimization engine's decisions hinge on the cost *structure* of a
network request, not on absolute numbers (paper §1): every request pays a
fixed per-request overhead α; bytes then flow at a mode-dependent rate β;
aggregating k small packets into one request trades k−1 request
overheads for extra host-copy (or gather-entry) cost.  :class:`LinkModel`
captures exactly those terms:

``sender_occupancy`` — how long the NIC (and, for PIO, the host CPU)
stays busy with a request.  This is the quantity the engine schedules
around, because a new optimization pass is triggered when it elapses and
the NIC goes idle.

``one_way_time`` — when the packet's last byte lands on the receiving
node (occupancy + wire propagation + receiver-side handling).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import ConfigurationError

__all__ = ["TransferMode", "LinkModel"]


class TransferMode(enum.Enum):
    """How bytes move from host memory onto the wire.

    PIO (programmed I/O): the host CPU writes the payload to the NIC —
    low start-up latency, modest bandwidth, burns host cycles.  DMA: the
    NIC pulls the payload itself — higher start-up (descriptor posting,
    memory registration) but full link bandwidth and no host involvement.
    """

    PIO = "pio"
    DMA = "dma"


@dataclass(frozen=True, slots=True)
class LinkModel:
    """Calibrated α/β cost model for one network technology.

    Parameters
    ----------
    name:
        Technology tag (``"mx"``, ``"elan"``, …).
    pio_latency / pio_bandwidth:
        Start-up cost (s) and byte rate (B/s) for PIO requests.
    dma_latency / dma_bandwidth:
        Start-up cost (s) and byte rate (B/s) for DMA requests; the
        start-up includes descriptor posting but *not* memory
        registration, which is ``dma_registration_cost`` per request on
        unregistered buffers.
    wire_latency:
        One-way propagation + switch traversal (s).
    copy_bandwidth:
        Host memcpy rate (B/s) paid for every byte staged *by copy* into
        an aggregation buffer.
    gather_entry_cost:
        Per-entry cost (s) of a hardware gather/scatter descriptor
        (zero-copy aggregation).
    rx_overhead:
        Fixed receiver-side handling cost per packet (s).
    dma_host_overhead:
        Host CPU time per DMA request (descriptor posting, doorbell) —
        the part of a DMA send the CPU cannot overlap with computing.
    """

    name: str
    pio_latency: float
    pio_bandwidth: float
    dma_latency: float
    dma_bandwidth: float
    wire_latency: float
    copy_bandwidth: float
    gather_entry_cost: float
    rx_overhead: float
    dma_host_overhead: float = 0.25e-6

    def __post_init__(self) -> None:
        positive = {
            "pio_latency": self.pio_latency,
            "pio_bandwidth": self.pio_bandwidth,
            "dma_latency": self.dma_latency,
            "dma_bandwidth": self.dma_bandwidth,
            "copy_bandwidth": self.copy_bandwidth,
        }
        for field_name, value in positive.items():
            if value <= 0:
                raise ConfigurationError(
                    f"LinkModel.{field_name} must be > 0, got {value}"
                )
        non_negative = {
            "wire_latency": self.wire_latency,
            "gather_entry_cost": self.gather_entry_cost,
            "rx_overhead": self.rx_overhead,
            "dma_host_overhead": self.dma_host_overhead,
        }
        for field_name, value in non_negative.items():
            if value < 0:
                raise ConfigurationError(
                    f"LinkModel.{field_name} must be >= 0, got {value}"
                )

    # ------------------------------------------------------------------
    # cost primitives
    # ------------------------------------------------------------------
    def startup(self, mode: TransferMode) -> float:
        """Per-request start-up cost α for the given mode."""
        return self.pio_latency if mode is TransferMode.PIO else self.dma_latency

    def bandwidth(self, mode: TransferMode) -> float:
        """Byte rate β for the given mode."""
        return self.pio_bandwidth if mode is TransferMode.PIO else self.dma_bandwidth

    def sender_occupancy(
        self,
        size: int,
        mode: TransferMode,
        *,
        copied_bytes: int = 0,
        gather_entries: int = 1,
    ) -> float:
        """Time the NIC is busy with one request.

        ``size`` is the total wire payload; ``copied_bytes`` of it were
        staged by host memcpy (by-copy aggregation); ``gather_entries``
        is the number of scatter/gather descriptor entries (1 for a
        contiguous send).
        """
        if size < 0:
            raise ConfigurationError(f"negative transfer size {size}")
        if copied_bytes < 0 or copied_bytes > size:
            raise ConfigurationError(
                f"copied_bytes={copied_bytes} outside [0, size={size}]"
            )
        if gather_entries < 1:
            raise ConfigurationError(f"gather_entries must be >= 1, got {gather_entries}")
        serialization = size / self.bandwidth(mode)
        copy_cost = copied_bytes / self.copy_bandwidth
        gather_cost = (gather_entries - 1) * self.gather_entry_cost
        return self.startup(mode) + serialization + copy_cost + gather_cost

    def one_way_time(
        self,
        size: int,
        mode: TransferMode,
        *,
        copied_bytes: int = 0,
        gather_entries: int = 1,
    ) -> float:
        """Delay from request start to last byte available at the receiver."""
        return (
            self.sender_occupancy(
                size, mode, copied_bytes=copied_bytes, gather_entries=gather_entries
            )
            + self.wire_latency
            + self.rx_overhead
        )

    def host_occupancy(
        self, size: int, mode: TransferMode, *, copied_bytes: int = 0
    ) -> float:
        """Host CPU time consumed by one request.

        PIO keeps the CPU busy for the whole serialization (§1: "at the
        cost of additional processing"); DMA costs only descriptor
        posting.  By-copy aggregation staging is host work in both
        modes.  This is *accounting*, not contention: the simulation
        does not currently delay application compute for it, but the
        totals expose the PIO/DMA and copy/gather trade-offs (E10).
        """
        if size < 0 or copied_bytes < 0:
            raise ConfigurationError("sizes must be non-negative")
        copy_cost = copied_bytes / self.copy_bandwidth
        if mode is TransferMode.PIO:
            return self.pio_latency + size / self.pio_bandwidth + copy_cost
        return self.dma_host_overhead + copy_cost

    def pio_dma_crossover(self) -> float:
        """Message size where DMA becomes cheaper than PIO.

        Solves ``α_pio + s/β_pio = α_dma + s/β_dma``.  Returns ``0`` when
        DMA is always cheaper and ``inf`` when PIO is always cheaper.
        """
        inv_pio = 1.0 / self.pio_bandwidth
        inv_dma = 1.0 / self.dma_bandwidth
        if inv_pio <= inv_dma:
            # PIO is at least as fast per byte; cheaper start-up decides.
            return 0.0 if self.dma_latency <= self.pio_latency else float("inf")
        crossover = (self.dma_latency - self.pio_latency) / (inv_pio - inv_dma)
        return max(crossover, 0.0)
