"""Nodes, networks, and the fabric that connects them.

A :class:`Network` is one switched technology instance (e.g. "the
Myrinet fabric"): every NIC attached to it can reach every node attached
to it, with the cost model of its :class:`~repro.network.model.LinkModel`
(all-to-all through a full-crossbar switch — the standard topology of the
paper-era clusters).  A :class:`Node` owns its NICs, its
:class:`~repro.network.receiver.Receiver`, and its channel pool.
Heterogeneous multirail (paper §2: "NICs from multiple technologies") is
expressed by attaching one node to several networks.
"""

from __future__ import annotations

from repro.network.model import LinkModel
from repro.network.nic import NIC
from repro.network.receiver import Receiver
from repro.network.virtual import ChannelPool
from repro.network.wire import WirePacket
from repro.sim.engine import Simulator
from repro.util.errors import ConfigurationError

__all__ = ["Node", "Network", "Fabric"]


class Node:
    """One processing node: NICs + receiver + channel pool."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.name = name
        self.nics: list[NIC] = []
        self.receiver = Receiver(sim, name)
        self.channels = ChannelPool()

    def nic(self, name: str) -> NIC:
        """Look up one of this node's NICs by name."""
        for nic in self.nics:
            if nic.name == name:
                return nic
        raise ConfigurationError(f"node {self.name!r} has no NIC named {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name!r}, nics={[n.name for n in self.nics]})"


class Network:
    """One switched network instance with a uniform cost model."""

    def __init__(self, fabric: "Fabric", name: str, link: LinkModel) -> None:
        self._fabric = fabric
        self.name = name
        self.link = link
        self._members: set[str] = set()

    @property
    def members(self) -> frozenset[str]:
        """Names of nodes attached to this network."""
        return frozenset(self._members)

    def attach(self, node: Node, nic_name: str | None = None) -> NIC:
        """Create a NIC on ``node`` connected to this network."""
        if nic_name is None:
            nic_name = f"{node.name}.{self.name}{sum(1 for n in node.nics if n.link is self.link)}"
        nic = NIC(
            self._fabric.sim,
            name=nic_name,
            node_name=node.name,
            link=self.link,
            deliver=self._route,
        )
        nic.network = self
        node.nics.append(nic)
        self._members.add(node.name)
        return nic

    def _route(self, packet: WirePacket, _occupancy: float) -> None:
        if packet.dst not in self._members:
            raise ConfigurationError(
                f"network {self.name!r} cannot reach node {packet.dst!r}"
            )
        self._fabric.node(packet.dst).receiver.deliver(packet)


class Fabric:
    """The whole simulated cluster: nodes plus networks."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._nodes: dict[str, Node] = {}
        self._networks: dict[str, Network] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> Node:
        """Create a node with a unique name."""
        if name in self._nodes:
            raise ConfigurationError(f"duplicate node name {name!r}")
        node = Node(self.sim, name)
        self._nodes[name] = node
        return node

    def add_network(self, name: str, link: LinkModel) -> Network:
        """Create a network with a unique name."""
        if name in self._networks:
            raise ConfigurationError(f"duplicate network name {name!r}")
        network = Network(self, name, link)
        self._networks[name] = network
        return network

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown node {name!r}") from None

    def network(self, name: str) -> Network:
        """Look up a network by name."""
        try:
            return self._networks[name]
        except KeyError:
            raise ConfigurationError(f"unknown network {name!r}") from None

    @property
    def nodes(self) -> list[Node]:
        """All nodes in creation order."""
        return list(self._nodes.values())

    @property
    def networks(self) -> list[Network]:
        """All networks in creation order."""
        return list(self._networks.values())
