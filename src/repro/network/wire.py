"""Wire-level packet representation and byte codec.

A :class:`WirePacket` is what one NIC request puts on the wire: one or
more :class:`WireSegment` payload slices (several when the optimizer
aggregated packets or split a large message), plus protocol framing.
The network layer treats segment payloads as opaque — reassembly
semantics belong to the messaging layer above (:mod:`repro.madeleine`).

The module also defines the *byte-level* encoding used when a packet
actually crosses a socket (the live transport plane,
:mod:`repro.live.transport`): :func:`encode_frame` /
:func:`decode_frame` serialize one packet's framing — magic, version,
CRC-32 checksum, addressing, the ``meta`` control dict, and one
``(descriptor, offset, length, payload bytes)`` record per segment.
Segment payloads are JSON descriptors plus raw bytes rather than the
in-process :class:`~repro.madeleine.message.Fragment` objects the
simulator shares by reference; the live plane maps between the two.
Decoding is hardened: truncated, corrupted, or garbage input raises a
typed :class:`~repro.util.errors.WireError`, never a bare
``struct.error``/``IndexError``.
"""

from __future__ import annotations

import enum
import itertools
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.util.errors import ProtocolError, WireError

__all__ = [
    "PacketKind",
    "WireSegment",
    "WirePacket",
    "HEADER_BYTES_PER_SEGMENT",
    "PACKET_HEADER_BYTES",
    "META_CORR",
    "META_SENT_AT",
    "META_VIA",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "FRAME_PREFIX_BYTES",
    "DecodedSegment",
    "DecodedFrame",
    "correlation_id",
    "encode_frame",
    "encode_packet",
    "decode_frame",
]

#: Framing bytes per packet (channel id, kind, segment count).
PACKET_HEADER_BYTES = 16
#: Framing bytes per segment (payload id, offset, length).
HEADER_BYTES_PER_SEGMENT = 12

# ----------------------------------------------------------------------
# reserved ``meta`` extension-space keys (distributed tracing)
# ----------------------------------------------------------------------
# The ``meta`` dict is the wire header's open extension space: any JSON
# payload rides along without a format change.  The live plane reserves
# these keys so a receiving peer can correlate every decoded frame with
# the exact nic.send span that produced it on the sending peer.

#: Correlation id, unique per (sending node, packet) — see
#: :func:`correlation_id`.
META_CORR = "_corr"
#: Sender's run clock (seconds since the shared epoch) at encode time.
META_SENT_AT = "_sent_at"
#: Name of the sending NIC rail (e.g. ``"n0.mx00"``).
META_VIA = "_via"


def correlation_id(node: str, packet_id: int) -> str:
    """The wire-crossing correlation id stamped into packet meta.

    Packet ids are process-local counters, so namespacing by the sending
    node makes the pair unique across a whole live mesh.
    """
    return f"{node}#{packet_id}"

_packet_ids = itertools.count()


class PacketKind(enum.Enum):
    """Protocol role of a wire packet."""

    EAGER = "eager"  #: data sent inline, possibly aggregated
    RDV_REQ = "rdv_req"  #: rendezvous request (control)
    RDV_ACK = "rdv_ack"  #: rendezvous acknowledgement (control)
    RDV_DATA = "rdv_data"  #: rendezvous bulk data (zero-copy DMA)
    CTRL = "ctrl"  #: generic control / signalling message
    ACK = "ack"  #: transport-level delivery acknowledgement (reliability)

    @property
    def is_control(self) -> bool:
        """Whether the packet carries protocol control rather than payload."""
        return self in (PacketKind.RDV_REQ, PacketKind.RDV_ACK, PacketKind.CTRL, PacketKind.ACK)


@dataclass(frozen=True, slots=True)
class WireSegment:
    """A contiguous slice of one payload carried in a packet.

    ``payload`` is opaque to the network layer; the messaging layer uses
    it to locate the fragment being (partially) delivered.  ``offset``
    and ``length`` support splitting one fragment across several packets
    (multirail striping, rendezvous chunking).
    """

    payload: Any
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise ProtocolError(
                f"segment with negative offset/length ({self.offset}, {self.length})"
            )


@dataclass(frozen=True, slots=True)
class WirePacket:
    """One NIC request worth of bytes.

    ``meta`` carries control-protocol fields (rendezvous tokens, source
    engine hints); it never contributes to the wire size beyond the fixed
    framing constants.
    """

    kind: PacketKind
    src: str
    dst: str
    channel_id: int
    segments: tuple[WireSegment, ...] = ()
    meta: dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.kind in (PacketKind.EAGER, PacketKind.RDV_DATA) and not self.segments:
            raise ProtocolError(f"{self.kind.value} packet must carry segments")
        if self.src == self.dst:
            raise ProtocolError(f"packet addressed to its own node {self.src!r}")

    @property
    def payload_bytes(self) -> int:
        """Total payload bytes (without framing)."""
        return sum(s.length for s in self.segments)

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire, including framing."""
        return (
            PACKET_HEADER_BYTES
            + len(self.segments) * HEADER_BYTES_PER_SEGMENT
            + self.payload_bytes
        )

    @property
    def segment_count(self) -> int:
        """Number of payload slices aggregated into this packet."""
        return len(self.segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WirePacket(#{self.packet_id} {self.kind.value} {self.src}->{self.dst} "
            f"ch={self.channel_id} segs={len(self.segments)} bytes={self.payload_bytes})"
        )


# --------------------------------------------------------------------------
# Byte codec
# --------------------------------------------------------------------------

#: First four bytes of every encoded frame.
WIRE_MAGIC = b"RWIR"
#: Current frame format version.
WIRE_VERSION = 1

# magic(4) version(1) kind(1) flags(1) reserved(1) crc32(4) body_len(u32)
_PREFIX = struct.Struct("!4sBBBBII")
#: Size of the frame prefix.  The CRC covers only the *body* after it;
#: the flags/reserved prefix bytes are currently ignored by the decoder,
#: so a flip there is undetectable — fault injectors must aim past it.
FRAME_PREFIX_BYTES = _PREFIX.size
# channel_id(i32) src_len(u16) dst_len(u16) meta_len(u32) seg_count(u16)
_BODY_HEAD = struct.Struct("!iHHIH")
# desc_len(u32) offset(u64) length(u64)
_SEG_HEAD = struct.Struct("!IQQ")

_KIND_CODES = {kind: code for code, kind in enumerate(PacketKind)}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


@dataclass(frozen=True, slots=True)
class DecodedSegment:
    """One segment as it appears on the wire.

    ``descriptor`` is the sender's JSON routing record (flow id, fragment
    index, message layout …) — opaque to the codec; ``data`` is the raw
    payload slice covering ``[offset, offset + length)`` of the fragment.
    """

    descriptor: dict[str, Any]
    offset: int
    length: int
    data: bytes


@dataclass(frozen=True, slots=True)
class DecodedFrame:
    """A fully validated frame parsed from bytes."""

    kind: PacketKind
    src: str
    dst: str
    channel_id: int
    meta: dict[str, Any]
    segments: tuple[DecodedSegment, ...]


def encode_frame(
    kind: PacketKind,
    src: str,
    dst: str,
    channel_id: int,
    meta: dict[str, Any],
    segments: Sequence[tuple[dict[str, Any], int, int, bytes]] = (),
) -> bytes:
    """Serialize one packet's framing and payload into wire bytes.

    Each segment is ``(descriptor, offset, length, payload_bytes)``; the
    descriptor is any JSON-serializable dict the receiver needs to route
    the slice.  The returned buffer is self-delimiting (a length field in
    the prefix) and carries a CRC-32 over everything after the prefix, so
    :func:`decode_frame` can detect truncation and corruption.
    """
    src_b = src.encode("utf-8")
    dst_b = dst.encode("utf-8")
    meta_b = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    parts = [_BODY_HEAD.pack(channel_id, len(src_b), len(dst_b), len(meta_b), len(segments))]
    parts.append(src_b)
    parts.append(dst_b)
    parts.append(meta_b)
    for descriptor, offset, length, data in segments:
        if length != len(data):
            raise WireError(
                f"segment length field {length} disagrees with payload of {len(data)} bytes"
            )
        desc_b = json.dumps(descriptor, separators=(",", ":")).encode("utf-8")
        parts.append(_SEG_HEAD.pack(len(desc_b), offset, length))
        parts.append(desc_b)
        parts.append(data)
    body = b"".join(parts)
    prefix = _PREFIX.pack(
        WIRE_MAGIC, WIRE_VERSION, _KIND_CODES[kind], 0, 0, zlib.crc32(body), len(body)
    )
    return prefix + body


def encode_packet(packet: WirePacket, payloads: Sequence[tuple[dict[str, Any], bytes]]) -> bytes:
    """Encode a :class:`WirePacket` given per-segment descriptors + bytes.

    ``payloads`` pairs up positionally with ``packet.segments``; the
    offset/length framing comes from the packet's own segments.
    """
    if len(payloads) != len(packet.segments):
        raise WireError(
            f"packet has {len(packet.segments)} segments but {len(payloads)} payloads given"
        )
    return encode_frame(
        packet.kind,
        packet.src,
        packet.dst,
        packet.channel_id,
        packet.meta,
        [
            (descriptor, seg.offset, seg.length, data)
            for seg, (descriptor, data) in zip(packet.segments, payloads)
        ],
    )


class _Cursor:
    """Bounds-checked reader over a frame body — every overrun is a WireError."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def take(self, n: int, what: str) -> bytes:
        end = self._pos + n
        if end > len(self._data):
            raise WireError(
                f"truncated frame: {what} needs {n} bytes, {len(self._data) - self._pos} left"
            )
        chunk = self._data[self._pos : end]
        self._pos = end
        return chunk

    def unpack(self, fmt: struct.Struct, what: str) -> tuple[Any, ...]:
        return fmt.unpack(self.take(fmt.size, what))

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)


def _decode_json(raw: bytes, what: str) -> dict[str, Any]:
    try:
        value = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed {what} JSON: {exc}") from exc
    if not isinstance(value, dict):
        raise WireError(f"{what} must decode to an object, got {type(value).__name__}")
    return value


def decode_frame(data: bytes) -> DecodedFrame:
    """Parse and validate one encoded frame.

    Raises :class:`~repro.util.errors.WireError` on any malformed input:
    short prefix, bad magic, unsupported version, unknown packet kind,
    truncated body, CRC mismatch, or garbage JSON.  Trailing bytes after
    the declared body length are also rejected — the caller is expected
    to hand exactly one frame (stream splitting happens a layer above).
    """
    if len(data) < _PREFIX.size:
        raise WireError(f"frame shorter than {_PREFIX.size}-byte prefix ({len(data)} bytes)")
    try:
        magic, version, kind_code, _flags, _reserved, crc, body_len = _PREFIX.unpack(
            data[: _PREFIX.size]
        )
    except struct.error as exc:  # pragma: no cover - length guarded above
        raise WireError(f"unreadable frame prefix: {exc}") from exc
    if magic != WIRE_MAGIC:
        raise WireError(f"bad magic {magic!r} (expected {WIRE_MAGIC!r})")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version} (expected {WIRE_VERSION})")
    kind = _CODE_KINDS.get(kind_code)
    if kind is None:
        raise WireError(f"unknown packet kind code {kind_code}")
    body = data[_PREFIX.size :]
    if len(body) != body_len:
        raise WireError(f"frame body is {len(body)} bytes, prefix declared {body_len}")
    if zlib.crc32(body) != crc:
        raise WireError(f"checksum mismatch (crc32 {zlib.crc32(body):#010x} != {crc:#010x})")

    cur = _Cursor(body)
    channel_id, src_len, dst_len, meta_len, seg_count = cur.unpack(_BODY_HEAD, "body header")
    src = cur.take(src_len, "src").decode("utf-8", errors="replace")
    dst = cur.take(dst_len, "dst").decode("utf-8", errors="replace")
    meta = _decode_json(cur.take(meta_len, "meta"), "meta")
    segments = []
    for i in range(seg_count):
        desc_len, offset, length = cur.unpack(_SEG_HEAD, f"segment {i} header")
        descriptor = _decode_json(cur.take(desc_len, f"segment {i} descriptor"), "descriptor")
        payload = cur.take(length, f"segment {i} payload")
        segments.append(DecodedSegment(descriptor, offset, length, payload))
    if not cur.exhausted:
        raise WireError("trailing bytes after last segment")
    return DecodedFrame(kind, src, dst, channel_id, meta, tuple(segments))
