"""Wire-level packet representation.

A :class:`WirePacket` is what one NIC request puts on the wire: one or
more :class:`WireSegment` payload slices (several when the optimizer
aggregated packets or split a large message), plus protocol framing.
The network layer treats segment payloads as opaque — reassembly
semantics belong to the messaging layer above (:mod:`repro.madeleine`).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import ProtocolError

__all__ = ["PacketKind", "WireSegment", "WirePacket", "HEADER_BYTES_PER_SEGMENT", "PACKET_HEADER_BYTES"]

#: Framing bytes per packet (channel id, kind, segment count).
PACKET_HEADER_BYTES = 16
#: Framing bytes per segment (payload id, offset, length).
HEADER_BYTES_PER_SEGMENT = 12

_packet_ids = itertools.count()


class PacketKind(enum.Enum):
    """Protocol role of a wire packet."""

    EAGER = "eager"  #: data sent inline, possibly aggregated
    RDV_REQ = "rdv_req"  #: rendezvous request (control)
    RDV_ACK = "rdv_ack"  #: rendezvous acknowledgement (control)
    RDV_DATA = "rdv_data"  #: rendezvous bulk data (zero-copy DMA)
    CTRL = "ctrl"  #: generic control / signalling message
    ACK = "ack"  #: transport-level delivery acknowledgement (reliability)

    @property
    def is_control(self) -> bool:
        """Whether the packet carries protocol control rather than payload."""
        return self in (PacketKind.RDV_REQ, PacketKind.RDV_ACK, PacketKind.CTRL, PacketKind.ACK)


@dataclass(frozen=True, slots=True)
class WireSegment:
    """A contiguous slice of one payload carried in a packet.

    ``payload`` is opaque to the network layer; the messaging layer uses
    it to locate the fragment being (partially) delivered.  ``offset``
    and ``length`` support splitting one fragment across several packets
    (multirail striping, rendezvous chunking).
    """

    payload: Any
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise ProtocolError(
                f"segment with negative offset/length ({self.offset}, {self.length})"
            )


@dataclass(frozen=True, slots=True)
class WirePacket:
    """One NIC request worth of bytes.

    ``meta`` carries control-protocol fields (rendezvous tokens, source
    engine hints); it never contributes to the wire size beyond the fixed
    framing constants.
    """

    kind: PacketKind
    src: str
    dst: str
    channel_id: int
    segments: tuple[WireSegment, ...] = ()
    meta: dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.kind in (PacketKind.EAGER, PacketKind.RDV_DATA) and not self.segments:
            raise ProtocolError(f"{self.kind.value} packet must carry segments")
        if self.src == self.dst:
            raise ProtocolError(f"packet addressed to its own node {self.src!r}")

    @property
    def payload_bytes(self) -> int:
        """Total payload bytes (without framing)."""
        return sum(s.length for s in self.segments)

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire, including framing."""
        return (
            PACKET_HEADER_BYTES
            + len(self.segments) * HEADER_BYTES_PER_SEGMENT
            + self.payload_bytes
        )

    @property
    def segment_count(self) -> int:
        """Number of payload slices aggregated into this packet."""
        return len(self.segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WirePacket(#{self.packet_id} {self.kind.value} {self.src}->{self.dst} "
            f"ch={self.channel_id} segs={len(self.segments)} bytes={self.payload_bytes})"
        )
