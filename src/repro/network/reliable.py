"""Reliability protocol: ACK / timeout / retransmit over a faulty fabric.

The base transfer layer assumes a lossless network — every packet a NIC
emits arrives exactly once, in order.  Once a
:class:`~repro.network.faults.FaultPlane` is active that assumption
breaks, so a :class:`ReliableTransport` interposes between the NICs and
the fabric:

* **Sender side** — every packet is stamped with a per-stream sequence
  number (stream = ``(src, dst, channel)``), submitted to the fault
  lottery, and tracked until acknowledged.  A retransmit timer with
  exponential backoff re-sends lost or corrupted packets; a bounded
  retry budget turns a black-holed packet into a loud
  :class:`~repro.util.errors.TransportError` instead of a silent hang.
  When the original rail is down at retransmit time, the attempt **fails
  over** to any surviving NIC on the source node that reaches the
  destination (multirail failover at the transport level).

* **Receiver side** — an endpoint installed as the node's receive guard
  (:meth:`~repro.network.receiver.Receiver.install_guard`) acknowledges
  every intact arrival (duplicates included, so lost ACKs converge),
  discards corrupted copies un-ACKed, deduplicates retransmissions, and
  holds out-of-order packets in a reorder buffer, releasing them to
  :meth:`~repro.network.receiver.Receiver.dispatch` strictly in sequence
  so the messaging layer above never observes loss, duplication, or
  reordering.

Documented simplifications (mirroring the send-side focus of the base
model, DESIGN.md §6): retransmissions and ACKs travel with the link's
latency but do not re-occupy the NIC, and a failed-over retransmission
keeps the timing computed for the original rail.  The engine's
*scheduling* is therefore undisturbed by the reliability machinery; only
delivery, and the counters, change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.network.faults import FaultPlane
from repro.network.wire import PacketKind, WirePacket
from repro.sim.engine import Simulator
from repro.util.errors import ConfigurationError, TransportError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.fabric import Fabric
    from repro.network.nic import NIC
    from repro.sim.event import Event

__all__ = [
    "ReliabilityConfig",
    "TransportStats",
    "ReliableTransport",
    "SendWindow",
    "ReceiveLedger",
]


@dataclass(frozen=True, slots=True)
class ReliabilityConfig:
    """Tunables of the ACK/retransmit protocol.

    ``rto`` and ``ack_delay`` default to multiples of each packet's own
    one-way latency (heterogeneous rails get proportionate timeouts);
    set them explicitly to fix absolute values.
    """

    max_retries: int = 10
    rto: float | None = None  #: retransmit timeout; default 4 x one_way
    backoff: float = 2.0  #: timeout multiplier per failed attempt
    ack_delay: float | None = None  #: ACK return latency; default one_way

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.rto is not None and self.rto <= 0:
            raise ConfigurationError(f"rto must be > 0, got {self.rto}")
        if self.backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1, got {self.backoff}")
        if self.ack_delay is not None and self.ack_delay < 0:
            raise ConfigurationError(f"ack_delay must be >= 0, got {self.ack_delay}")

    @classmethod
    def from_spec(cls, spec) -> "ReliabilityConfig":
        """Build from a scenario ``"faults" → "reliability"`` sub-block."""
        spec = dict(spec)
        known = ("max_retries", "rto", "backoff", "ack_delay")
        for key in spec:
            if key not in known:
                raise ConfigurationError(
                    f"unknown reliability key {key!r} (known: {sorted(known)})"
                )
        kwargs: dict = {}
        if "max_retries" in spec:
            kwargs["max_retries"] = int(spec["max_retries"])
        for key in ("rto", "backoff", "ack_delay"):
            if key in spec and spec[key] is not None:
                kwargs[key] = float(spec[key])
        return cls(**kwargs)

    def rto_for(self, one_way: float, attempts: int) -> float:
        """Timeout for the (attempts+1)-th transmission of a packet."""
        base = self.rto if self.rto is not None else 4.0 * one_way
        return base * self.backoff**attempts

    def ack_delay_for(self, one_way: float) -> float:
        """Latency of the acknowledgement's return trip."""
        return self.ack_delay if self.ack_delay is not None else one_way


@dataclass(slots=True)
class TransportStats:
    """Cumulative reliability counters for one transport instance."""

    packets_sent: int = 0
    retransmits: int = 0
    failovers: int = 0
    exhausted: int = 0
    acks_sent: int = 0
    acks_dropped: int = 0
    corrupt_discarded: int = 0
    dups_discarded: int = 0
    reorder_held: int = 0
    delivered: int = 0


@dataclass(slots=True)
class _Pending:
    """Sender-side state for one unacknowledged packet."""

    packet: WirePacket
    nic: "NIC"
    one_way: float
    attempts: int = 0
    timer: "Event | None" = None


@dataclass(slots=True)
class SendWindow:
    """Transport-agnostic sender window: sequence stamping + unacked tracking.

    Carries no timers and no I/O — the owning transport decides *when*
    to retransmit; the window only answers *what* is outstanding.  Used
    by the simulated :class:`ReliableTransport` conceptually (which
    predates it) and concretely by the live plane's per-connection
    reliability (:mod:`repro.live.peer`).
    """

    next_seq: int = 0
    _unacked: dict = field(default_factory=dict)

    def stamp(self, item) -> int:
        """Assign the next sequence number to ``item`` and track it."""
        seq = self.next_seq
        self.next_seq += 1
        self._unacked[seq] = item
        return seq

    def ack(self, seq: int):
        """Retire one sequence number; returns its item or None if unknown."""
        return self._unacked.pop(seq, None)

    def get(self, seq: int):
        """The still-unacked item at ``seq``, or None."""
        return self._unacked.get(seq)

    @property
    def in_flight(self) -> int:
        """Stamped but not yet acknowledged."""
        return len(self._unacked)

    def pending(self) -> list:
        """All unacked ``(seq, item)`` pairs in sequence order."""
        return sorted(self._unacked.items())

    def drain(self) -> list:
        """Remove and return every unacked ``(seq, item)`` in order."""
        items = self.pending()
        self._unacked.clear()
        return items


@dataclass(slots=True)
class ReceiveLedger:
    """Transport-agnostic receiver ledger: exactly-once, in-order release.

    :meth:`admit` returns ``None`` for a duplicate (already released or
    already buffered), ``[]`` when the item is held for reordering, and
    the in-sequence run of released items otherwise.  The caller ACKs
    on any non-crash outcome — duplicates included, since the sender may
    only be retransmitting because the previous ACK was lost.
    """

    expected: int = 0
    _buffer: dict = field(default_factory=dict)
    dups: int = 0
    held: int = 0

    def admit(self, seq: int, item) -> list | None:
        """Accept one arrival: ``None`` for a duplicate (ACK it anyway —
        the first ACK may have been lost), ``[]`` when held for
        reordering, else the in-sequence run now released."""
        if seq < self.expected or seq in self._buffer:
            self.dups += 1
            return None
        if seq > self.expected:
            self._buffer[seq] = item
            self.held += 1
            return []
        released = [item]
        self.expected += 1
        while self.expected in self._buffer:
            released.append(self._buffer.pop(self.expected))
            self.expected += 1
        return released

    @property
    def buffered(self) -> int:
        """Out-of-order items currently held back."""
        return len(self._buffer)


class ReliableTransport:
    """Cluster-wide reliability layer over a :class:`FaultPlane`.

    One instance serves the whole fabric: sender state is keyed by
    packet id, receiver state by sequence stream, so a single object can
    arbitrate every rail — including cross-rail failover.
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: "Fabric",
        plane: FaultPlane | None = None,
        config: ReliabilityConfig | None = None,
    ) -> None:
        self._sim = sim
        self._fabric = fabric
        self.plane = plane if plane is not None else FaultPlane()
        self.config = config if config is not None else ReliabilityConfig()
        self.stats = TransportStats()
        self._pending: dict[int, _Pending] = {}
        self._next_seq: dict[tuple[str, str, int], int] = {}
        self._rx: dict[tuple[str, str, int], ReceiveLedger] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def install(self, fabric: "Fabric | None" = None) -> None:
        """Route every NIC through this transport and guard every receiver."""
        fabric = fabric if fabric is not None else self._fabric
        for node in fabric.nodes:
            for nic in node.nics:
                nic.transport = self
            node.receiver.install_guard(self._ingest)

    @property
    def in_flight(self) -> int:
        """Number of packets currently awaiting acknowledgement."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def transmit(self, nic: "NIC", packet: WirePacket, one_way: float) -> None:
        """Take over delivery of one freshly submitted packet.

        Called by :meth:`repro.network.nic.NIC.submit` in place of the
        direct fabric hand-off.  Stamps the per-stream sequence number,
        registers the pending record, and runs the first attempt.
        """
        stream = (packet.src, packet.dst, packet.channel_id)
        seq = self._next_seq.get(stream, 0)
        self._next_seq[stream] = seq + 1
        packet.meta["rel_seq"] = seq
        pending = _Pending(packet=packet, nic=nic, one_way=one_way)
        self._pending[packet.packet_id] = pending
        self.stats.packets_sent += 1
        self._send_attempt(pending)

    def _send_attempt(self, pending: _Pending) -> None:
        """One transmission attempt: fault lottery, arrival, retransmit timer."""
        nic, packet = pending.nic, pending.packet
        if nic.failed:
            # The rail is dark: the attempt is lost outright.  The timer
            # still arms, so the retransmit path gets a chance to fail
            # over (or the rail a chance to recover).
            nic.stats.drops += 1
        else:
            verdict = self.plane.judge(nic)
            tracer = self._sim.tracer
            if verdict.drop:
                nic.stats.drops += 1
                if tracer.enabled:
                    tracer.emit(
                        self._sim.now,
                        f"rel:{nic.name}",
                        "rel.drop",
                        packet=packet.packet_id,
                        attempt=pending.attempts,
                    )
            else:
                if verdict.corrupt:
                    nic.stats.corruptions += 1
                self._sim.schedule(
                    pending.one_way + verdict.delay,
                    self._on_arrival,
                    packet,
                    nic,
                    pending.one_way,
                    verdict.corrupt,
                )
                if verdict.duplicate:
                    nic.stats.duplicates += 1
                    self._sim.schedule(
                        pending.one_way + verdict.dup_delay,
                        self._on_arrival,
                        packet,
                        nic,
                        pending.one_way,
                        verdict.corrupt,
                    )
        pending.timer = self._sim.schedule(
            self.config.rto_for(pending.one_way, pending.attempts),
            self._on_timeout,
            packet.packet_id,
        )

    def _on_timeout(self, packet_id: int) -> None:
        pending = self._pending.get(packet_id)
        if pending is None:  # pragma: no cover - timer cancelled on ACK
            return
        if pending.attempts >= self.config.max_retries:
            self.stats.exhausted += 1
            del self._pending[packet_id]
            raise TransportError(
                f"packet #{packet_id} ({pending.packet.kind.value} "
                f"{pending.packet.src}->{pending.packet.dst}) unacknowledged after "
                f"{pending.attempts + 1} attempts on NIC {pending.nic.name!r}"
            )
        pending.attempts += 1
        if pending.nic.failed:
            fallback = self._failover_nic(pending)
            if fallback is not None:
                tracer = self._sim.tracer
                if tracer.enabled:
                    tracer.emit(
                        self._sim.now,
                        f"rel:{pending.nic.name}",
                        "rel.failover",
                        packet=packet_id,
                        to=fallback.name,
                    )
                pending.nic = fallback
                self.stats.failovers += 1
        self.stats.retransmits += 1
        pending.nic.stats.retransmits += 1
        tracer = self._sim.tracer
        if tracer.enabled:
            tracer.emit(
                self._sim.now,
                f"rel:{pending.nic.name}",
                "rel.retransmit",
                packet=packet_id,
                attempt=pending.attempts,
            )
        self._send_attempt(pending)

    def _failover_nic(self, pending: _Pending) -> "NIC | None":
        """First healthy NIC on the source node that reaches the destination."""
        node = self._fabric.node(pending.packet.src)
        for nic in node.nics:
            if not nic.failed and nic is not pending.nic and nic.reaches(pending.packet.dst):
                return nic
        return None

    def _on_ack(self, packet_id: int) -> None:
        pending = self._pending.pop(packet_id, None)
        if pending is None:
            return  # late ACK for an already-acknowledged packet
        if pending.timer is not None:
            self._sim.cancel(pending.timer)

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def _on_arrival(
        self, packet: WirePacket, nic: "NIC", one_way: float, corrupt: bool
    ) -> None:
        """One copy of a packet reaching the destination node."""
        if corrupt:
            # Checksum failure: discard without ACK; the retransmit timer
            # will re-send an intact copy.
            self.stats.corrupt_discarded += 1
            return
        self._maybe_ack(packet, nic, one_way)
        self._fabric.node(packet.dst).receiver.deliver(packet)

    def _maybe_ack(self, packet: WirePacket, nic: "NIC", one_way: float) -> None:
        """Acknowledge an intact arrival (the ACK itself may be lost).

        Duplicates are re-ACKed: the sender may be retransmitting only
        because the previous ACK was dropped.
        """
        if self.plane.judge_ack(nic):
            self.stats.acks_dropped += 1
            return
        self.stats.acks_sent += 1
        self._sim.schedule(
            self.config.ack_delay_for(one_way), self._on_ack, packet.packet_id
        )

    def _ingest(self, packet: WirePacket) -> None:
        """Receive-guard entry: dedup + reorder, then in-sequence dispatch.

        Installed via
        :meth:`~repro.network.receiver.Receiver.install_guard`, so any
        path that delivers to a guarded receiver — transport arrivals or
        a direct ``deliver`` call — gets the same exactly-once, in-order
        contract.
        """
        if packet.kind is PacketKind.ACK:  # pragma: no cover - ACKs bypass NICs
            self._on_ack(packet.meta["ack_of"])
            return
        seq = packet.meta.get("rel_seq")
        receiver = self._fabric.node(packet.dst).receiver
        if seq is None:
            # Unsequenced packet (injected directly in a test): pass through.
            receiver.dispatch(packet)
            return
        ledger = self._rx.setdefault(
            (packet.src, packet.dst, packet.channel_id), ReceiveLedger()
        )
        released = ledger.admit(seq, packet)
        if released is None:
            self.stats.dups_discarded += 1
            return
        tracer = self._sim.tracer
        if not released:
            self.stats.reorder_held += 1
            if tracer.enabled:
                tracer.emit(
                    self._sim.now,
                    f"rel:{packet.dst}",
                    "reorder.enter",
                    packet=packet.packet_id,
                    src=packet.src,
                    seq=seq,
                    expected=ledger.expected,
                )
            return
        if tracer.enabled:
            # released[0] is the arriving packet (never buffered); any
            # trailing packets sat in the reorder buffer until now.
            for ready in released[1:]:
                tracer.emit(
                    self._sim.now,
                    f"rel:{packet.dst}",
                    "reorder.release",
                    packet=ready.packet_id,
                    src=ready.src,
                )
        for ready in released:
            receiver.dispatch(ready)
            self.stats.delivered += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReliableTransport(in_flight={len(self._pending)}, "
            f"retransmits={self.stats.retransmits}, failovers={self.stats.failovers})"
        )
