"""Simulated high-speed network substrate.

This package models the *transfer layer* of Figure 1 of the paper:

* :mod:`~repro.network.model` — per-technology transfer cost models
  (PIO/DMA α+β terms, copy costs, gather/scatter overheads);
* :mod:`~repro.network.technologies` — calibrated presets for
  Myrinet/MX, Quadrics/Elan (QsNet), InfiniBand and GigE/TCP;
* :mod:`~repro.network.wire` — wire packets and segments;
* :mod:`~repro.network.nic` — the NIC busy/idle state machine whose
  *idle transition* triggers the optimizer (paper §3);
* :mod:`~repro.network.virtual` — NIC virtualization: channels /
  multiplexing units and traffic classes (paper §2);
* :mod:`~repro.network.fabric` — nodes, networks, and all-to-all
  connectivity;
* :mod:`~repro.network.receiver` — receiver-side demultiplexing and
  control-packet dispatch;
* :mod:`~repro.network.faults` — seeded fault injection (drop, corrupt,
  duplicate, jitter, rail outages);
* :mod:`~repro.network.reliable` — ACK/retransmit reliability protocol
  with dedup, reordering repair, and multirail failover.
"""

from repro.network.fabric import Fabric, Network, Node
from repro.network.faults import FaultPlane, FaultSpec, FaultVerdict, RailOutage
from repro.network.model import LinkModel, TransferMode
from repro.network.nic import NIC, NicStats
from repro.network.receiver import Receiver
from repro.network.reliable import ReliabilityConfig, ReliableTransport, TransportStats
from repro.network.technologies import (
    TECHNOLOGIES,
    gige_tcp,
    infiniband,
    myrinet_mx,
    quadrics_elan,
)
from repro.network.virtual import Channel, ChannelPool, TrafficClass
from repro.network.wire import PacketKind, WirePacket, WireSegment

__all__ = [
    "Channel",
    "ChannelPool",
    "Fabric",
    "FaultPlane",
    "FaultSpec",
    "FaultVerdict",
    "LinkModel",
    "NIC",
    "Network",
    "NicStats",
    "Node",
    "PacketKind",
    "RailOutage",
    "Receiver",
    "ReliabilityConfig",
    "ReliableTransport",
    "TECHNOLOGIES",
    "TransportStats",
    "TrafficClass",
    "TransferMode",
    "WirePacket",
    "WireSegment",
    "gige_tcp",
    "infiniband",
    "myrinet_mx",
    "quadrics_elan",
]
