"""Declarative scenarios: dict/JSON in, cluster + workloads + report out.

A scenario is a plain mapping (hand-written, or loaded from a JSON
file) describing the cluster, the workloads, and the run window::

    {
      "name": "mixed-middleware",
      "cluster": {
        "n_nodes": 2,
        "networks": [["mx", 1]],
        "engine": "optimizing",
        "strategy": "aggregate",
        "policy": "pooled",
        "config": {"lookahead_window": 16},
        "seed": 0
      },
      "workloads": [
        {"app": "pingpong", "src": "n0", "dst": "n1", "count": 50},
        {"app": "stream", "src": "n0", "dst": "n1", "size": 1024,
         "count": 100, "traffic_class": "bulk"},
        {"app": "barrier", "nodes": ["n0", "n1"], "rounds": 5}
      ],
      "faults": {
        "drop": 0.05,
        "outages": [{"nic": "n0.mx00", "at": 0.002, "recover": 0.004}],
        "reliability": {"max_retries": 10}
      },
      "observability": {"sample_interval": 1e-5, "ring_buffer": 65536},
      "run": {"until": null, "warmup": 0.0}
    }

The optional ``"faults"`` block activates the fault-injection plane and
reliability protocol (:mod:`repro.network.faults`,
:mod:`repro.network.reliable`); the optional ``"observability"`` block
attaches trace capture and the periodic sampler
(:mod:`repro.obs.plane`).  Unknown keys anywhere in the scenario
are rejected with :class:`~repro.util.errors.ConfigurationError` naming
the bad key — a typo'd knob silently ignored would invalidate the
experiment it configures.

:func:`run_scenario` executes it and returns ``(report, apps)``; the
``python -m repro run`` CLI wraps this for files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core.adaptive import AdaptiveChannels
from repro.core.channels import (
    ChannelPolicy,
    OneToOneChannels,
    PooledChannels,
    WeightedChannels,
)
from repro.core.config import EngineConfig
from repro.middleware import (
    AllReduceApp,
    AppBase,
    BarrierApp,
    BroadcastApp,
    ControlPlaneApp,
    DsmApp,
    GlobalArraysApp,
    HaloExchangeApp,
    PingPongApp,
    RpcApp,
    StreamApp,
)
from repro.network.virtual import TrafficClass
from repro.runtime.cluster import Cluster
from repro.runtime.metrics import SessionReport
from repro.runtime.session import run_session
from repro.util.errors import ConfigurationError

__all__ = [
    "APP_TYPES",
    "POLICY_TYPES",
    "build_app",
    "build_scenario",
    "run_scenario",
    "load_scenario_file",
]

#: Workload app name → (class, endpoint kind: "pair" or "group").
APP_TYPES: dict[str, tuple[type, str]] = {
    "pingpong": (PingPongApp, "pair"),
    "stream": (StreamApp, "pair"),
    "rpc": (RpcApp, "pair"),
    "dsm": (DsmApp, "pair"),
    "global_arrays": (GlobalArraysApp, "pair"),
    "control": (ControlPlaneApp, "pair"),
    "broadcast": (BroadcastApp, "group"),
    "barrier": (BarrierApp, "group"),
    "allreduce": (AllReduceApp, "group"),
    "halo": (HaloExchangeApp, "group"),
}

#: Channel policy name → factory.
POLICY_TYPES: dict[str, Callable[[], ChannelPolicy]] = {
    "pooled": lambda: PooledChannels(by_class=True),
    "shared": lambda: PooledChannels(by_class=False),
    "one-to-one": OneToOneChannels,
    "weighted": WeightedChannels,
    "adaptive": AdaptiveChannels,
}

#: Keys a scenario mapping may carry at each level.
_SCENARIO_KEYS = frozenset(
    {
        "name",
        "description",
        "cluster",
        "workloads",
        "faults",
        "observability",
        "tuner",
        "run",
    }
)
_CLUSTER_KEYS = frozenset(
    {"n_nodes", "networks", "engine", "strategy", "policy", "config", "seed"}
)
_RUN_KEYS = frozenset({"until", "warmup"})


def _reject_unknown_keys(spec: Mapping[str, Any], known: frozenset, where: str) -> None:
    for key in spec:
        if key not in known:
            raise ConfigurationError(
                f"unknown {where} key {key!r} (known: {sorted(known)})"
            )


def _parse_traffic_class(value: Any) -> Any:
    if isinstance(value, str):
        try:
            return TrafficClass(value)
        except ValueError:
            raise ConfigurationError(
                f"unknown traffic class {value!r} "
                f"(known: {[c.value for c in TrafficClass]})"
            ) from None
    return value


def build_app(spec: Mapping[str, Any]) -> AppBase:
    """One workload-list entry into an (uninstalled) app instance.

    Public because the live plane builds its apps per peer process from
    the same scenario grammar (:mod:`repro.live.peer`)."""
    spec = dict(spec)
    try:
        app_name = spec.pop("app")
    except KeyError:
        raise ConfigurationError(f"workload entry missing 'app': {spec}") from None
    try:
        app_type, endpoint_kind = APP_TYPES[app_name]
    except KeyError:
        raise ConfigurationError(
            f"unknown app {app_name!r} (known: {sorted(APP_TYPES)})"
        ) from None
    if "traffic_class" in spec:
        spec["traffic_class"] = _parse_traffic_class(spec["traffic_class"])
    try:
        if endpoint_kind == "pair":
            src = spec.pop("src")
            dst = spec.pop("dst")
            return app_type(src, dst, **spec)
        nodes = spec.pop("nodes")
        return app_type(nodes, **spec)
    except KeyError as missing:
        raise ConfigurationError(
            f"app {app_name!r} missing endpoint key {missing}"
        ) from None
    except TypeError as bad:
        raise ConfigurationError(f"app {app_name!r}: {bad}") from None


def build_scenario(scenario: Mapping[str, Any]) -> tuple[Cluster, list[AppBase]]:
    """Build the cluster and (uninstalled) workload apps of a scenario."""
    _reject_unknown_keys(scenario, _SCENARIO_KEYS, "scenario")
    cluster_spec = dict(scenario.get("cluster", {}))
    _reject_unknown_keys(cluster_spec, _CLUSTER_KEYS, "cluster")
    policy_name = cluster_spec.pop("policy", None)
    if policy_name is not None:
        try:
            cluster_spec["policy"] = POLICY_TYPES[policy_name]
        except KeyError:
            raise ConfigurationError(
                f"unknown policy {policy_name!r} (known: {sorted(POLICY_TYPES)})"
            ) from None
    config_spec = cluster_spec.pop("config", None)
    if config_spec is not None:
        try:
            cluster_spec["config"] = EngineConfig(**config_spec)
        except TypeError as bad:
            raise ConfigurationError(f"engine config: {bad}") from None
    networks = cluster_spec.get("networks")
    if networks is not None:
        cluster_spec["networks"] = [tuple(net) for net in networks]
    faults_spec = scenario.get("faults")
    if faults_spec is not None:
        cluster_spec["faults"] = faults_spec
    obs_spec = scenario.get("observability")
    if obs_spec is not None:
        cluster_spec["observability"] = obs_spec
    tuner_spec = scenario.get("tuner")
    if tuner_spec is not None:
        cluster_spec["tuner"] = tuner_spec
    cluster = Cluster(**cluster_spec)
    apps = [build_app(entry) for entry in scenario.get("workloads", [])]
    if not apps:
        raise ConfigurationError("scenario has no workloads")
    return cluster, apps


def run_scenario(
    scenario: Mapping[str, Any],
) -> tuple[SessionReport, Cluster, list[AppBase]]:
    """Build and execute a scenario; returns (report, cluster, apps)."""
    cluster, apps = build_scenario(scenario)
    run_spec = scenario.get("run", {})
    _reject_unknown_keys(run_spec, _RUN_KEYS, "run")
    report = run_session(
        cluster,
        [app.install for app in apps],
        until=run_spec.get("until"),
        warmup=run_spec.get("warmup", 0.0),
    )
    return report, cluster, apps


def load_scenario_file(path: str | Path) -> dict:
    """Load a scenario mapping from a JSON file."""
    text = Path(path).read_text(encoding="utf-8")
    scenario = json.loads(text)
    if not isinstance(scenario, dict):
        raise ConfigurationError(f"scenario file {path} must contain a JSON object")
    return scenario
