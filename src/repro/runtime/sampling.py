"""Periodic time-series sampling of a running cluster.

A :class:`PeriodicSampler` snapshots engine backlogs, NIC cumulative
busy time, and rendezvous state at a fixed virtual-time interval —
the raw material for time-series views of experiments (when did the
backlog peak? when did the adaptive policy's promotion pay off?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

__all__ = ["Sample", "PeriodicSampler"]


@dataclass(frozen=True, slots=True)
class Sample:
    """One snapshot of a cluster's send-side state."""

    time: float
    backlog: int  #: pending entries across all engines
    backlog_bytes: int
    rendezvous_in_flight: int
    nic_busy_time: float  #: cumulative busy seconds over all NICs
    messages_completed: int


class PeriodicSampler:
    """Samples a cluster every ``interval`` virtual seconds.

    Start it *before* running the simulation.  It reschedules itself
    until ``horizon``, or — when no horizon is given — until the event
    queue is otherwise empty (the simulation has drained), so finite
    workloads still terminate under ``run_until_idle``.
    """

    def __init__(
        self,
        cluster: "Cluster",
        interval: float,
        horizon: float | None = None,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(f"interval must be > 0, got {interval}")
        if horizon is not None and horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon}")
        self._cluster = cluster
        self.interval = interval
        self.horizon = horizon
        self.samples: list[Sample] = []
        cluster.sim.schedule(0.0, self._tick)

    def _tick(self) -> None:
        cluster = self._cluster
        now = cluster.sim.now
        if self.horizon is not None and now > self.horizon:
            return
        backlog = sum(engine.backlog for engine in cluster.engines.values())
        backlog_bytes = sum(
            engine.waiting.total_pending_bytes for engine in cluster.engines.values()
        )
        rdv = sum(
            engine.rendezvous_in_flight for engine in cluster.engines.values()
        )
        busy = sum(
            nic.stats.busy_time for node in cluster.fabric.nodes for nic in node.nics
        )
        completed = sum(
            r.messages_completed for r in cluster.reassemblers.values()
        )
        sample = Sample(
            time=now,
            backlog=backlog,
            backlog_bytes=backlog_bytes,
            rendezvous_in_flight=rdv,
            nic_busy_time=busy,
            messages_completed=completed,
        )
        self.samples.append(sample)
        if self.horizon is None and cluster.sim.pending_events == 0:
            # Nothing else scheduled: the simulation has fully drained
            # (the tick itself was just consumed).  Stop so
            # run_until_idle terminates.
            return
        cluster.sim.schedule(self.interval, self._tick)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def series(self, field: str) -> np.ndarray:
        """One sampled field as a numpy array (e.g. ``"backlog"``)."""
        try:
            return np.asarray([getattr(s, field) for s in self.samples])
        except AttributeError:
            raise ConfigurationError(f"unknown sample field {field!r}") from None

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps."""
        return self.series("time")

    def peak_backlog(self) -> tuple[float, int]:
        """(time, value) of the deepest sampled backlog."""
        if not self.samples:
            raise ConfigurationError("no samples collected")
        peak = max(self.samples, key=lambda s: s.backlog)
        return (peak.time, peak.backlog)

    def utilization_between(self, t0: float, t1: float) -> float:
        """Approximate mean per-NIC busy fraction between two sample times.

        NIC busy time accrues at submit time, so a request straddling
        the window boundary is attributed to the window it started in;
        the result is clamped to [0, 1].
        """
        if t1 <= t0:
            raise ConfigurationError(f"bad window [{t0}, {t1}]")
        busy = self.series("nic_busy_time")
        times = self.times
        i0 = int(np.searchsorted(times, t0))
        i1 = int(np.searchsorted(times, t1))
        i1 = min(i1, len(self.samples) - 1)
        if i0 >= i1:
            raise ConfigurationError("window contains fewer than two samples")
        nic_count = sum(
            len(node.nics) for node in self._cluster.fabric.nodes
        )
        delta_busy = busy[i1] - busy[i0]
        delta_t = times[i1] - times[i0]
        if nic_count == 0:
            return 0.0
        return float(min(delta_busy / (delta_t * nic_count), 1.0))
