"""Session helpers: run a workload on a cluster, return the report.

The benchmark harness and the examples use :func:`run_session` to keep
the "build cluster → start workloads → drain → report" sequence in one
place.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.runtime.cluster import Cluster
from repro.runtime.metrics import SessionReport
from repro.util.errors import SimulationError

__all__ = ["run_session"]

#: A workload installer: receives the cluster, starts processes /
#: subscriptions, and may return anything (ignored).
WorkloadInstaller = Callable[[Cluster], object]


def run_session(
    cluster: Cluster,
    workloads: Sequence[WorkloadInstaller],
    *,
    until: float | None = None,
    warmup: float = 0.0,
    max_events: int = 50_000_000,
) -> SessionReport:
    """Install workloads, run the cluster, and return the report.

    With ``until=None`` the simulation drains completely (finite
    workloads); otherwise it stops at the given virtual time.
    ``warmup`` excludes messages submitted before that time from the
    report (steady-state measurements).
    """
    if warmup < 0:
        raise SimulationError(f"warmup must be >= 0, got {warmup}")
    if until is not None and warmup >= until:
        raise SimulationError(f"warmup {warmup} must precede until {until}")
    for install in workloads:
        install(cluster)
    if until is None:
        cluster.run_until_idle(max_events=max_events)
    else:
        cluster.run(until=until)
    obs_plane = getattr(cluster, "obs", None)
    if obs_plane is not None:
        # Mirror end-of-run stats into the metrics registry so every
        # session exit leaves a complete exposition (idempotent).
        obs_plane.finalize()
    return cluster.report(since=warmup)
