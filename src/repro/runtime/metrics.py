"""Message-level metrics and session reports.

A :class:`MetricsCollector` hooks every node's reassembler and records
one :class:`MessageRecord` per completed message.  At the end of a run,
:meth:`MetricsCollector.report` combines those records with engine and
NIC counters into a :class:`SessionReport` — the object every benchmark
prints its table rows from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.madeleine.message import Message
from repro.madeleine.rx import MessageReassembler
from repro.network.virtual import TrafficClass
from repro.util.stats import Percentiles

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

__all__ = ["MessageRecord", "LatencySummary", "SessionReport", "MetricsCollector"]


def _nan_to_none(x: float):
    return None if isinstance(x, float) and math.isnan(x) else x


@dataclass(frozen=True, slots=True)
class MessageRecord:
    """One completed message."""

    message_id: int
    flow_name: str
    traffic_class: TrafficClass
    src: str
    dst: str
    size: int
    fragments: int
    submit_time: float
    complete_time: float

    @property
    def latency(self) -> float:
        """Submit-to-full-delivery time (virtual seconds)."""
        return self.complete_time - self.submit_time


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """Latency statistics over a record subset."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    minimum: float
    maximum: float

    def to_dict(self) -> dict:
        """JSON-ready view (NaNs become None for strict parsers)."""

        def _num(x: float):
            return None if isinstance(x, float) and math.isnan(x) else x

        return {
            "count": self.count,
            "mean": _num(self.mean),
            "p50": _num(self.p50),
            "p90": _num(self.p90),
            "p99": _num(self.p99),
            "min": _num(self.minimum),
            "max": _num(self.maximum),
        }

    @classmethod
    def of(cls, latencies: Iterable[float]) -> "LatencySummary":
        arr = np.asarray(list(latencies), dtype=float)
        if arr.size == 0:
            nan = math.nan
            return cls(0, nan, nan, nan, nan, nan, nan)
        p = Percentiles.of(arr)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=p.p50,
            p90=p.p90,
            p99=p.p99,
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )


@dataclass(frozen=True, slots=True)
class SessionReport:
    """Aggregated results of one experiment run."""

    duration: float
    messages: int
    total_bytes: int
    latency: LatencySummary
    latency_by_class: dict[TrafficClass, LatencySummary]
    throughput: float  #: delivered payload bytes / duration
    message_rate: float  #: completed messages / duration
    network_transactions: int  #: total NIC requests, all kinds
    data_packets: int
    control_packets: int
    aggregation_ratio: float  #: mean segments per data packet
    nic_utilization: float  #: mean busy fraction over all NICs
    host_time: float  #: total host CPU time consumed by sends (s)
    rdv_count: int
    #: Fault/reliability counters; all zero on a lossless run.
    retransmits: int = 0
    packets_dropped: int = 0
    packets_corrupted: int = 0
    packets_duplicated: int = 0
    failovers: int = 0  #: engine rail-down re-routes + transport NIC switches
    rdv_timeouts: int = 0
    #: Degraded completion (live runs): at least one peer died mid-run
    #: and the report merges only the survivors' views.
    degraded: bool = False
    #: Submitted messages abandoned because their destination peer died.
    lost_messages: int = 0
    #: Cluster-wide message-latency tails from the observability plane's
    #: pooled quantile sketch (NaN when the run carried no tracing):
    #: online estimates within the sketch's rank-error bound, unlike
    #: ``latency.p99`` which is exact over the raw records.
    latency_p99_us: float = math.nan
    latency_p999_us: float = math.nan

    def to_dict(self) -> dict:
        """Full JSON-ready view of the report (``repro run --json``)."""
        return {
            "duration": self.duration,
            "messages": self.messages,
            "total_bytes": self.total_bytes,
            "latency": self.latency.to_dict(),
            "latency_by_class": {
                tc.value: summary.to_dict()
                for tc, summary in self.latency_by_class.items()
            },
            "throughput": self.throughput,
            "message_rate": self.message_rate,
            "network_transactions": self.network_transactions,
            "data_packets": self.data_packets,
            "control_packets": self.control_packets,
            "aggregation_ratio": self.aggregation_ratio,
            "nic_utilization": self.nic_utilization,
            "host_time": self.host_time,
            "rdv_count": self.rdv_count,
            "retransmits": self.retransmits,
            "packets_dropped": self.packets_dropped,
            "packets_corrupted": self.packets_corrupted,
            "packets_duplicated": self.packets_duplicated,
            "failovers": self.failovers,
            "rdv_timeouts": self.rdv_timeouts,
            "degraded": self.degraded,
            "lost_messages": self.lost_messages,
            "latency_p99_us": _nan_to_none(self.latency_p99_us),
            "latency_p999_us": _nan_to_none(self.latency_p999_us),
        }

    def row(self) -> dict[str, float]:
        """Flat numeric view for table printing."""
        return {
            "messages": self.messages,
            "bytes": self.total_bytes,
            "mean_lat_us": self.latency.mean * 1e6,
            "p99_lat_us": self.latency.p99 * 1e6,
            "tput_MBps": self.throughput / 1e6,
            "msg_per_s": self.message_rate,
            "transactions": self.network_transactions,
            "agg_ratio": self.aggregation_ratio,
            "nic_util": self.nic_utilization,
            "retransmits": self.retransmits,
            "failovers": self.failovers,
            "dropped": self.packets_dropped,
            "latency_p99_us": self.latency_p99_us,
            "latency_p999_us": self.latency_p999_us,
        }


class MetricsCollector:
    """Collects completed-message records across a cluster."""

    def __init__(self) -> None:
        self.records: list[MessageRecord] = []

    def attach(self, reassembler: MessageReassembler) -> None:
        """Hook one node's reassembler (call once per node)."""
        reassembler.on_message_complete = self._on_complete

    def _on_complete(self, message: Message, now: float) -> None:
        assert message.submit_time is not None
        self.records.append(
            MessageRecord(
                message_id=message.message_id,
                flow_name=message.flow.name,
                traffic_class=message.flow.traffic_class,
                src=message.flow.src,
                dst=message.flow.dst,
                size=message.total_size,
                fragments=len(message.fragments),
                submit_time=message.submit_time,
                complete_time=now,
            )
        )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def latencies(
        self,
        traffic_class: TrafficClass | None = None,
        flow_name: str | None = None,
        since: float = 0.0,
    ) -> list[float]:
        """Latency samples, optionally filtered."""
        return [
            r.latency
            for r in self.records
            if (traffic_class is None or r.traffic_class is traffic_class)
            and (flow_name is None or r.flow_name == flow_name)
            and r.submit_time >= since
        ]

    def report(self, cluster: "Cluster", since: float = 0.0) -> SessionReport:
        """Build the session report for records submitted after ``since``."""
        records = [r for r in self.records if r.submit_time >= since]
        latencies = [r.latency for r in records]
        total_bytes = sum(r.size for r in records)
        last_complete = max((r.complete_time for r in records), default=cluster.sim.now)
        duration = max(last_complete - since, 0.0)

        by_class: dict[TrafficClass, LatencySummary] = {}
        for traffic_class in TrafficClass:
            samples = [r.latency for r in records if r.traffic_class is traffic_class]
            if samples:
                by_class[traffic_class] = LatencySummary.of(samples)

        transactions = 0
        busy = 0.0
        host = 0.0
        nic_count = 0
        for node in cluster.fabric.nodes:
            for nic in node.nics:
                transactions += nic.stats.requests
                busy += nic.stats.busy_time
                host += nic.stats.host_time
                nic_count += 1
        data_packets = sum(e.stats.data_packets for e in cluster.engines.values())
        segments = sum(e.stats.data_segments for e in cluster.engines.values())
        control = sum(
            e.stats.dispatches - e.stats.data_packets for e in cluster.engines.values()
        )
        rdv = sum(e.stats.rdv_parked for e in cluster.engines.values())
        elapsed = cluster.sim.now if cluster.sim.now > 0 else 1.0

        transport = getattr(cluster, "transport", None)
        plane = getattr(cluster, "fault_plane", None)
        retransmits = transport.stats.retransmits if transport is not None else 0
        failovers = sum(e.stats.failovers for e in cluster.engines.values())
        if transport is not None:
            failovers += transport.stats.failovers
        dropped = plane.stats.drops if plane is not None else 0
        corrupted = plane.stats.corruptions if plane is not None else 0
        duplicated = plane.stats.duplicates if plane is not None else 0
        rdv_timeouts = sum(e.stats.rdv_timeouts for e in cluster.engines.values())

        # Tail columns from the observability plane's message-latency
        # sketches (traced runs only; NaN otherwise).  Imported here so a
        # bare simulation never pays the obs import.
        p99_us = p999_us = math.nan
        obs_plane = getattr(cluster, "obs", None)
        if obs_plane is not None:
            from repro.obs.tails import pooled_message_sketch

            pooled = pooled_message_sketch(obs_plane.registry)
            if pooled is not None:
                p99_us = pooled.quantile(0.99)
                p999_us = pooled.quantile(0.999)

        return SessionReport(
            duration=duration,
            messages=len(records),
            total_bytes=total_bytes,
            latency=LatencySummary.of(latencies),
            latency_by_class=by_class,
            throughput=total_bytes / duration if duration > 0 else 0.0,
            message_rate=len(records) / duration if duration > 0 else 0.0,
            network_transactions=transactions,
            data_packets=data_packets,
            control_packets=control,
            aggregation_ratio=segments / data_packets if data_packets else 0.0,
            nic_utilization=busy / (nic_count * elapsed) if nic_count else 0.0,
            host_time=host,
            rdv_count=rdv,
            retransmits=retransmits,
            packets_dropped=dropped,
            packets_corrupted=corrupted,
            packets_duplicated=duplicated,
            failovers=failovers,
            rdv_timeouts=rdv_timeouts,
            latency_p99_us=p99_us,
            latency_p999_us=p999_us,
        )
