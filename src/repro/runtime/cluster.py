"""Declarative cluster assembly.

``Cluster`` wires the full stack of Figure 1 for every node:

* a :class:`~repro.network.fabric.Fabric` with one or more networks
  (possibly of different technologies — heterogeneous multirail);
* per node: NICs, drivers (from the registry), a communication engine
  (optimizing or legacy), a reassembler, and a
  :class:`~repro.madeleine.api.MadAPI` facade;
* a shared :class:`~repro.runtime.metrics.MetricsCollector` and seeded
  RNG registry.

Example
-------
::

    cluster = Cluster(n_nodes=2, networks=[("mx", 2), ("elan", 1)],
                      engine="optimizing", strategy="aggregate")
    api0 = cluster.api("n0")
    flow = api0.open_flow("n1")
    api0.send(flow, 4096)
    cluster.run_until_idle()
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.baseline.legacy import LegacyEngine
from repro.core.channels import ChannelPolicy, PooledChannels
from repro.drivers.capabilities import DriverCapabilities
from repro.core.config import EngineConfig
from repro.core.engine import CommEngineBase, OptimizingEngine
from repro.core.strategies.base import Strategy, make_strategy
from repro.drivers.registry import make_driver
from repro.madeleine.api import MadAPI
from repro.madeleine.rx import MessageReassembler
from repro.network.fabric import Fabric
from repro.network.faults import FaultPlane
from repro.network.reliable import ReliabilityConfig, ReliableTransport
from repro.network.technologies import TECHNOLOGIES
from repro.obs.plane import ObservabilityConfig, ObservabilityPlane
from repro.runtime.metrics import MetricsCollector
from repro.tuner import ClusterTuner, TunerConfig
from repro.sim.engine import Simulator
from repro.util.errors import ConfigurationError
from repro.util.rng import SeedSequenceRegistry
from repro.util.tracing import Tracer

__all__ = ["Cluster"]

#: Engine kind → constructor.
_ENGINE_KINDS = {"optimizing": OptimizingEngine, "legacy": LegacyEngine}


class Cluster:
    """A fully wired simulated cluster.

    Parameters
    ----------
    n_nodes:
        Number of nodes, named ``n0`` … ``n{k-1}``.
    networks:
        Sequence of ``(technology, nics_per_node)`` pairs; every node is
        attached to every network.  Technologies come from
        :data:`repro.network.technologies.TECHNOLOGIES`.
    engine:
        ``"optimizing"`` (the paper's engine) or ``"legacy"`` (the
        deterministic Madeleine-3 baseline).
    strategy:
        Strategy name (from the registry), factory callable, or ``None``
        for the engine's default.  Ignored by the legacy engine, which
        is its own strategy.
    policy:
        Channel-policy factory (one fresh instance per node); ``None``
        uses the engine default.
    config:
        A shared :class:`~repro.core.config.EngineConfig`.
    seed:
        Session seed for all random streams.
    tracer:
        Optional tracer shared by every component.
    driver_caps:
        Optional per-technology :class:`DriverCapabilities` overrides
        (e.g. ``{"mx": replace(MX_CAPABILITIES, supports_gather=False)}``)
        for capability ablations.
    faults:
        Optional fault model: a ready-made
        :class:`~repro.network.faults.FaultPlane`, or a mapping in the
        scenario ``"faults"`` schema (``drop``/``corrupt``/``duplicate``
        /``jitter``, ``per_network``, ``per_nic``, ``outages``, ``seed``,
        plus an optional ``"reliability"`` sub-block with
        ``max_retries``/``rto``/``backoff``/``ack_delay``).  When set,
        every NIC routes through a
        :class:`~repro.network.reliable.ReliableTransport` and scheduled
        rail outages are installed.  ``None`` (default) keeps the
        lossless fabric and its exact packet timings.
    observability:
        Optional observability plane: a ready-made (uninstalled)
        :class:`~repro.obs.plane.ObservabilityPlane`, an
        :class:`~repro.obs.plane.ObservabilityConfig`, or a mapping in
        the scenario ``"observability"`` schema (``sample_interval``/
        ``ring_buffer``/``trace``).  When set, a trace sink and the
        periodic sampler are attached as ``cluster.obs``; ``None``
        (default) keeps every emit site on the NullTracer fast path.
    tuner:
        Optional online adaptation plane: a
        :class:`~repro.tuner.TunerConfig` or a mapping in the scenario
        ``"tuner"`` schema (see :mod:`repro.tuner.config`).  When set
        and enabled, each engine's strategy is wrapped by the tuner
        (``cluster.tuner``); ``None`` (default) — or
        ``{"enabled": false}`` — installs nothing, keeping dispatch
        byte-identical to a tuner-less build.
    """

    def __init__(
        self,
        n_nodes: int = 2,
        networks: Sequence[tuple[str, int]] = (("mx", 1),),
        engine: str = "optimizing",
        strategy: str | Callable[[], Strategy] | None = None,
        policy: Callable[[], ChannelPolicy] | None = None,
        config: EngineConfig | None = None,
        seed: int = 0,
        tracer: Tracer | None = None,
        driver_caps: dict[str, "DriverCapabilities"] | None = None,
        faults: Mapping | FaultPlane | None = None,
        observability: Mapping | ObservabilityConfig | ObservabilityPlane | None = None,
        tuner: "Mapping | TunerConfig | None" = None,
    ) -> None:
        if n_nodes < 2:
            raise ConfigurationError(f"a cluster needs >= 2 nodes, got {n_nodes}")
        if engine not in _ENGINE_KINDS:
            raise ConfigurationError(
                f"engine must be one of {sorted(_ENGINE_KINDS)}, got {engine!r}"
            )
        if not networks:
            raise ConfigurationError("a cluster needs at least one network")

        self.sim = Simulator(tracer)
        self.rng = SeedSequenceRegistry(seed)
        self.metrics = MetricsCollector()
        self.fabric = Fabric(self.sim)
        self.engine_kind = engine
        self.engines: dict[str, CommEngineBase] = {}
        self.reassemblers: dict[str, MessageReassembler] = {}
        self.apis: dict[str, MadAPI] = {}

        nets = []
        for i, (tech, nics_per_node) in enumerate(networks):
            if tech not in TECHNOLOGIES:
                raise ConfigurationError(
                    f"unknown technology {tech!r} (known: {sorted(TECHNOLOGIES)})"
                )
            if nics_per_node < 1:
                raise ConfigurationError(
                    f"nics_per_node must be >= 1, got {nics_per_node}"
                )
            nets.append(
                (self.fabric.add_network(f"{tech}{i}", TECHNOLOGIES[tech]()), nics_per_node)
            )

        for k in range(n_nodes):
            node = self.fabric.add_node(f"n{k}")
            for network, nics_per_node in nets:
                for _ in range(nics_per_node):
                    network.attach(node)
            drivers = []
            for nic in node.nics:
                if driver_caps is not None and nic.link.name in driver_caps:
                    from repro.drivers.registry import DRIVER_TYPES

                    drivers.append(
                        DRIVER_TYPES[nic.link.name](nic, driver_caps[nic.link.name])
                    )
                else:
                    drivers.append(make_driver(nic))

            kwargs: dict = {"config": config}
            if engine == "optimizing":
                kwargs["strategy"] = self._make_strategy(strategy)
                kwargs["policy"] = policy() if policy is not None else PooledChannels()
            else:
                if policy is not None:
                    kwargs["policy"] = policy()
            comm_engine = _ENGINE_KINDS[engine](self.sim, node, drivers, **kwargs)

            reassembler = MessageReassembler(self.sim, node.name)
            node.receiver.register_default_sink(reassembler.sink)
            self.metrics.attach(reassembler)

            self.engines[node.name] = comm_engine
            self.reassemblers[node.name] = reassembler
            self.apis[node.name] = MadAPI(node.name, comm_engine, reassembler)

        self.fault_plane: FaultPlane | None = None
        self.transport: ReliableTransport | None = None
        if faults is not None:
            if isinstance(faults, FaultPlane):
                plane, rel_config = faults, ReliabilityConfig()
            else:
                spec = dict(faults)
                rel_spec = spec.pop("reliability", None)
                rel_config = (
                    ReliabilityConfig.from_spec(rel_spec)
                    if rel_spec is not None
                    else ReliabilityConfig()
                )
                plane = FaultPlane.from_spec(spec, default_seed=seed)
            self.fault_plane = plane
            self.transport = ReliableTransport(self.sim, self.fabric, plane, rel_config)
            self.transport.install()
            plane.install(self.fabric, self.sim)

        self.obs: ObservabilityPlane | None = None
        if observability is not None:
            if isinstance(observability, ObservabilityPlane):
                obs_plane = observability
            elif isinstance(observability, ObservabilityConfig):
                obs_plane = ObservabilityPlane(observability)
            else:
                obs_plane = ObservabilityPlane(
                    ObservabilityConfig.from_spec(observability)
                )
            obs_plane.install(self)
            self.obs = obs_plane

        # The tuner installs last: it wraps engine strategies and wants
        # the tail view the observability plane just handed out.
        self.tuner: "ClusterTuner | None" = None
        if tuner is not None:
            tuner_config = (
                tuner if isinstance(tuner, TunerConfig) else TunerConfig.from_spec(tuner)
            )
            if tuner_config.enabled:
                cluster_tuner = ClusterTuner(tuner_config)
                cluster_tuner.install(self)
                self.tuner = cluster_tuner

    @staticmethod
    def _make_strategy(
        strategy: str | Callable[[], Strategy] | None,
    ) -> Strategy | None:
        if strategy is None:
            return None
        if isinstance(strategy, str):
            return make_strategy(strategy)
        return strategy()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def node_names(self) -> list[str]:
        """Node names in creation order."""
        return [n.name for n in self.fabric.nodes]

    def api(self, node_name: str) -> MadAPI:
        """The packing API of one node."""
        return self.apis[node_name]

    def engine(self, node_name: str) -> CommEngineBase:
        """The communication engine of one node."""
        return self.engines[node_name]

    def stream(self, name: str):
        """A named deterministic RNG stream."""
        return self.rng.stream(name)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Run the simulation (see :meth:`repro.sim.Simulator.run`)."""
        return self.sim.run(until=until)

    def run_until_idle(self, max_events: int = 50_000_000) -> float:
        """Drain all activity; returns the final virtual time."""
        return self.sim.run_until_idle(max_events=max_events)

    def report(self, since: float = 0.0):
        """Session report over messages submitted after ``since``."""
        return self.metrics.report(self, since=since)
