"""Runtime assembly: clusters, metrics, experiment sessions.

:class:`~repro.runtime.cluster.Cluster` builds a complete simulated
system (fabric + nodes + drivers + engines + reassemblers + APIs) from a
declarative spec; :class:`~repro.runtime.metrics.MetricsCollector`
gathers message records; :func:`~repro.runtime.session.run_session`
executes a workload and returns a :class:`~repro.runtime.metrics.SessionReport`.
"""

from repro.runtime.cluster import Cluster
from repro.runtime.metrics import MessageRecord, MetricsCollector, SessionReport
from repro.runtime.sampling import PeriodicSampler, Sample
from repro.runtime.session import run_session

__all__ = [
    "Cluster",
    "MessageRecord",
    "MetricsCollector",
    "PeriodicSampler",
    "Sample",
    "SessionReport",
    "run_session",
]
