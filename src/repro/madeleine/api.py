"""The public Madeleine packing API.

This is the interface middlewares program against (reference [1] of the
paper): open a flow, begin a message, ``pack`` fragments with explicit
constraint modes, ``flush``.  The same API drives either engine — the
paper's optimizing engine (:class:`repro.core.engine.OptimizingEngine`)
or the deterministic baseline
(:class:`repro.baseline.legacy.LegacyEngine`) — which is what makes the
head-to-head experiments fair.

Example
-------
::

    flow = api.open_flow(dst="n1", traffic_class=TrafficClass.BULK)
    session = api.begin(flow)
    session.pack(16, express=True)          # header, readable early
    session.pack(64 * KiB, mode=PackMode.LATER)
    message = session.flush()
    # message.completion resolves with the delivery time
"""

from __future__ import annotations

from typing import Protocol

from repro.madeleine.message import Flow, Message, PackMode
from repro.madeleine.rx import MessageReassembler
from repro.network.virtual import TrafficClass
from repro.sim.resources import Store
from repro.util.errors import ConfigurationError

__all__ = ["CommEngineProtocol", "PackingSession", "UnpackingSession", "MadAPI"]


class CommEngineProtocol(Protocol):
    """What the API needs from an engine (both engines satisfy this)."""

    node_name: str

    def submit_message(self, message: Message) -> None:
        """Accept a flushed message into the waiting lists."""

    def post_receive(self, flow: Flow, count: int = 1) -> None:
        """Grant rendezvous receive credits on an incoming flow."""


class PackingSession:
    """Builder for one structured message."""

    def __init__(
        self,
        engine: CommEngineProtocol,
        flow: Flow,
        context: dict | None = None,
    ) -> None:
        self._engine = engine
        self._message: Message | None = Message(flow, context)

    def pack(
        self,
        size: int,
        mode: PackMode = PackMode.CHEAPER,
        express: bool = False,
    ) -> "PackingSession":
        """Append one fragment; returns ``self`` for chaining."""
        if self._message is None:
            raise ConfigurationError("pack() after flush()")
        self._message.add_fragment(size, mode, express)
        return self

    def flush(self) -> Message:
        """Hand the message to the engine; the session is then closed."""
        if self._message is None:
            raise ConfigurationError("flush() called twice")
        message, self._message = self._message, None
        self._engine.submit_message(message)
        return message


class UnpackingSession:
    """Receive-side mirror of :class:`PackingSession` (``mad_begin_unpacking``).

    Latches onto the *next* message of an incoming flow and reads its
    fragments in packing order; express fragments resolve as soon as
    their bytes arrive, ahead of the message body::

        session = api.begin_unpacking(flow)
        header = yield session.unpack(16)      # early: it was express
        body = yield session.unpack()          # resolves at body arrival
        message = yield session.end()

    Declared sizes are checked against the sender's packing — a mismatch
    is a protocol error, exactly like in Madeleine.
    """

    def __init__(self, reassembler: MessageReassembler, flow: Flow) -> None:
        self._reassembler = reassembler
        self._message_future = reassembler.next_message(flow)
        self._cursor = 0
        self._ended = False

    def _with_message(self, action):
        """Run ``action(message)`` once the session's message is known,
        returning the future ``action`` produces, flattened."""
        from repro.sim.process import Future

        out = Future()

        def when_known(message):
            inner = action(message)
            inner.add_callback(out.resolve)

        self._message_future.add_callback(when_known)
        return out

    def unpack(self, size: int | None = None):
        """Future for the next fragment (in packing order).

        ``size``, when given, must match the sender's fragment size.
        """
        from repro.util.errors import ProtocolError

        if self._ended:
            raise ConfigurationError("unpack() after end()")
        index = self._cursor
        self._cursor += 1

        def action(message):
            if index >= len(message.fragments):
                raise ProtocolError(
                    f"unpack #{index + 1} but message {message.message_id} has "
                    f"only {len(message.fragments)} fragment(s)"
                )
            fragment = message.fragments[index]
            if size is not None and fragment.size != size:
                raise ProtocolError(
                    f"unpack expected {size} B but fragment {index} of message "
                    f"{message.message_id} carries {fragment.size} B"
                )
            return self._reassembler.when_fragment_complete(fragment)

        return self._with_message(action)

    def end(self):
        """Future resolving with the message once it is fully delivered."""
        self._ended = True

        def action(message):
            from repro.sim.process import Future

            out = Future()
            message.completion.add_callback(lambda _t: out.resolve(message))
            return out

        return self._with_message(action)


class MadAPI:
    """Per-node facade over the engine (send side) and reassembler (receive side)."""

    def __init__(
        self,
        node_name: str,
        engine: CommEngineProtocol,
        reassembler: MessageReassembler,
    ) -> None:
        if engine.node_name != node_name:
            raise ConfigurationError(
                f"engine of node {engine.node_name!r} wired to API of {node_name!r}"
            )
        self.node_name = node_name
        self.engine = engine
        self.reassembler = reassembler
        self._flow_counter = 0

    # ------------------------------------------------------------------
    # send side
    # ------------------------------------------------------------------
    def open_flow(
        self,
        dst: str,
        name: str | None = None,
        traffic_class: TrafficClass = TrafficClass.DEFAULT,
    ) -> Flow:
        """Open a directed flow from this node to ``dst``."""
        if name is None:
            name = f"{self.node_name}->{dst}#{self._flow_counter}"
        self._flow_counter += 1
        return Flow(name, self.node_name, dst, traffic_class)

    def begin(self, flow: Flow, context: dict | None = None) -> PackingSession:
        """Start packing a message on a flow opened from this node.

        ``context`` attaches opaque application metadata to the message
        (e.g. an MPI tag) readable at the receiver.
        """
        if flow.src != self.node_name:
            raise ConfigurationError(
                f"flow {flow.name!r} originates at {flow.src!r}, not {self.node_name!r}"
            )
        return PackingSession(self.engine, flow, context)

    def send(
        self,
        flow: Flow,
        payload_size: int,
        header_size: int = 16,
        mode: PackMode = PackMode.CHEAPER,
        context: dict | None = None,
    ) -> Message:
        """Convenience: header (express) + payload in one message."""
        session = self.begin(flow, context)
        if header_size > 0:
            session.pack(header_size, express=True)
        session.pack(payload_size, mode=mode)
        return session.flush()

    # ------------------------------------------------------------------
    # receive side (flows terminating at this node)
    # ------------------------------------------------------------------
    def subscribe(self, flow: Flow, callback) -> None:
        """Completion callback for every message of an incoming flow."""
        self._check_incoming(flow)
        self.reassembler.subscribe(flow, callback)

    def subscribe_express(self, flow: Flow, callback) -> None:
        """Early-header callback (``receive_express``) on an incoming flow."""
        self._check_incoming(flow)
        self.reassembler.subscribe_express(flow, callback)

    def inbox(self, flow: Flow) -> Store:
        """Mailbox of completed messages on an incoming flow."""
        self._check_incoming(flow)
        return self.reassembler.inbox(flow)

    def begin_unpacking(self, flow: Flow) -> UnpackingSession:
        """Latch onto the next incoming message of a flow (receive side)."""
        self._check_incoming(flow)
        return UnpackingSession(self.reassembler, flow)

    def post_receive(self, flow: Flow, count: int = 1) -> None:
        """Grant receive credits for rendezvous messages on a flow.

        Only meaningful when the engine runs with
        ``EngineConfig.rdv_requires_recv``: each credit admits one
        rendezvous message (the sender's bulk data is withheld until the
        receiver has somewhere to put it).  Eager traffic needs no
        credits.
        """
        self._check_incoming(flow)
        self.engine.post_receive(flow, count)

    def _check_incoming(self, flow: Flow) -> None:
        if flow.dst != self.node_name:
            raise ConfigurationError(
                f"flow {flow.name!r} terminates at {flow.dst!r}, not {self.node_name!r}"
            )
